//! Integration tests for the textual task format: the pretty-printed form of
//! every constraint the system produces must re-parse to the same constraint,
//! and the shipped example task files must parse, validate, and compose.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::prelude::*;

#[test]
fn corpus_constraints_round_trip_through_the_printer() {
    for problem in problems() {
        let task = problem.task().expect("parses");
        for constraint in task.combined_constraints().iter() {
            let printed = format!("{constraint}");
            let reparsed = parse_constraint(&printed)
                .unwrap_or_else(|e| panic!("{}: `{printed}` does not re-parse: {e}", problem.id));
            assert_eq!(&reparsed, constraint, "round trip changed `{printed}`");
        }
    }
}

#[test]
fn composed_outputs_round_trip_through_the_printer() {
    let registry = Registry::standard();
    for problem in problems() {
        let result = problem.compose(&registry, &ComposeConfig::default()).expect("composes");
        for constraint in result.constraints.iter() {
            let printed = format!("{constraint}");
            let reparsed = parse_constraint(&printed)
                .unwrap_or_else(|e| panic!("{}: `{printed}` does not re-parse: {e}", problem.id));
            assert_eq!(&reparsed, constraint);
        }
    }
}

#[test]
fn shipped_task_files_parse_and_compose() {
    let registry = Registry::standard();
    let cases: [(&str, &str, &str, bool); 3] = [
        ("examples/tasks/movies.mct", "m12", "m23", true),
        ("examples/tasks/outerjoin_peers.mct", "p12", "p23", false),
        ("examples/tasks/recursive.mct", "m12", "m23", false),
    ];
    for (path, first, second, expect_complete) in cases {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let document = parse_document(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
        let task = document.task(first, second).unwrap_or_else(|e| panic!("task {path}: {e}"));
        task.validate(registry.operators()).unwrap_or_else(|e| panic!("validate {path}: {e}"));
        let result = compose(&task, &registry, &ComposeConfig::default()).expect("composes");
        assert_eq!(result.is_complete(), expect_complete, "{path}");
    }
}

#[test]
fn evolution_outputs_round_trip_through_the_printer() {
    let run = run_editing(&ScenarioConfig {
        schema_size: 8,
        edits: 25,
        seed: 3,
        ..ScenarioConfig::default()
    });
    for constraint in &run.constraints {
        let printed = format!("{constraint}");
        let reparsed = parse_constraint(&printed)
            .unwrap_or_else(|e| panic!("`{printed}` does not re-parse: {e}"));
        assert_eq!(&reparsed, constraint);
    }
}

#[test]
fn minimized_outputs_round_trip_and_stay_checkable() {
    use mapping_composition::compose::minimize_mapping;
    let registry = Registry::standard();
    for problem in problems() {
        let task = problem.task().expect("parses");
        let full = task.full_signature().expect("signatures");
        let result = problem.compose(&registry, &ComposeConfig::default()).expect("composes");
        let minimized = minimize_mapping(result.constraints.into_vec(), &full, &registry);
        for constraint in &minimized {
            let printed = format!("{constraint}");
            let reparsed = parse_constraint(&printed).expect("re-parses");
            assert_eq!(&reparsed, constraint);
            constraint.validate(&full, registry.operators()).expect("type-checks");
        }
    }
}
