//! Bounded-model equivalence checking over the whole literature corpus: for
//! every problem, the composed output must be *sound* with respect to the
//! input mappings (every sampled model of the inputs, restricted to the
//! output signature, satisfies the output), and for the problems whose
//! intermediate relations are small enough to search, *complete* as well.
//!
//! This is the machine-checkable version of the paper's statement that the
//! corpus "serves as a test suite that can be used for verifying
//! implementations of composition".

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::compose::{check_equivalence, VerifyConfig};
use mapping_composition::prelude::*;

fn verify_config(seed: u64) -> VerifyConfig {
    VerifyConfig {
        domain: vec![Value::Int(1), Value::Int(2), Value::Int(5)],
        soundness_samples: 60,
        completeness_samples: 10,
        max_extensions: 1 << 14,
        max_tuples_per_relation: 2,
        seed,
    }
}

#[test]
fn every_corpus_composition_is_sound_on_bounded_models() {
    let registry = Registry::standard();
    let config = ComposeConfig::default();
    let mut soundness_checked_somewhere = false;

    for (index, problem) in problems().into_iter().enumerate() {
        let task = problem.task().expect("parses");
        let full = task.full_signature().expect("signatures");
        let result = problem.compose(&registry, &config).expect("composes");

        // The reduced signature keeps whatever the driver could not
        // eliminate, exactly as COMPOSE defines its output signature.
        let reduced = result.signature.clone();
        let report = check_equivalence(
            &task.combined_constraints().into_vec(),
            &full,
            &result.constraints.clone().into_vec(),
            &reduced,
            &registry,
            &verify_config(1000 + index as u64),
        );
        assert!(
            report.soundness_violations.is_empty(),
            "problem {}: composed output is unsound on {:?}",
            problem.id,
            report.soundness_violations.first()
        );
        assert!(
            report.completeness_violations.is_empty(),
            "problem {}: composed output is incomplete on {:?}",
            problem.id,
            report.completeness_violations.first()
        );
        soundness_checked_somewhere |= report.soundness_checked > 0;
    }
    // The sampling must have exercised the soundness direction at least once
    // across the corpus (guards against a silently vacuous test).
    assert!(soundness_checked_somewhere);
}

#[test]
fn minimized_corpus_outputs_remain_equivalent_to_the_raw_outputs() {
    use mapping_composition::compose::minimize_mapping;
    let registry = Registry::standard();
    let config = ComposeConfig::default();

    for (index, problem) in problems().into_iter().enumerate() {
        let task = problem.task().expect("parses");
        let full = task.full_signature().expect("signatures");
        let result = problem.compose(&registry, &config).expect("composes");
        let raw = result.constraints.clone().into_vec();
        let minimized = minimize_mapping(raw.clone(), &full, &registry);

        // Minimization must never grow the mapping.
        let before: usize = raw.iter().map(Constraint::op_count).sum();
        let after: usize = minimized.iter().map(Constraint::op_count).sum();
        assert!(after <= before, "problem {} grew {} -> {}", problem.id, before, after);

        // Raw and minimized outputs are over the same signature, so the
        // bounded-model check degenerates to mutual implication on samples.
        let sig = result.signature.clone();
        let forward = check_equivalence(
            &raw,
            &sig,
            &minimized,
            &sig,
            &registry,
            &verify_config(2000 + index as u64),
        );
        assert!(forward.soundness_violations.is_empty(), "problem {}", problem.id);
        let backward = check_equivalence(
            &minimized,
            &sig,
            &raw,
            &sig,
            &registry,
            &verify_config(3000 + index as u64),
        );
        assert!(backward.soundness_violations.is_empty(), "problem {}", problem.id);
    }
}
