//! The delta-oracle suite for the differential chase: every incrementally
//! maintained state must be **byte-identical** to a cold re-chase from
//! scratch over the same accumulated source — rendered target, support
//! table, null counter, convergence flag, all of it. The oblivious Skolem
//! chase is a pure function of the source instance (content-addressed null
//! names make it confluent), so a fresh engine over the current source *is*
//! the oracle, and equality is exact rather than up to null renaming.
//!
//! Coverage: the paper's worked examples (composed Example 1 included), all
//! literature-corpus problems, evolution-simulator scenarios, seeded random
//! ±update streams, delete-then-reinsert round trips, and net-zero batches.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mapping_composition::algebra::Tuple;
use mapping_composition::compose::{DifferentialChase, ExchangeConfig, Update};
use mapping_composition::prelude::*;

fn registry() -> Registry {
    Registry::standard()
}

/// A differential engine plus everything needed to rebuild it cold: the
/// constraint set, signatures and configuration. `apply_checked` is the
/// oracle harness — it applies one batch incrementally, then proves the
/// result byte-identical to a from-scratch re-chase of the updated source.
struct Harness {
    constraints: Vec<Constraint>,
    full: Signature,
    target: Signature,
    config: ExchangeConfig,
    engine: DifferentialChase,
}

impl Harness {
    fn new(
        constraints: Vec<Constraint>,
        full: Signature,
        target: Signature,
        source: Instance,
        config: ExchangeConfig,
    ) -> Self {
        let engine =
            DifferentialChase::new(&constraints, &full, &target, source, &registry(), &config);
        Harness { constraints, full, target, config, engine }
    }

    /// A cold engine over the current accumulated source: the oracle.
    fn oracle(&self) -> DifferentialChase {
        DifferentialChase::new(
            &self.constraints,
            &self.full,
            &self.target,
            self.engine.source().clone(),
            &registry(),
            &self.config,
        )
    }

    fn assert_matches_oracle(&self, label: &str) {
        let oracle = self.oracle();
        assert_eq!(
            self.engine.rendered_target(),
            oracle.rendered_target(),
            "{label}: maintained target diverged from a cold re-chase"
        );
        assert_eq!(
            self.engine.support(),
            oracle.support(),
            "{label}: support table diverged from a cold re-chase"
        );
        assert_eq!(
            self.engine.nulls(),
            oracle.nulls(),
            "{label}: null counter diverged from a cold re-chase"
        );
        assert_eq!(
            self.engine.converged(),
            oracle.converged(),
            "{label}: convergence flag diverged from a cold re-chase"
        );
    }

    fn apply_checked(&mut self, label: &str, updates: &[Update]) {
        self.engine
            .apply(updates)
            .unwrap_or_else(|error| panic!("{label}: batch rejected: {error}"));
        self.assert_matches_oracle(label);
    }

    /// The source relations an update batch may touch, with arities.
    fn source_rels(&self) -> Vec<(String, usize)> {
        self.full
            .iter()
            .filter(|(name, _)| !self.target.contains(name))
            .map(|(name, info)| (name.to_string(), info.arity))
            .collect()
    }

    /// One random signed batch: inserts draw tuples from a small value pool
    /// (so joins actually meet), deletes are biased toward rows that exist
    /// (so the overdeletion cascade actually fires) but occasionally name
    /// absent rows to exercise the no-op path.
    fn random_batch(&self, rng: &mut StdRng, size: usize) -> Vec<Update> {
        let rels = self.source_rels();
        let mut batch = Vec::new();
        for _ in 0..size {
            let (rel, arity) = &rels[rng.gen_range(0..rels.len())];
            let delete = rng.gen_bool(0.4);
            if delete {
                let rows: Vec<Tuple> = self.engine.source().get(rel).iter().cloned().collect();
                if !rows.is_empty() && rng.gen_bool(0.85) {
                    let row = rows[rng.gen_range(0..rows.len())].clone();
                    batch.push(Update::delete(rel.clone(), row));
                    continue;
                }
            }
            let tuple: Tuple = (0..*arity).map(|_| Value::Int(rng.gen_range(0..6))).collect();
            if delete {
                batch.push(Update::delete(rel.clone(), tuple));
            } else {
                batch.push(Update::insert(rel.clone(), tuple));
            }
        }
        batch
    }

    /// Drive `batches` random batches through the engine, oracle-checking
    /// after every one.
    fn run_random_stream(&mut self, label: &str, seed: u64, batches: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        if self.source_rels().is_empty() {
            return;
        }
        for batch_index in 0..batches {
            let size = rng.gen_range(1..6);
            let batch = self.random_batch(&mut rng, size);
            self.apply_checked(&format!("{label}, batch {batch_index}"), &batch);
        }
    }
}

/// Seed a generic σ1 instance: a couple of rows per source relation, the
/// same shape the chase-equivalence suite uses.
fn seed_source(sig: &Signature, rows: i64) -> Instance {
    let mut source = Instance::new();
    for (name, info) in sig.iter() {
        for row in 0..rows {
            let tuple: Tuple = (0..info.arity).map(|c| Value::Int(row * 10 + c as i64)).collect();
            source.insert(name, tuple);
        }
    }
    source
}

#[test]
fn example_1_composed_migration_stays_live_under_updates() {
    // Paper Example 1, composed σ1 → σ3: the canonical "migrate data from
    // the old schema" scenario, now maintained incrementally while movies
    // are added, re-rated away, and restored.
    let doc = parse_document(
        r"
        schema sigma1 { Movies/4; }
        schema sigma2 { FiveStarMovies/3; }
        schema sigma3 { Names/2; Years/2; }
        mapping m12 : sigma1 -> sigma2 {
            project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
        }
        mapping m23 : sigma2 -> sigma3 {
            project[0,1](FiveStarMovies) <= Names;
            project[0,2](FiveStarMovies) <= Years;
        }
        ",
    )
    .unwrap();
    let task = doc.task("m12", "m23").unwrap();
    let composed = compose(&task, &registry(), &ComposeConfig::default()).unwrap();
    let full = task.full_signature().unwrap();

    let movie = |id: i64, name: i64, year: i64, stars: i64| -> Tuple {
        vec![Value::Int(id), Value::Int(name), Value::Int(year), Value::Int(stars)]
    };
    let mut source = Instance::new();
    source.insert("Movies", movie(1, 11, 1991, 5));
    source.insert("Movies", movie(2, 22, 1992, 4));

    let mut harness = Harness::new(
        composed.constraints.clone().into_vec(),
        full,
        task.sigma3.clone(),
        source,
        ExchangeConfig::default(),
    );
    assert_eq!(harness.engine.target().get("Names").len(), 1);

    // A new five-star movie lands in the target incrementally.
    harness.apply_checked("insert 5-star", &[Update::insert("Movies", movie(3, 33, 1993, 5))]);
    assert_eq!(harness.engine.target().get("Names").len(), 2);

    // Re-rating movie 1 is a delete + insert in one batch; its Names/Years
    // rows must be retracted by support counting.
    harness.apply_checked(
        "re-rate to 4 stars",
        &[
            Update::delete("Movies", movie(1, 11, 1991, 5)),
            Update::insert("Movies", movie(1, 11, 1991, 4)),
        ],
    );
    assert_eq!(harness.engine.target().get("Names").len(), 1);

    // And restoring the rating restores the rows.
    harness.apply_checked(
        "restore rating",
        &[
            Update::delete("Movies", movie(1, 11, 1991, 4)),
            Update::insert("Movies", movie(1, 11, 1991, 5)),
        ],
    );
    assert_eq!(harness.engine.target().get("Names").len(), 2);

    harness.run_random_stream("example 1 random stream", 0xE1, 24);
}

#[test]
fn paper_example_scenarios_survive_random_update_streams() {
    // The worked-example documents, chased uncomposed (σ2 part of the
    // target) under a stream of seeded random ±batches: view unfolding with
    // difference, equality constraints, and the recursive transitive-closure
    // mapping all maintain incrementally.
    let documents = [
        (
            "example 3 (R ⊆ S ⊆ T)",
            r"
            schema sigma1 { R/1; }
            schema sigma2 { S/1; }
            schema sigma3 { T/1; }
            mapping m12 : sigma1 -> sigma2 { R <= S; }
            mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
        ),
        (
            "example 5 (view unfolding)",
            r"
            schema sigma1 { R1/1; R2/1; R3/2; }
            schema sigma2 { S/2; }
            schema sigma3 { T1/1; T2/2; T3/2; }
            mapping m12 : sigma1 -> sigma2 { S = R1 * R2; }
            mapping m23 : sigma2 -> sigma3 {
                project[0](R3 - S) <= T1;
                T2 <= T3 - select[#0 = 1](S);
            }
            ",
        ),
        (
            "recursive tc example",
            r"
            schema sigma1 { R/2; }
            schema sigma2 { S/2; }
            schema sigma3 { T/2; }
            mapping m12 : sigma1 -> sigma2 { R <= S; S = tc(S); }
            mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
        ),
    ];
    for (label, text) in documents {
        let doc = parse_document(text).unwrap();
        let task = doc.task("m12", "m23").unwrap();
        let full = task.full_signature().unwrap();
        let target = task.sigma2.union(&task.sigma3).unwrap();
        let source = seed_source(&task.sigma1, 3);
        let mut harness = Harness::new(
            task.combined_constraints().into_vec(),
            full,
            target,
            source,
            ExchangeConfig::default(),
        );
        harness.run_random_stream(label, 0x5EED, 16);
    }
}

#[test]
fn corpus_problems_survive_random_update_streams() {
    // Every literature-suite problem: the corpus spans the operator
    // vocabulary (unions, differences, user-defined operators, Skolem
    // shapes), so this drives the incremental path — and, for unplannable
    // rules, the full-recompute fallback — through seeded ±batches with an
    // oracle check after every one.
    for problem in mapping_composition::corpus::problems() {
        let task = problem.task().expect("corpus problem parses");
        let full = task.full_signature().expect("well-formed signature");
        let target = task.sigma2.union(&task.sigma3).expect("disjoint enough");
        let source = seed_source(&task.sigma1, 2);
        let config =
            ExchangeConfig { max_rounds: 24, max_nulls: 20_000, ..ExchangeConfig::default() };
        let mut harness =
            Harness::new(task.combined_constraints().into_vec(), full, target, source, config);
        harness.run_random_stream(problem.id, 0xC0FFEE, 8);
    }
}

#[test]
fn evolution_scenarios_survive_random_update_streams() {
    // Simulator-generated mapping chains over several seeds, the same
    // scenario shape as the end-to-end migration test.
    for seed in [7, 42, 77] {
        let run = run_editing(&ScenarioConfig {
            schema_size: 6,
            edits: 12,
            seed,
            ..ScenarioConfig::default()
        });
        let mut target_sig = run.current.clone();
        for name in &run.pending {
            if let Some(info) = run.universe.get(name) {
                target_sig.add(name.clone(), info.clone());
            }
        }
        let source = seed_source(&run.original, 2);
        let mut harness = Harness::new(
            run.constraints.clone(),
            run.universe.clone(),
            target_sig,
            source,
            ExchangeConfig { max_rounds: 32, max_nulls: 50_000, ..ExchangeConfig::default() },
        );
        harness.run_random_stream(&format!("evolution seed {seed}"), seed, 10);
    }
}

#[test]
fn delete_then_reinsert_restores_the_exact_state() {
    // Two-batch round trip: `-t` retracts everything t supported, `+t` in a
    // *separate* batch re-derives it — and because null names are
    // content-addressed (not sequential), the restored state is
    // byte-identical to the original, support table and all.
    let doc = parse_document(
        r"
        schema sigma1 { R/2; }
        schema sigma2 { S/2; }
        schema sigma3 { T/1; }
        mapping m12 : sigma1 -> sigma2 { project[0](R) <= project[0](S); }
        mapping m23 : sigma2 -> sigma3 { project[0](S) <= T; }
        ",
    )
    .unwrap();
    let task = doc.task("m12", "m23").unwrap();
    let full = task.full_signature().unwrap();
    let target = task.sigma2.union(&task.sigma3).unwrap();
    let source = seed_source(&task.sigma1, 3);
    let mut harness = Harness::new(
        task.combined_constraints().into_vec(),
        full,
        target,
        source,
        ExchangeConfig::default(),
    );

    let before_target = harness.engine.rendered_target();
    let before_support = harness.engine.support().clone();
    let before_nulls = harness.engine.nulls();
    let row: Tuple = vec![Value::Int(0), Value::Int(1)];

    harness.apply_checked("delete", &[Update::delete("R", row.clone())]);
    assert_ne!(
        harness.engine.rendered_target(),
        before_target,
        "the deletion must actually retract derived rows"
    );
    harness.apply_checked("reinsert", &[Update::insert("R", row)]);
    assert_eq!(harness.engine.rendered_target(), before_target, "target not restored exactly");
    assert_eq!(*harness.engine.support(), before_support, "support table not restored exactly");
    assert_eq!(harness.engine.nulls(), before_nulls, "null counter not restored exactly");
}

#[test]
fn net_zero_batches_leave_every_byte_unchanged() {
    // A batch whose per-tuple signed sum is zero must be a no-op: nothing
    // applied, nothing retracted, state byte-identical — both for
    // insert-then-delete of a fresh row and delete-then-insert of a live
    // one.
    let doc = parse_document(
        r"
        schema sigma1 { R/1; }
        schema sigma2 { S/1; }
        schema sigma3 { T/1; }
        mapping m12 : sigma1 -> sigma2 { R <= S; }
        mapping m23 : sigma2 -> sigma3 { S <= T; }
        ",
    )
    .unwrap();
    let task = doc.task("m12", "m23").unwrap();
    let full = task.full_signature().unwrap();
    let target = task.sigma2.union(&task.sigma3).unwrap();
    let source = seed_source(&task.sigma1, 3);
    let mut harness = Harness::new(
        task.combined_constraints().into_vec(),
        full,
        target,
        source,
        ExchangeConfig::default(),
    );

    let before_target = harness.engine.rendered_target();
    let before_support = harness.engine.support().clone();
    let fresh: Tuple = vec![Value::Int(99)];
    let live: Tuple = vec![Value::Int(0)];

    harness.apply_checked(
        "net-zero fresh",
        &[Update::insert("R", fresh.clone()), Update::delete("R", fresh)],
    );
    harness.apply_checked(
        "net-zero live",
        &[Update::delete("R", live.clone()), Update::insert("R", live)],
    );
    assert_eq!(harness.engine.rendered_target(), before_target, "net-zero batch changed target");
    assert_eq!(*harness.engine.support(), before_support, "net-zero batch changed support");
}

#[test]
fn draining_the_source_empties_the_target() {
    // Deleting every source row one batch at a time must cascade the whole
    // target away — the mirror image of building it up — with an oracle
    // check at every intermediate state.
    let doc = parse_document(
        r"
        schema sigma1 { R/2; }
        schema sigma2 { S/2; }
        schema sigma3 { T/2; }
        mapping m12 : sigma1 -> sigma2 { R <= S; }
        mapping m23 : sigma2 -> sigma3 { S <= T; }
        ",
    )
    .unwrap();
    let task = doc.task("m12", "m23").unwrap();
    let full = task.full_signature().unwrap();
    let target = task.sigma2.union(&task.sigma3).unwrap();
    let source = seed_source(&task.sigma1, 4);
    let mut harness = Harness::new(
        task.combined_constraints().into_vec(),
        full,
        target,
        source,
        ExchangeConfig::default(),
    );
    assert!(harness.engine.target().total_tuples() > 0);

    let rows: Vec<Tuple> = harness.engine.source().get("R").iter().cloned().collect();
    for (index, row) in rows.into_iter().enumerate() {
        harness.apply_checked(&format!("drain {index}"), &[Update::delete("R", row)]);
    }
    assert_eq!(harness.engine.source().total_tuples(), 0, "source not fully drained");
    assert_eq!(harness.engine.target().total_tuples(), 0, "drained source left target rows");
    assert!(harness.engine.support().is_empty(), "drained source left support entries");
}
