//! Integration suite for the static analyzer: every mapping the repository
//! ships — the paper's worked examples, the 22-problem literature corpus,
//! and simulator-generated evolution scenarios — gets a termination verdict,
//! and every `proven` verdict is *validated* by actually chasing under the
//! analysis-derived evaluation budget and checking the run agrees with an
//! unbudgeted reference chase. A hand-built non-weakly-acyclic mapping
//! checks the negative side: the verdict is `unknown` and the rendered
//! existential cycle names the offending positions and rule.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::compose::{exchange, ExchangeConfig, TerminationVerdict};
use mapping_composition::prelude::*;

fn registry() -> Registry {
    Registry::standard()
}

/// Analyze a constraint set, then chase it twice — once under the default
/// configuration, once under the analysis-derived configuration — and check
/// the derived budget loses nothing: when termination is proven the budgeted
/// run must converge to the *same* target instance as the reference run.
fn analyze_and_validate(
    label: &str,
    constraints: &[Constraint],
    full: &Signature,
    target: &Signature,
    source: &Instance,
    base: &ExchangeConfig,
) -> AnalysisReport {
    let report = analyze_exchange(constraints, full, target);
    // Determinism: analyzing again renders the same bytes.
    let again = analyze_exchange(constraints, full, target);
    assert_eq!(report.render(), again.render(), "{label}: analysis is not deterministic");

    let reference = exchange(constraints, full, target, source, &registry(), base);
    let derived = report.exchange_config(mapping_composition::analysis::domain_size(source), base);
    let budgeted = exchange(constraints, full, target, source, &registry(), &derived);

    match &report.termination {
        Termination::Proven { bound } => {
            // The proof must be honoured by the engine: the budget the
            // analyzer derived is enough to reproduce the reference chase
            // exactly, and the verdict is carried through to the result.
            assert!(
                budgeted.converged,
                "{label}: proven bound {} did not converge",
                bound.summary()
            );
            assert_eq!(
                budgeted.target, reference.target,
                "{label}: chase under the proven budget diverges from the reference"
            );
            assert_eq!(
                budgeted.verdict,
                TerminationVerdict::Proven { eval_budget: derived.eval_budget },
                "{label}: verdict not recorded in the exchange result"
            );
        }
        Termination::Unknown { .. } => {
            assert_eq!(
                budgeted.verdict,
                TerminationVerdict::Unknown,
                "{label}: unknown verdict not recorded"
            );
        }
    }
    report
}

/// A generic small source instance over σ1.
fn seed_instance(sigma1: &Signature, rows: i64) -> Instance {
    let mut source = Instance::new();
    for (name, info) in sigma1.iter() {
        for row in 0..rows {
            let tuple: Vec<Value> =
                (0..info.arity).map(|c| Value::Int(row * 10 + c as i64)).collect();
            source.insert(name, tuple);
        }
    }
    source
}

#[test]
fn paper_examples_all_prove_termination() {
    let documents = [
        (
            "example 1 (five-star movies)",
            r"
            schema sigma1 { Movies/4; }
            schema sigma2 { FiveStarMovies/3; }
            schema sigma3 { Names/2; Years/2; }
            mapping m12 : sigma1 -> sigma2 {
                project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
            }
            mapping m23 : sigma2 -> sigma3 {
                project[0,1](FiveStarMovies) <= Names;
                project[0,2](FiveStarMovies) <= Years;
            }
            ",
        ),
        (
            "example 3 (R ⊆ S ⊆ T)",
            r"
            schema sigma1 { R/1; }
            schema sigma2 { S/1; }
            schema sigma3 { T/1; }
            mapping m12 : sigma1 -> sigma2 { R <= S; }
            mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
        ),
        (
            "example 5 (view unfolding)",
            r"
            schema sigma1 { R1/1; R2/1; R3/2; }
            schema sigma2 { S/2; }
            schema sigma3 { T1/1; T2/2; T3/2; }
            mapping m12 : sigma1 -> sigma2 { S = R1 * R2; }
            mapping m23 : sigma2 -> sigma3 {
                project[0](R3 - S) <= T1;
                T2 <= T3 - select[#0 = 1](S);
            }
            ",
        ),
        (
            "recursive tc example",
            r"
            schema sigma1 { R/2; }
            schema sigma2 { S/2; }
            schema sigma3 { T/2; }
            mapping m12 : sigma1 -> sigma2 { R <= S; S = tc(S); }
            mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
        ),
    ];
    for (label, text) in documents {
        let doc = parse_document(text).unwrap();
        let task = doc.task("m12", "m23").unwrap();
        let full = task.full_signature().unwrap();
        let target = task.sigma2.union(&task.sigma3).unwrap();
        let source = seed_instance(&task.sigma1, 3);
        let constraints = task.combined_constraints().into_vec();
        let report = analyze_and_validate(
            label,
            &constraints,
            &full,
            &target,
            &source,
            &ExchangeConfig::default(),
        );
        // Every paper example is a plain conjunctive (or skip-reported)
        // mapping: termination must be proven, not merely unknown-but-lucky.
        assert!(report.proven(), "{label}: expected a proof, got {}", report.termination.summary());
    }
}

#[test]
fn corpus_problems_all_get_validated_verdicts() {
    let mut proven = 0usize;
    for problem in mapping_composition::corpus::problems() {
        let task = problem.task().expect("corpus problem parses");
        let full = task.full_signature().expect("well-formed signature");
        let target = task.sigma2.union(&task.sigma3).expect("disjoint enough");
        let source = seed_instance(&task.sigma1, 2);
        let constraints = task.combined_constraints().into_vec();
        let report = analyze_and_validate(
            problem.id,
            &constraints,
            &full,
            &target,
            &source,
            &ExchangeConfig::default(),
        );
        // Every problem gets a verdict line that renders non-empty.
        assert!(report.render().starts_with("termination: "), "{}: no verdict line", problem.id);
        if report.proven() {
            proven += 1;
        }
    }
    // The corpus is dominated by terminating conjunctive mappings; if the
    // analyzer suddenly proves almost nothing, something regressed.
    assert!(proven >= 15, "only {proven} corpus problems proved terminating");
}

#[test]
fn evolution_scenarios_get_validated_verdicts() {
    let mut proven = 0usize;
    for seed in [7, 42, 77] {
        let run = run_editing(&ScenarioConfig {
            schema_size: 6,
            edits: 12,
            seed,
            ..ScenarioConfig::default()
        });
        let source = seed_instance(&run.original, 2);
        let mut target_sig = run.current.clone();
        for name in &run.pending {
            if let Some(info) = run.universe.get(name) {
                target_sig.add(name.clone(), info.clone());
            }
        }
        let base =
            ExchangeConfig { max_rounds: 32, max_nulls: 50_000, ..ExchangeConfig::default() };
        let report = analyze_and_validate(
            &format!("evolution seed {seed}"),
            &run.constraints,
            &run.universe,
            &target_sig,
            &source,
            &base,
        );
        // The simulator can generate constraint sets the analyzer honestly
        // cannot prove: seed 77 has a genuine existential cycle, seed 42 a
        // constant-constrained conclusion column (both happen to converge on
        // the tested instance, which is exactly why `unknown` is the right
        // verdict — it is about *all* instances). An unknown verdict must
        // carry either a rendered cycle witness or a concrete reason.
        match &report.termination {
            Termination::Proven { .. } => proven += 1,
            Termination::Unknown { cycle_witness: Some(witness), .. } => {
                assert!(witness.to_string().contains("->*"), "seed {seed}: no existential edge");
            }
            Termination::Unknown { cycle_witness: None, reason } => {
                assert!(!reason.is_empty(), "seed {seed}: unknown verdict without a reason");
            }
        }
    }
    assert!(proven >= 1, "no evolution seed proved terminating");
}

#[test]
fn non_weakly_acyclic_mapping_is_flagged_with_a_cycle_witness() {
    // S(x, y) → ∃z S(y, z): the fresh null lands back in the position that
    // feeds the premise, so every chase round invents another null. The
    // dependency graph has an existential self-loop on S.1 and the analyzer
    // must refuse to prove termination and name the cycle.
    let constraints = parse_constraints("project[1](S) <= project[0](S)").unwrap();
    let sig = Signature::from_arities([("S", 2)]);
    let report = analyze_exchange(constraints.as_slice(), &sig, &sig);
    let Termination::Unknown { cycle_witness: Some(witness), reason } = &report.termination else {
        panic!("expected an unknown verdict with a witness, got {}", report.termination.summary());
    };
    assert_eq!(reason, "existential cycle in the position dependency graph");
    let rendered = witness.to_string();
    assert!(rendered.contains("S.1"), "witness names the looping position: {rendered}");
    assert!(rendered.contains("->*"), "witness marks the existential edge: {rendered}");
    assert!(rendered.contains("(rules 0)"), "witness names the rule: {rendered}");
    // The one-line summary is byte-stable and machine-parsable.
    assert_eq!(report.termination.summary(), format!("unknown cycle: {rendered}"));

    // The chase under an Unknown verdict still runs — with the engine
    // default budget — and records the verdict it executed under.
    let mut source = Instance::new();
    source.insert("S", vec![Value::Int(1), Value::Int(2)]);
    let config = report.exchange_config(
        mapping_composition::analysis::domain_size(&source),
        &ExchangeConfig { max_rounds: 4, max_nulls: 64, ..ExchangeConfig::default() },
    );
    let result = exchange(constraints.as_slice(), &sig, &sig, &source, &registry(), &config);
    assert_eq!(result.verdict, TerminationVerdict::Unknown);
    assert!(!result.converged, "a genuinely diverging chase must hit its caps");
}

#[test]
fn catalog_mappings_get_cached_verdicts_and_lint_reports() {
    let doc = parse_document(
        r"
        schema s1 { R/2; }
        schema s2 { S/2; T/1; }
        schema s3 { U/2; }
        mapping good : s1 -> s2 { R <= S; project[0](R) <= T; }
        mapping sloppy : s2 -> s3 { project[0,0](S) <= U; project[0,0](S) <= U; }
        ",
    )
    .unwrap();
    let mut session = Session::new(Catalog::new());
    session.ingest_document(&doc).unwrap();

    let text = session.analysis_text(None).unwrap();
    // Name-sorted, one verdict line per mapping, byte-stable across calls
    // (the second call is served from the content-hash keyed cache).
    assert!(text.starts_with("mapping good: proven "), "unexpected report:\n{text}");
    assert!(text.contains("mapping sloppy: proven "), "unexpected report:\n{text}");
    assert!(text.contains("lint[duplicate-rule] rule 1"), "duplicate not linted:\n{text}");
    assert_eq!(text, session.analysis_text(None).unwrap());

    // Editing a mapping invalidates its cached verdict; the new constraint
    // set is re-analyzed.
    session.update_mapping("sloppy", parse_constraints("project[0,0](S) <= U").unwrap()).unwrap();
    let after = session.analysis_text(Some("sloppy")).unwrap();
    assert!(!after.contains("duplicate-rule"), "stale verdict survived an edit:\n{after}");
}

#[test]
fn analyzed_migration_uses_the_proven_budget_end_to_end() {
    // The replay path: CatalogReplay::migrate_analyzed consults the analyzer
    // and stamps the verdict into the exchange result.
    let doc = parse_document(
        r"
        schema v0 { A/2; }
        schema v1 { B/2; }
        mapping step : v0 -> v1 { A <= B; }
        ",
    )
    .unwrap();
    let mut session = Session::new(Catalog::new());
    session.ingest_document(&doc).unwrap();
    let (_, report) = session.analyze_mapping("step").unwrap();
    assert!(report.proven());

    let mut source = Instance::new();
    source.insert("A", vec![Value::Int(1), Value::Int(2)]);
    let result = session.exchange_analyzed("step", &source).unwrap();
    let TerminationVerdict::Proven { eval_budget } = result.verdict else {
        panic!("expected a proven verdict, got {:?}", result.verdict);
    };
    assert!(eval_budget > 0);
    assert_ne!(eval_budget, ExchangeConfig::default().eval_budget, "budget was not derived");
    assert!(result.converged);
    assert_eq!(result.target.get("B").len(), 1);
}

#[test]
fn operator_budget_override_beats_the_proven_bound() {
    let doc = parse_document(
        r"
        schema v0 { A/1; }
        schema v1 { B/1; }
        mapping step : v0 -> v1 { A <= B; }
        ",
    )
    .unwrap();
    let mut session = Session::with_config(
        Catalog::new(),
        Registry::standard(),
        SessionConfig { eval_budget: Some(7), ..SessionConfig::default() },
    );
    session.ingest_document(&doc).unwrap();
    let (_, report) = session.analyze_mapping("step").unwrap();
    let config = session.config().chase_config(Some((&report, 3)));
    assert_eq!(config.eval_budget, 7, "--eval-budget must override the analyzer");
}
