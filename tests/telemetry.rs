//! Integration tests for the telemetry layer: concurrent registry
//! consistency, and transport equivalence of the metrics surface — the same
//! request sequence must produce the same counters whether the service is
//! called in-process or through the TCP server.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use std::thread;

use mapping_composition::catalog::Catalog;
use mapping_composition::service::{
    Client, LocalService, MapcompService, Request, Response, Server,
};
use mapping_composition::telemetry::metrics::{MetricsRegistry, LATENCY_BOUNDS_US};

const DOCUMENT: &str = r"
    schema sigma1 { R/1; }
    schema sigma2 { S/1; }
    schema sigma3 { T/1; }
    mapping m12 : sigma1 -> sigma2 { R <= S; }
    mapping m23 : sigma2 -> sigma3 { S <= T; }
";

/// Deterministic per-thread update schedule: thread `t` performs `rounds`
/// iterations, each bumping a shared counter, a per-thread counter, and
/// observing a value derived from (t, round) into a shared histogram.
fn apply_schedule(registry: &'static MetricsRegistry, thread: u64, rounds: u64) {
    let shared = registry.counter("test_shared_total", "shared across threads", &[]);
    let label = format!("t{thread}");
    let own = registry.counter("test_per_thread_total", "one per thread", &[("thread", &label)]);
    let histogram = registry.histogram("test_values", "observed values", &[], LATENCY_BOUNDS_US);
    for round in 0..rounds {
        shared.incr();
        own.add(thread + 1);
        histogram.observe((thread * 7 + round * 131) % 2_000_000);
    }
}

#[test]
fn concurrent_updates_render_identically_to_a_single_threaded_replay() {
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 500;

    // Concurrent: eight threads hammer one registry.
    let concurrent = MetricsRegistry::new().leak();
    thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || apply_schedule(concurrent, t, ROUNDS));
        }
    });

    // Replay: the same schedule applied serially to a fresh registry.
    let serial = MetricsRegistry::new().leak();
    for t in 0..THREADS {
        apply_schedule(serial, t, ROUNDS);
    }

    // Counters and histogram buckets are all plain atomic adds, so the two
    // renders must be byte-identical — any divergence is a lost update.
    assert_eq!(concurrent.render(), serial.render());
}

/// The request sequence both transports run.
fn workload() -> Vec<Request> {
    vec![
        Request::AddDocument { text: DOCUMENT.into() },
        Request::ComposePath { from: "sigma1".into(), to: "sigma3".into() },
        Request::ComposePath { from: "sigma1".into(), to: "sigma3".into() },
        Request::ComposeNames { names: vec!["m12".into(), "m23".into()] },
        Request::ComposePath { from: "sigma3".into(), to: "sigma1".into() }, // fails: no path
        Request::Stats,
        Request::Ping,
        Request::Ping,
    ]
}

/// Extract the `service_requests_total` and `service_errors_total` samples
/// from a rendered exposition, sorted for comparison.
fn request_counters(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text
        .lines()
        .filter(|line| {
            (line.starts_with("service_requests_total{")
                || line.starts_with("service_errors_total{"))
                && !line.ends_with(" 0")
        })
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn in_process_and_tcp_transports_report_the_same_request_counters() {
    // Two independent backends with private registries, so the global
    // registry (shared with other tests in this binary) never interferes.
    let local_registry = MetricsRegistry::new().leak();
    let local = LocalService::new(Catalog::new(), 2).with_metrics_registry(local_registry);

    let remote_registry = MetricsRegistry::new().leak();
    let remote = LocalService::new(Catalog::new(), 2).with_metrics_registry(remote_registry);

    // Drive the in-process backend directly.
    let mut local_metrics = String::new();
    for request in workload() {
        let _ = local.call(request);
    }
    if let Ok(Response::Metrics { text }) = local.call(Request::Metrics) {
        local_metrics = text;
    }

    // Drive the other backend through a real TCP server.
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let mut remote_metrics = String::new();
    thread::scope(|scope| {
        scope.spawn(|| server.run(&remote, 2).unwrap());
        let client = Client::connect(&addr).unwrap();
        for request in workload() {
            let _ = client.call(request);
        }
        if let Ok(Response::Metrics { text }) = client.call(Request::Metrics) {
            remote_metrics = text;
        }
        client.call(Request::Shutdown).unwrap();
    });

    let local_counts = request_counters(&local_metrics);
    assert!(!local_counts.is_empty(), "no request counters in:\n{local_metrics}");
    assert_eq!(
        local_counts,
        request_counters(&remote_metrics),
        "transports disagree\nlocal:\n{local_metrics}\nremote:\n{remote_metrics}"
    );

    // Spot-check absolute values against the workload itself.
    let expect = |line: &str| {
        assert!(local_counts.iter().any(|l| l == line), "missing `{line}` in {local_counts:#?}");
    };
    expect("service_requests_total{kind=\"ping\"} 2");
    expect("service_requests_total{kind=\"compose-path\"} 3");
    expect("service_requests_total{kind=\"add-document\"} 1");
    expect("service_errors_total{kind=\"compose-path\"} 1");
}

#[test]
fn metrics_request_renders_a_parsable_exposition() {
    let registry = MetricsRegistry::new().leak();
    let service = LocalService::new(Catalog::new(), 1).with_metrics_registry(registry);
    service.call(Request::Ping).unwrap();
    let Ok(Response::Metrics { text }) = service.call(Request::Metrics) else {
        panic!("metrics request failed");
    };
    // Every non-comment line is `name{labels} value` or `name value`.
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(!name.is_empty());
        assert!(value.parse::<f64>().is_ok(), "unparsable sample value in line `{line}`");
    }
    assert!(text.contains("# TYPE service_requests_total counter"), "missing TYPE:\n{text}");
    assert!(text.contains("service_request_duration_us_bucket"), "missing histogram:\n{text}");
}
