//! Property-based tests (proptest) over the core data structures and the
//! algorithm's key invariants:
//!
//! * printer/parser round-trip for randomly generated expressions,
//! * algebraic laws of the set-semantics evaluator,
//! * semantic soundness of the MONOTONE procedure,
//! * soundness of symbol elimination on randomly generated mappings.

use proptest::prelude::*;

use mapping_composition::compose::{eliminate, monotonicity, Monotonicity};
use mapping_composition::prelude::*;

/// Fixed signature used by the generators: two unary and two binary
/// relations.
fn test_signature() -> Signature {
    Signature::from_arities([("A", 1), ("B", 1), ("P", 2), ("Q", 2)])
}

/// Strategy producing a relation name of the given arity.
fn rel_of_arity(arity: usize) -> impl Strategy<Value = Expr> {
    match arity {
        1 => prop_oneof![Just(Expr::rel("A")), Just(Expr::rel("B"))].boxed(),
        _ => prop_oneof![Just(Expr::rel("P")), Just(Expr::rel("Q"))].boxed(),
    }
}

/// Strategy producing a simple selection predicate valid for the given arity.
fn pred_for_arity(arity: usize) -> impl Strategy<Value = Pred> {
    let max_col = arity.saturating_sub(1);
    prop_oneof![
        Just(Pred::True),
        (0..=max_col, -2i64..6).prop_map(|(col, value)| Pred::eq_const(col, value)),
        (0..=max_col, 0..=max_col).prop_map(|(left, right)| Pred::eq_cols(left, right)),
    ]
}

/// Recursive strategy producing a well-typed expression of the given arity
/// (1 or 2) over the test signature.
fn expr_of_arity(arity: usize, depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        return prop_oneof![rel_of_arity(arity), Just(Expr::domain(arity))].boxed();
    }
    let leaf = prop_oneof![rel_of_arity(arity), Just(Expr::domain(arity)), Just(Expr::empty(arity))];
    let same = expr_of_arity(arity, depth - 1);
    let binary = (expr_of_arity(arity, depth - 1), expr_of_arity(arity, depth - 1), 0..3u8)
        .prop_map(|(left, right, which)| match which {
            0 => left.union(right),
            1 => left.intersect(right),
            _ => left.difference(right),
        });
    let select = (same.clone(), pred_for_arity(arity)).prop_map(|(inner, pred)| inner.select(pred));
    let project_from_pair = if arity == 1 {
        (expr_of_arity(2, depth - 1), 0..2usize)
            .prop_map(|(inner, col)| inner.project(vec![col]))
            .boxed()
    } else {
        // arity 2: project a permutation of a binary expression, or pair a
        // unary expression with itself via product.
        prop_oneof![
            (expr_of_arity(2, depth - 1), any::<bool>()).prop_map(|(inner, swap)| {
                inner.project(if swap { vec![1, 0] } else { vec![0, 1] })
            }),
            (expr_of_arity(1, depth - 1), expr_of_arity(1, depth - 1))
                .prop_map(|(left, right)| left.product(right)),
        ]
        .boxed()
    };
    prop_oneof![leaf, binary, select, project_from_pair].boxed()
}

/// Strategy producing a small instance over the test signature.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let unary = proptest::collection::btree_set(1i64..5, 0..3);
    let binary = proptest::collection::btree_set((1i64..5, 1i64..5), 0..4);
    (unary.clone(), unary, binary.clone(), binary).prop_map(|(a, b, p, q)| {
        let mut instance = Instance::new();
        for v in a {
            instance.insert("A", vec![Value::Int(v)]);
        }
        for v in b {
            instance.insert("B", vec![Value::Int(v)]);
        }
        for (x, y) in p {
            instance.insert("P", vec![Value::Int(x), Value::Int(y)]);
        }
        for (x, y) in q {
            instance.insert("Q", vec![Value::Int(x), Value::Int(y)]);
        }
        instance
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn printed_expressions_reparse_identically(expr in expr_of_arity(2, 3)) {
        let printed = expr.to_string();
        let reparsed = parse_expr(&printed).expect("printed expression parses");
        prop_assert_eq!(reparsed, expr);
    }

    #[test]
    fn arity_checking_agrees_with_evaluation(
        expr in expr_of_arity(2, 3),
        instance in instance_strategy(),
    ) {
        let sig = test_signature();
        let registry = Registry::standard();
        let arity = expr.arity(&sig, registry.operators()).expect("well-typed by construction");
        prop_assert_eq!(arity, 2);
        let relation = mapping_composition::algebra::eval(
            &expr, &sig, registry.operators(), &instance,
        ).expect("evaluates");
        for tuple in relation.iter() {
            prop_assert_eq!(tuple.len(), 2);
        }
    }

    #[test]
    fn evaluator_satisfies_set_algebra_laws(
        left in expr_of_arity(2, 2),
        right in expr_of_arity(2, 2),
        instance in instance_strategy(),
    ) {
        let sig = test_signature();
        let registry = Registry::standard();
        let ops = registry.operators();
        let eval = |e: &Expr| mapping_composition::algebra::eval(e, &sig, ops, &instance).unwrap();

        // Commutativity of ∪ and ∩.
        prop_assert_eq!(
            eval(&left.clone().union(right.clone())),
            eval(&right.clone().union(left.clone()))
        );
        prop_assert_eq!(
            eval(&left.clone().intersect(right.clone())),
            eval(&right.clone().intersect(left.clone()))
        );
        // A − B ⊆ A and A ∩ B ⊆ A ⊆ A ∪ B.
        let a = eval(&left);
        prop_assert!(eval(&left.clone().difference(right.clone())).is_subset(&a));
        prop_assert!(eval(&left.clone().intersect(right.clone())).is_subset(&a));
        prop_assert!(a.is_subset(&eval(&left.clone().union(right.clone()))));
        // Difference and intersection partition A: (A−B) ∪ (A∩B) = A.
        let partitioned = eval(&left.clone().difference(right.clone()))
            .union(&eval(&left.clone().intersect(right.clone())));
        prop_assert_eq!(partitioned, a);
    }

    #[test]
    fn monotone_verdicts_are_semantically_sound(
        expr in expr_of_arity(2, 3),
        instance in instance_strategy(),
        extra in (1i64..5, 1i64..5),
    ) {
        let sig = test_signature();
        let registry = Registry::standard();
        let ops = registry.operators();
        let symbol = "P";
        let verdict = monotonicity(&expr, symbol, &registry);

        // Build a larger instance by adding one tuple to P only.
        let mut larger = instance.clone();
        larger.insert(symbol, vec![Value::Int(extra.0), Value::Int(extra.1)]);

        let small = mapping_composition::algebra::eval(&expr, &sig, ops, &instance).unwrap();
        let large = mapping_composition::algebra::eval(&expr, &sig, ops, &larger).unwrap();

        // The active domain also grows when P grows, which can affect D^r; the
        // MONOTONE procedure treats D as independent, exactly as the paper's
        // rewrite rules do, so restrict the semantic check to D-free
        // expressions (the procedure stays sound for them).
        if !expr.mentions_domain() {
            match verdict {
                Monotonicity::Monotone => prop_assert!(small.is_subset(&large)),
                Monotonicity::AntiMonotone => prop_assert!(large.is_subset(&small)),
                Monotonicity::Independent => prop_assert_eq!(small, large),
                Monotonicity::Unknown => {}
            }
        }
    }

    #[test]
    fn elimination_is_sound_on_random_mappings(
        upper in expr_of_arity(2, 2),
        lower in expr_of_arity(2, 2),
        downstream in expr_of_arity(2, 2),
        instance in instance_strategy(),
        s_tuples in proptest::collection::btree_set((1i64..5, 1i64..5), 0..4),
    ) {
        // Random mapping through an intermediate binary symbol S:
        //   lower ⊆ S, S ⊆ upper, S ⊆ downstream.
        let mut sig = test_signature();
        sig.add_relation("S", 2);
        let registry = Registry::standard();
        let constraints = vec![
            Constraint::containment(lower, Expr::rel("S")),
            Constraint::containment(Expr::rel("S"), upper),
            Constraint::containment(Expr::rel("S"), downstream),
        ];
        let Ok(success) = eliminate(&constraints, "S", &sig, &registry, &ComposeConfig::default())
        else {
            // Failure to eliminate is always acceptable (best effort).
            return Ok(());
        };
        // Soundness: any instance (with any contents for S) satisfying the
        // input constraints must satisfy the output constraints, which do not
        // mention S.
        let mut with_s = instance.clone();
        for (x, y) in s_tuples {
            with_s.insert("S", vec![Value::Int(x), Value::Int(y)]);
        }
        let ops = registry.operators();
        let input_holds = constraints.iter().all(|c| c.satisfied_by(&sig, ops, &with_s).unwrap());
        if input_holds {
            for constraint in &success.constraints {
                prop_assert!(!constraint.mentions("S"));
                prop_assert!(
                    constraint.satisfied_by(&sig, ops, &with_s).unwrap(),
                    "soundness violated by {} on {}",
                    constraint,
                    with_s
                );
            }
        }
    }
}
