//! Property-based tests over the core data structures and the algorithm's
//! key invariants:
//!
//! * printer/parser round-trip for randomly generated expressions,
//! * algebraic laws of the set-semantics evaluator,
//! * semantic soundness of the MONOTONE procedure,
//! * soundness of symbol elimination on randomly generated mappings.
//!
//! The original version of this suite used `proptest`; the build environment
//! is offline, so the random cases are generated directly with the
//! workspace's deterministic `rand` shim instead. Every case is reproducible
//! from the fixed seeds below, and failures print the offending expression.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mapping_composition::compose::{eliminate, monotonicity, Monotonicity};
use mapping_composition::prelude::*;

const CASES: usize = 128;

/// Fixed signature used by the generators: two unary and two binary
/// relations.
fn test_signature() -> Signature {
    Signature::from_arities([("A", 1), ("B", 1), ("P", 2), ("Q", 2)])
}

/// Random relation name of the given arity.
fn gen_rel(arity: usize, rng: &mut StdRng) -> Expr {
    match (arity, rng.gen_bool(0.5)) {
        (1, true) => Expr::rel("A"),
        (1, false) => Expr::rel("B"),
        (_, true) => Expr::rel("P"),
        (_, false) => Expr::rel("Q"),
    }
}

/// Random simple selection predicate valid for the given arity.
fn gen_pred(arity: usize, rng: &mut StdRng) -> Pred {
    let max_col = arity.saturating_sub(1);
    match rng.gen_range(0..3u32) {
        0 => Pred::True,
        1 => Pred::eq_const(rng.gen_range(0..=max_col), rng.gen_range(-2i64..6)),
        _ => Pred::eq_cols(rng.gen_range(0..=max_col), rng.gen_range(0..=max_col)),
    }
}

/// Random well-typed expression of the given arity (1 or 2) over the test
/// signature, mirroring the recursive strategy of the original proptest
/// version.
fn gen_expr(arity: usize, depth: u32, rng: &mut StdRng) -> Expr {
    if depth == 0 {
        return if rng.gen_bool(0.5) { gen_rel(arity, rng) } else { Expr::domain(arity) };
    }
    match rng.gen_range(0..4u32) {
        // Leaf.
        0 => match rng.gen_range(0..3u32) {
            0 => gen_rel(arity, rng),
            1 => Expr::domain(arity),
            _ => Expr::empty(arity),
        },
        // Binary set operation.
        1 => {
            let left = gen_expr(arity, depth - 1, rng);
            let right = gen_expr(arity, depth - 1, rng);
            match rng.gen_range(0..3u32) {
                0 => left.union(right),
                1 => left.intersect(right),
                _ => left.difference(right),
            }
        }
        // Selection.
        2 => {
            let inner = gen_expr(arity, depth - 1, rng);
            let pred = gen_pred(arity, rng);
            inner.select(pred)
        }
        // Projection / product, preserving the target arity.
        _ => {
            if arity == 1 {
                let col = rng.gen_range(0..2usize);
                gen_expr(2, depth - 1, rng).project(vec![col])
            } else if rng.gen_bool(0.5) {
                let swap = rng.gen_bool(0.5);
                gen_expr(2, depth - 1, rng).project(if swap { vec![1, 0] } else { vec![0, 1] })
            } else {
                gen_expr(1, depth - 1, rng).product(gen_expr(1, depth - 1, rng))
            }
        }
    }
}

/// Random small instance over the test signature.
fn gen_instance(rng: &mut StdRng) -> Instance {
    let mut instance = Instance::new();
    for name in ["A", "B"] {
        for _ in 0..rng.gen_range(0..3usize) {
            instance.insert(name, vec![Value::Int(rng.gen_range(1i64..5))]);
        }
    }
    for name in ["P", "Q"] {
        for _ in 0..rng.gen_range(0..4usize) {
            instance.insert(
                name,
                vec![Value::Int(rng.gen_range(1i64..5)), Value::Int(rng.gen_range(1i64..5))],
            );
        }
    }
    instance
}

#[test]
fn printed_expressions_reparse_identically() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let expr = gen_expr(2, 3, &mut rng);
        let printed = expr.to_string();
        let reparsed = parse_expr(&printed).expect("printed expression parses");
        assert_eq!(reparsed, expr, "case {case}: round-trip changed `{printed}`");
    }
}

#[test]
fn arity_checking_agrees_with_evaluation() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let sig = test_signature();
    let registry = Registry::standard();
    for case in 0..CASES {
        let expr = gen_expr(2, 3, &mut rng);
        let instance = gen_instance(&mut rng);
        let arity = expr.arity(&sig, registry.operators()).expect("well-typed by construction");
        assert_eq!(arity, 2, "case {case}: wrong arity for `{expr}`");
        let relation =
            mapping_composition::algebra::eval(&expr, &sig, registry.operators(), &instance)
                .expect("evaluates");
        for tuple in relation.iter() {
            assert_eq!(tuple.len(), 2, "case {case}: wrong tuple width from `{expr}`");
        }
    }
}

#[test]
fn evaluator_satisfies_set_algebra_laws() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let sig = test_signature();
    let registry = Registry::standard();
    let ops = registry.operators();
    for case in 0..CASES {
        let left = gen_expr(2, 2, &mut rng);
        let right = gen_expr(2, 2, &mut rng);
        let instance = gen_instance(&mut rng);
        let eval = |e: &Expr| mapping_composition::algebra::eval(e, &sig, ops, &instance).unwrap();

        // Commutativity of ∪ and ∩.
        assert_eq!(
            eval(&left.clone().union(right.clone())),
            eval(&right.clone().union(left.clone())),
            "case {case}: ∪ not commutative for `{left}` / `{right}`"
        );
        assert_eq!(
            eval(&left.clone().intersect(right.clone())),
            eval(&right.clone().intersect(left.clone())),
            "case {case}: ∩ not commutative for `{left}` / `{right}`"
        );
        // A − B ⊆ A and A ∩ B ⊆ A ⊆ A ∪ B.
        let a = eval(&left);
        assert!(eval(&left.clone().difference(right.clone())).is_subset(&a));
        assert!(eval(&left.clone().intersect(right.clone())).is_subset(&a));
        assert!(a.is_subset(&eval(&left.clone().union(right.clone()))));
        // Difference and intersection partition A: (A−B) ∪ (A∩B) = A.
        let partitioned = eval(&left.clone().difference(right.clone()))
            .union(&eval(&left.clone().intersect(right.clone())));
        assert_eq!(partitioned, a, "case {case}: (A−B) ∪ (A∩B) ≠ A for `{left}` / `{right}`");
    }
}

#[test]
fn monotone_verdicts_are_semantically_sound() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let sig = test_signature();
    let registry = Registry::standard();
    let ops = registry.operators();
    let symbol = "P";
    for case in 0..CASES {
        let expr = gen_expr(2, 3, &mut rng);
        let instance = gen_instance(&mut rng);
        let extra = (rng.gen_range(1i64..5), rng.gen_range(1i64..5));
        let verdict = monotonicity(&expr, symbol, &registry);

        // Build a larger instance by adding one tuple to P only.
        let mut larger = instance.clone();
        larger.insert(symbol, vec![Value::Int(extra.0), Value::Int(extra.1)]);

        let small = mapping_composition::algebra::eval(&expr, &sig, ops, &instance).unwrap();
        let large = mapping_composition::algebra::eval(&expr, &sig, ops, &larger).unwrap();

        // The active domain also grows when P grows, which can affect D^r; the
        // MONOTONE procedure treats D as independent, exactly as the paper's
        // rewrite rules do, so restrict the semantic check to D-free
        // expressions (the procedure stays sound for them).
        if !expr.mentions_domain() {
            match verdict {
                Monotonicity::Monotone => assert!(
                    small.is_subset(&large),
                    "case {case}: `{expr}` judged monotone in P but shrank"
                ),
                Monotonicity::AntiMonotone => assert!(
                    large.is_subset(&small),
                    "case {case}: `{expr}` judged anti-monotone in P but grew"
                ),
                Monotonicity::Independent => assert_eq!(
                    small, large,
                    "case {case}: `{expr}` judged independent of P but changed"
                ),
                Monotonicity::Unknown => {}
            }
        }
    }
}

#[test]
fn elimination_is_sound_on_random_mappings() {
    let mut rng = StdRng::seed_from_u64(0xE1E7);
    let registry = Registry::standard();
    for case in 0..CASES {
        // Random mapping through an intermediate binary symbol S:
        //   lower ⊆ S, S ⊆ upper, S ⊆ downstream.
        let upper = gen_expr(2, 2, &mut rng);
        let lower = gen_expr(2, 2, &mut rng);
        let downstream = gen_expr(2, 2, &mut rng);
        let instance = gen_instance(&mut rng);
        let s_count = rng.gen_range(0..4usize);
        let s_tuples: Vec<(i64, i64)> =
            (0..s_count).map(|_| (rng.gen_range(1i64..5), rng.gen_range(1i64..5))).collect();

        let mut sig = test_signature();
        sig.add_relation("S", 2);
        let constraints = vec![
            Constraint::containment(lower, Expr::rel("S")),
            Constraint::containment(Expr::rel("S"), upper),
            Constraint::containment(Expr::rel("S"), downstream),
        ];
        let Ok(success) = eliminate(&constraints, "S", &sig, &registry, &ComposeConfig::default())
        else {
            // Failure to eliminate is always acceptable (best effort).
            continue;
        };
        // Soundness: any instance (with any contents for S) satisfying the
        // input constraints must satisfy the output constraints, which do not
        // mention S.
        let mut with_s = instance.clone();
        for (x, y) in s_tuples {
            with_s.insert("S", vec![Value::Int(x), Value::Int(y)]);
        }
        let ops = registry.operators();
        let input_holds = constraints.iter().all(|c| c.satisfied_by(&sig, ops, &with_s).unwrap());
        if input_holds {
            for constraint in &success.constraints {
                assert!(!constraint.mentions("S"), "case {case}: output still mentions S");
                assert!(
                    constraint.satisfied_by(&sig, ops, &with_s).unwrap(),
                    "case {case}: soundness violated by {constraint} on {with_s}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Differential chase invariants.
// ---------------------------------------------------------------------------

use mapping_composition::algebra::Tuple;
use mapping_composition::compose::{DifferentialChase, ExchangeConfig, Update};

/// Shared fixture for the differential properties: a plannable,
/// non-recursive mapping with shared support (`P` and `Q` both feed `T1`),
/// a containment chain, and a projection, so insertion propagation,
/// support-counted deletion, and rederivation are all exercised.
fn delta_fixture() -> (Vec<Constraint>, Signature, Signature) {
    let full = Signature::from_arities([("P", 2), ("Q", 2), ("T1", 2), ("T2", 2), ("T3", 1)]);
    let target = Signature::from_arities([("T1", 2), ("T2", 2), ("T3", 1)]);
    let constraints =
        parse_constraints("P <= T1; Q <= T1; T1 <= T2; project[0](T2) <= T3").unwrap().into_vec();
    (constraints, full, target)
}

fn delta_engine(
    constraints: &[Constraint],
    full: &Signature,
    target: &Signature,
    rng: &mut StdRng,
) -> DifferentialChase {
    let mut source = Instance::new();
    for rel in ["P", "Q"] {
        for _ in 0..rng.gen_range(0..6usize) {
            source.insert(
                rel,
                vec![Value::Int(rng.gen_range(0i64..5)), Value::Int(rng.gen_range(0i64..5))],
            );
        }
    }
    DifferentialChase::new(
        constraints,
        full,
        target,
        source,
        &Registry::standard(),
        &ExchangeConfig::default(),
    )
}

/// Random signed batch over the source relations, biased toward live rows
/// on the delete side so retraction paths actually fire.
fn delta_batch(engine: &DifferentialChase, rng: &mut StdRng) -> Vec<Update> {
    let mut batch = Vec::new();
    for _ in 0..rng.gen_range(1..6usize) {
        let rel = if rng.gen_bool(0.5) { "P" } else { "Q" };
        let delete = rng.gen_bool(0.4);
        if delete && rng.gen_bool(0.85) {
            let rows: Vec<Tuple> = engine.source().get(rel).iter().cloned().collect();
            if let Some(row) = rows.get(rng.gen_range(0..rows.len().max(1))) {
                batch.push(Update::delete(rel, row.clone()));
                continue;
            }
        }
        let tuple = vec![Value::Int(rng.gen_range(0i64..5)), Value::Int(rng.gen_range(0i64..5))];
        if delete {
            batch.push(Update::delete(rel, tuple));
        } else {
            batch.push(Update::insert(rel, tuple));
        }
    }
    batch
}

#[test]
fn support_counts_stay_positive_under_random_batches() {
    let (constraints, full, target) = delta_fixture();
    let mut rng = StdRng::seed_from_u64(0xD17A);
    for case in 0..CASES {
        let mut engine = delta_engine(&constraints, &full, &target, &mut rng);
        for round in 0..6 {
            let batch = delta_batch(&engine, &mut rng);
            engine.apply(&batch).unwrap();
            // Support counting must never store a dead entry: a count of
            // zero means the firing should have been retracted outright.
            for (key, count) in engine.support() {
                assert!(*count >= 1, "case {case} round {round}: support entry {key:?} hit zero");
            }
        }
    }
}

#[test]
fn fresh_insert_then_delete_restores_target_and_support() {
    let (constraints, full, target) = delta_fixture();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for case in 0..CASES {
        let mut engine = delta_engine(&constraints, &full, &target, &mut rng);
        // Warm the engine with a random stream first.
        for _ in 0..3 {
            let batch = delta_batch(&engine, &mut rng);
            engine.apply(&batch).unwrap();
        }
        // A tuple guaranteed fresh: the generators only draw from 0..5.
        let rel = if rng.gen_bool(0.5) { "P" } else { "Q" };
        let fresh = vec![Value::Int(100 + case as i64), Value::Int(rng.gen_range(0i64..5))];
        let before_target = engine.rendered_target();
        let before_support = engine.support().clone();
        let before_nulls = engine.nulls();
        engine.apply(&[Update::insert(rel, fresh.clone())]).unwrap();
        engine.apply(&[Update::delete(rel, fresh)]).unwrap();
        assert_eq!(engine.rendered_target(), before_target, "case {case}: target not restored");
        assert_eq!(engine.support(), &before_support, "case {case}: support not restored");
        assert_eq!(engine.nulls(), before_nulls, "case {case}: null book not restored");
    }
}

#[test]
fn batches_are_order_insensitive() {
    let (constraints, full, target) = delta_fixture();
    let mut rng = StdRng::seed_from_u64(0x0D0E);
    for case in 0..CASES {
        let mut left = delta_engine(&constraints, &full, &target, &mut rng);
        let mut right = DifferentialChase::new(
            &constraints,
            &full,
            &target,
            left.source().clone(),
            &Registry::standard(),
            &ExchangeConfig::default(),
        );
        let batch = delta_batch(&left, &mut rng);
        // Manual Fisher–Yates: the rand shim has no shuffle.
        let mut shuffled = batch.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let left_report = left.apply(&batch).unwrap();
        let right_report = right.apply(&shuffled).unwrap();
        assert_eq!(
            left.rendered_target(),
            right.rendered_target(),
            "case {case}: target order-sensitive"
        );
        assert_eq!(left.support(), right.support(), "case {case}: support order-sensitive");
        assert_eq!(left.nulls(), right.nulls(), "case {case}: nulls order-sensitive");
        assert_eq!(
            (left_report.applied, left_report.inserted + left_report.deleted),
            (right_report.applied, right_report.inserted + right_report.deleted),
            "case {case}: report counters order-sensitive"
        );
        assert_eq!(
            mapping_composition::compose::render_instance(left.source()),
            mapping_composition::compose::render_instance(right.source()),
            "case {case}: source order-sensitive"
        );
    }
}
