//! Transport-equivalence suite for the service layer (the PR's acceptance
//! criterion): a seeded mixed workload — document adds, mapping edits,
//! invalidations, and batch composes — produces byte-identical composed
//! chains and consistent session statistics whether it is driven through
//! the in-process [`LocalService`] backend or over a loopback TCP server
//! with four concurrent client connections — and for *both* TCP engines,
//! the thread-per-connection [`Server`] and the readiness-driven
//! [`EventServer`], which must be byte-for-byte interchangeable on the
//! wire.
//!
//! Determinism boundary: mutations are applied by one client between
//! compose phases (a barrier separates phases), so both runs compose over
//! identical catalog states. Within a phase the remote run is genuinely
//! concurrent, which may change *scheduling-dependent counters* (per-request
//! compose calls, cache hits, fold plans, invalidation drop counts) but must
//! never change *content* — source, target, resolved path, the rendered
//! chain document, residuals, or which requests fail with which errors.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mapping_composition::prelude::*;
use mapping_composition::service::{EventServer, StatsPayload};

const CHAINS: usize = 3;
const HOPS: usize = 6;
const THREADS: usize = 4;
const PHASES: usize = 4;

fn schema_name(chain: usize, i: usize) -> String {
    format!("c{chain}v{i}")
}

fn mapping_name(chain: usize, i: usize) -> String {
    format!("c{chain}m{i}")
}

/// The base catalog: `CHAINS` independent evolution-style chains of `HOPS`
/// copy mappings, two relations per schema.
fn base_document() -> String {
    let mut text = String::new();
    for chain in 0..CHAINS {
        for i in 0..=HOPS {
            text.push_str(&format!(
                "schema {} {{ A{chain}_{i}/2; B{chain}_{i}/1; }}\n",
                schema_name(chain, i)
            ));
        }
        for i in 0..HOPS {
            text.push_str(&format!(
                "mapping {} : {} -> {} {{ A{chain}_{i} <= A{chain}_{j}; B{chain}_{i} <= B{chain}_{j}; }}\n",
                mapping_name(chain, i),
                schema_name(chain, i),
                schema_name(chain, i + 1),
                j = i + 1
            ));
        }
    }
    text
}

/// An edit of one link: new constraints (the `variant` keeps successive
/// edits of the same link distinct, so content hashes really change),
/// shipped as a self-contained document.
fn edit_document(chain: usize, i: usize, variant: usize) -> String {
    let j = i + 1;
    let constraints = match variant % 3 {
        0 => format!("project[0,1](A{chain}_{i}) <= A{chain}_{j}; B{chain}_{i} <= B{chain}_{j};"),
        1 => format!(
            "A{chain}_{i} <= A{chain}_{j}; project[0](B{chain}_{i} * B{chain}_{i}) <= B{chain}_{j};"
        ),
        _ => format!("A{chain}_{i} <= project[0,1](A{chain}_{j}); B{chain}_{i} <= B{chain}_{j};"),
    };
    format!(
        "schema {from} {{ A{chain}_{i}/2; B{chain}_{i}/1; }}\n\
         schema {to} {{ A{chain}_{j}/2; B{chain}_{j}/1; }}\n\
         mapping {name} : {from} -> {to} {{ {constraints} }}\n",
        from = schema_name(chain, i),
        to = schema_name(chain, j),
        name = mapping_name(chain, i),
    )
}

/// One phase: mutations applied serially by one client, then per-thread
/// request lists executed concurrently (remote) or in thread order (local).
struct Phase {
    mutations: Vec<Request>,
    per_thread: Vec<Vec<Request>>,
}

/// Build the whole seeded workload once; both runs execute the same value.
fn build_workload(seed: u64) -> Vec<Phase> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..PHASES)
        .map(|phase| {
            let mut mutations = Vec::new();
            if phase == 0 {
                mutations.push(Request::AddDocument { text: base_document() });
            } else {
                for edit in 0..2 {
                    let chain = rng.gen_range(0..CHAINS);
                    let i = rng.gen_range(0..HOPS);
                    match rng.gen_range(0..3u32) {
                        0 => {
                            mutations.push(Request::Invalidate { mapping: mapping_name(chain, i) });
                        }
                        _ => mutations.push(Request::AddDocument {
                            text: edit_document(chain, i, phase * 2 + edit),
                        }),
                    }
                }
            }
            let per_thread = (0..THREADS)
                .map(|_| {
                    let mut requests = Vec::new();
                    // One parallel batch per thread (batches within batches:
                    // the server fans these across its own workers)…
                    let pairs: Vec<(String, String)> = (0..6)
                        .map(|_| {
                            let chain = rng.gen_range(0..CHAINS);
                            let i = rng.gen_range(0..HOPS);
                            let j = rng.gen_range(i + 1..=HOPS);
                            (schema_name(chain, i), schema_name(chain, j))
                        })
                        .collect();
                    requests.push(Request::ComposeBatch { requests: pairs, workers: 2 });
                    // …plus individual composes, including deliberate
                    // failures (same-schema and backwards requests).
                    for _ in 0..4 {
                        let chain = rng.gen_range(0..CHAINS);
                        let i = rng.gen_range(0..=HOPS);
                        let j = rng.gen_range(0..=HOPS);
                        requests.push(Request::ComposePath {
                            from: schema_name(chain, i),
                            to: schema_name(chain, j),
                        });
                    }
                    requests
                })
                .collect();
            Phase { mutations, per_thread }
        })
        .collect()
}

/// The scheduling-independent fingerprint of a reply: chain *content* and
/// error identity, never counters.
fn fingerprint(reply: &Result<Response, ServiceError>) -> String {
    fn chain(payload: &mapping_composition::service::ChainPayload) -> String {
        format!(
            "composed {} -> {} via {:?}\n{}",
            payload.source, payload.target, payload.path, payload.document
        )
    }
    match reply {
        Ok(Response::Composed(payload)) => chain(payload),
        Ok(Response::Batch(items)) => items
            .iter()
            .map(|item| match item {
                Ok(payload) => chain(payload),
                Err(error) => format!("err {error}"),
            })
            .collect::<Vec<_>>()
            .join("\n--\n"),
        Ok(Response::Added { touched, schemas, mappings }) => {
            format!("added {touched:?} {schemas} {mappings}")
        }
        // Invalidation drop counts depend on which fold segments happen to
        // be cached, which is scheduling-dependent — compare the kind only.
        Ok(other) => other.kind().to_string(),
        Err(error) => format!("err {error}"),
    }
}

/// Execute the workload sequentially against an in-process backend.
fn run_local(workload: &[Phase]) -> (Vec<String>, StatsPayload) {
    let service = LocalService::new(Catalog::new(), THREADS);
    let mut outcomes = Vec::new();
    for phase in workload {
        for mutation in &phase.mutations {
            outcomes.push(fingerprint(&service.call(mutation.clone())));
        }
        for requests in &phase.per_thread {
            for request in requests {
                outcomes.push(fingerprint(&service.call(request.clone())));
            }
        }
    }
    let Ok(Response::Stats(stats)) = service.call(Request::Stats) else {
        panic!("stats request failed");
    };
    (outcomes, stats)
}

/// Drive the workload through `THREADS` concurrent client connections
/// against an already-listening server (mutations through one client,
/// compose phases genuinely parallel), finishing with stats + shutdown.
fn drive_clients(addr: &str, workload: &[Phase]) -> (Vec<String>, StatsPayload) {
    let mut outcomes = Vec::new();
    let clients: Vec<Client> =
        (0..THREADS).map(|_| Client::connect(addr).expect("connect")).collect();
    for phase in workload {
        for mutation in &phase.mutations {
            outcomes.push(fingerprint(&clients[0].call(mutation.clone())));
        }
        // The compose phase: all four connections in flight at once; the
        // scope end is the inter-phase barrier.
        let mut per_thread: Vec<Vec<String>> = Vec::new();
        std::thread::scope(|compose_scope| {
            let handles: Vec<_> = clients
                .iter()
                .zip(&phase.per_thread)
                .map(|(client, requests)| {
                    compose_scope.spawn(move || {
                        requests
                            .iter()
                            .map(|request| fingerprint(&client.call(request.clone())))
                            .collect::<Vec<String>>()
                    })
                })
                .collect();
            for handle in handles {
                per_thread.push(handle.join().expect("client thread panicked"));
            }
        });
        outcomes.extend(per_thread.into_iter().flatten());
    }
    let stats = match clients[0].call(Request::Stats) {
        Ok(Response::Stats(payload)) => payload,
        other => panic!("stats request failed: {other:?}"),
    };
    clients[0].call(Request::Shutdown).expect("shutdown accepted");
    (outcomes, stats)
}

/// Execute the workload over a loopback TCP server running the threaded
/// (thread-per-connection) engine.
fn run_remote_threaded(workload: &[Phase]) -> (Vec<String>, StatsPayload) {
    let backend = LocalService::new(Catalog::new(), THREADS);
    let server = Server::bind("127.0.0.1:0").expect("bind a loopback port");
    let addr = server.local_addr().expect("bound address").to_string();
    let mut result = None;
    std::thread::scope(|scope| {
        let (server_ref, backend_ref) = (&server, &backend);
        scope.spawn(move || {
            server_ref.run(backend_ref, THREADS).expect("server run");
        });
        result = Some(drive_clients(&addr, workload));
    });
    result.expect("clients drove the workload")
}

/// Execute the workload over a loopback TCP server running the
/// readiness-driven event-loop engine.
fn run_remote_event(workload: &[Phase]) -> (Vec<String>, StatsPayload) {
    let backend = LocalService::new(Catalog::new(), THREADS);
    let server = EventServer::bind("127.0.0.1:0").expect("bind a loopback port");
    let addr = server.local_addr().expect("bound address").to_string();
    let mut result = None;
    std::thread::scope(|scope| {
        let (server_ref, backend_ref) = (&server, &backend);
        scope.spawn(move || {
            server_ref.run(backend_ref, THREADS).expect("server run");
        });
        result = Some(drive_clients(&addr, workload));
    });
    result.expect("clients drove the workload")
}

#[test]
fn mixed_workload_is_transport_equivalent() {
    let workload = build_workload(0x5EEDA21);
    let (local_outcomes, local_stats) = run_local(&workload);
    let runs = [
        ("threaded TCP", run_remote_threaded(&workload)),
        ("event-loop TCP", run_remote_event(&workload)),
    ];

    for (engine, (remote_outcomes, remote_stats)) in &runs {
        assert_eq!(local_outcomes.len(), remote_outcomes.len());
        for (index, (local, remote)) in local_outcomes.iter().zip(remote_outcomes).enumerate() {
            assert_eq!(
                local, remote,
                "outcome {index} diverged between in-process and {engine} transports"
            );
        }

        // Catalog state is identical: counts, names, versions, content
        // hashes.
        assert_eq!(local_stats.schemas, remote_stats.schemas, "{engine}");
        assert_eq!(local_stats.mappings, remote_stats.mappings, "{engine}");
        assert_eq!(local_stats.entries, remote_stats.entries, "{engine}");

        // Deterministic session counters agree; scheduling-dependent cache
        // counters must still be coherent.
        assert_eq!(
            local_stats.session.chains_composed, remote_stats.session.chains_composed,
            "{engine}"
        );
        assert_eq!(
            local_stats.session.paths_resolved, remote_stats.session.paths_resolved,
            "{engine}"
        );
        for stats in [&local_stats, remote_stats] {
            assert!(stats.session.compose_calls > 0);
            assert!(stats.session.cache.insertions > 0);
            assert!(stats.session.cache.hits + stats.session.cache.misses > 0);
            assert!(stats.session.cache_entries <= stats.session.cache.insertions);
        }
    }
}

#[test]
fn workload_construction_is_deterministic() {
    // The equivalence above is only meaningful if both runs really executed
    // the same requests.
    let first = build_workload(7);
    let second = build_workload(7);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.mutations, b.mutations);
        assert_eq!(a.per_thread, b.per_thread);
    }
    assert_eq!(first.len(), PHASES);
    assert!(first.iter().all(|phase| phase.per_thread.len() == THREADS));
}
