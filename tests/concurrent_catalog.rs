//! Concurrency suite for the shared catalog: N threads fire a seeded random
//! mix of compose / invalidate / re-register / edit operations at one
//! [`SharedSession`], and every observable outcome must be byte-identical
//! to a single-threaded replay of the same per-thread operation sequences
//! on a plain [`Session`]. The generator runs on the deterministic `rand`
//! shim, so a failing interleaving reproduces from its printed thread seed.
//!
//! Deliberately *not* compared: schedule-dependent instrumentation such as
//! per-request `compose_calls`, cache-hit counts and invalidation drop
//! counts — those measure how much cached work a particular interleaving
//! could reuse, not what was computed. Everything semantically observable
//! (composed constraints, paths, completeness, version counters, hashes) is
//! compared exactly.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::catalog::{
    save_state, Session, SharedSession, SidecarWriter, VersionManifest,
};
use mapping_composition::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 24;
const HOPS: usize = 8;
const BASE_SEED: u64 = 0xC0FFEE;

/// One stress operation. Spans and indices refer to the shared copy chain
/// `v0 → … → vHOPS` (mappings `m0 … m{HOPS-1}`); `PrivateEdit` touches the
/// issuing thread's own mapping `tm{t}` only.
#[derive(Debug, Clone)]
enum Op {
    /// Compose the span `v{i} → v{j}` through the shared chain.
    ComposeSpan(usize, usize),
    /// Drop cached compositions depending on `m{k}` (content unchanged).
    Invalidate(usize),
    /// Re-register `m{k}` with identical content (a version-preserving
    /// no-op that must not disturb anyone).
    ReAdd(usize),
    /// Flip the thread's private mapping to its other content variant and
    /// compose the private one-link path.
    PrivateEdit,
}

/// The seeded per-thread operation sequence — the same generator drives the
/// concurrent run and the single-threaded replay.
fn thread_ops(thread: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(BASE_SEED + thread as u64);
    (0..OPS_PER_THREAD)
        .map(|_| match rng.gen_range(0..10u32) {
            0..=5 => {
                let i = rng.gen_range(0..HOPS);
                let j = rng.gen_range(i + 1..=HOPS);
                Op::ComposeSpan(i, j)
            }
            6 | 7 => Op::Invalidate(rng.gen_range(0..HOPS)),
            8 => Op::ReAdd(rng.gen_range(0..HOPS)),
            _ => Op::PrivateEdit,
        })
        .collect()
}

/// The shared fixture: one copy chain everyone composes over, plus one
/// private two-schema island per thread.
fn stress_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    for i in 0..=HOPS {
        catalog.add_schema(format!("v{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
    }
    for i in 0..HOPS {
        catalog
            .add_mapping(
                format!("m{i}"),
                &format!("v{i}"),
                &format!("v{}", i + 1),
                parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
            )
            .unwrap();
    }
    for t in 0..THREADS {
        catalog.add_schema(format!("t{t}a"), Signature::from_arities([(format!("P{t}"), 1)]));
        catalog.add_schema(format!("t{t}b"), Signature::from_arities([(format!("Q{t}"), 1)]));
        catalog
            .add_mapping(
                format!("tm{t}"),
                &format!("t{t}a"),
                &format!("t{t}b"),
                parse_constraints(&format!("P{t} <= Q{t}")).unwrap(),
            )
            .unwrap();
    }
    catalog
}

fn private_variant(thread: usize, edits_so_far: usize) -> ConstraintSet {
    // Alternate between two contents so every edit genuinely bumps the
    // version; starts at the non-initial variant.
    if edits_so_far.is_multiple_of(2) {
        parse_constraints(&format!("project[0](P{thread}) <= Q{thread}")).unwrap()
    } else {
        parse_constraints(&format!("P{thread} <= Q{thread}")).unwrap()
    }
}

fn render_compose(result: &mapping_composition::catalog::ChainResult) -> String {
    format!(
        "path={:?} complete={} residual={:?} constraints={}",
        result.chain.path,
        result.is_complete(),
        result.chain.residual.names(),
        result.chain.mapping.constraints
    )
}

/// Apply one op through the concurrent session; returns the outcome line.
fn apply_shared(session: &SharedSession, thread: usize, op: &Op, edits: &mut usize) -> String {
    match op {
        Op::ComposeSpan(i, j) => {
            let result = session.compose_path(&format!("v{i}"), &format!("v{j}")).unwrap();
            format!("compose v{i}->v{j} {}", render_compose(&result))
        }
        Op::Invalidate(k) => {
            session.invalidate(&format!("m{k}"));
            format!("invalidate m{k}")
        }
        Op::ReAdd(k) => {
            let version = session
                .add_mapping(
                    format!("m{k}"),
                    &format!("v{k}"),
                    &format!("v{}", k + 1),
                    parse_constraints(&format!("R{k} <= R{}", k + 1)).unwrap(),
                )
                .unwrap();
            format!("readd m{k} v{version}")
        }
        Op::PrivateEdit => {
            let constraints = private_variant(thread, *edits);
            *edits += 1;
            let (version, _) = session.update_mapping(&format!("tm{thread}"), constraints).unwrap();
            let result =
                session.compose_path(&format!("t{thread}a"), &format!("t{thread}b")).unwrap();
            format!("edit tm{thread} v{version} {}", render_compose(&result))
        }
    }
}

/// Apply one op through the single-threaded replay session; must produce
/// the identical outcome line.
fn apply_replay(session: &mut Session, thread: usize, op: &Op, edits: &mut usize) -> String {
    match op {
        Op::ComposeSpan(i, j) => {
            let result = session.compose_path(&format!("v{i}"), &format!("v{j}")).unwrap();
            format!("compose v{i}->v{j} {}", render_compose(&result))
        }
        Op::Invalidate(k) => {
            session.invalidate(&format!("m{k}"));
            format!("invalidate m{k}")
        }
        Op::ReAdd(k) => {
            let version = session
                .add_mapping(
                    format!("m{k}"),
                    &format!("v{k}"),
                    &format!("v{}", k + 1),
                    parse_constraints(&format!("R{k} <= R{}", k + 1)).unwrap(),
                )
                .unwrap();
            format!("readd m{k} v{version}")
        }
        Op::PrivateEdit => {
            let constraints = private_variant(thread, *edits);
            *edits += 1;
            let (version, _) = session.update_mapping(&format!("tm{thread}"), constraints).unwrap();
            let result =
                session.compose_path(&format!("t{thread}a"), &format!("t{thread}b")).unwrap();
            format!("edit tm{thread} v{version} {}", render_compose(&result))
        }
    }
}

fn temp_sidecar(tag: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("mapcomp_concurrent_{}_{tag}.memo", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn concurrent_stress_matches_single_threaded_replay() {
    let catalog = stress_catalog();
    let shared = SharedSession::new(catalog.clone(), THREADS);
    let writer = SidecarWriter::new(temp_sidecar("stress"));

    // Concurrent phase: every thread runs its seeded op sequence against the
    // one shared session, appending its private version line to the shared
    // sidecar after each edit.
    let outcomes: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let shared = &shared;
                let writer = &writer;
                scope.spawn(move || {
                    let mut edits = 0usize;
                    thread_ops(thread)
                        .iter()
                        .map(|op| {
                            let outcome = apply_shared(shared, thread, op, &mut edits);
                            if matches!(op, Op::PrivateEdit) {
                                let entry =
                                    shared.catalog().mapping(&format!("tm{thread}")).unwrap();
                                writer
                                    .append(&VersionManifest::of_mapping(&entry).render())
                                    .unwrap();
                            }
                            outcome
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|handle| handle.join().expect("stress worker panicked")).collect()
    });

    // (a) Byte-identical outcomes under a single-threaded replay of the same
    // per-thread sequences.
    let mut replay = Session::new(catalog);
    for (thread, thread_outcomes) in outcomes.iter().enumerate() {
        let mut edits = 0usize;
        for (index, op) in thread_ops(thread).iter().enumerate() {
            let expected = apply_replay(&mut replay, thread, op, &mut edits);
            assert_eq!(
                thread_outcomes[index],
                expected,
                "thread {thread} (seed {:#x}) op {index} {op:?} diverged from the replay",
                BASE_SEED + thread as u64
            );
        }
    }

    // (b) Version counters agree entry-for-entry, and the merged cache
    // statistics are self-consistent (no lost increments).
    let snapshot = shared.catalog().snapshot();
    for entry in replay.catalog().mappings() {
        let concurrent = snapshot.mapping(&entry.name).unwrap();
        assert_eq!(concurrent.version, entry.version, "version mismatch on {}", entry.name);
        assert_eq!(concurrent.hash, entry.hash, "hash mismatch on {}", entry.name);
        assert_eq!(concurrent.history, entry.history, "history mismatch on {}", entry.name);
    }
    assert_eq!(snapshot.mapping_count(), replay.catalog().mapping_count());
    let stats = shared.stats();
    assert_eq!(stats.chains_composed, stats.paths_resolved, "every resolved path was composed");
    let cache = stats.cache;
    assert!(
        stats.cache_entries + cache.invalidated + cache.evictions <= cache.insertions,
        "cache ledger out of balance: {cache:?} with {} live entries",
        stats.cache_entries
    );
    assert_eq!(cache.evictions, 0, "unbounded cache must not evict");

    // (c) No lost updates in the sidecar: the last appended line per private
    // mapping carries its final version, and compacting + reloading the full
    // state restores those versions exactly.
    let (manifest, _) = writer.load();
    for thread in 0..THREADS {
        let name = format!("tm{thread}");
        let final_version = snapshot.mapping(&name).unwrap().version;
        if final_version > 1 {
            let (recorded, _) = manifest.mappings[&name];
            assert_eq!(recorded, final_version, "{name}: concurrent appends lost an update");
        }
    }
    writer.rewrite(&save_state(&snapshot, &shared.cache().collect())).unwrap();
    let (compacted, _) = writer.load();
    let document =
        mapping_composition::algebra::parse_document(&snapshot.to_document_string()).unwrap();
    let mut rebuilt = Catalog::new();
    rebuilt.from_document(&document).unwrap();
    rebuilt.restore_versions(&compacted);
    for thread in 0..THREADS {
        let name = format!("tm{thread}");
        assert_eq!(
            rebuilt.mapping(&name).unwrap().version,
            snapshot.mapping(&name).unwrap().version,
            "{name}: compacted sidecar must restore the final version"
        );
    }
    let _ = std::fs::remove_file(writer.path());
}

#[test]
fn parallel_batch_is_deterministic_across_worker_counts() {
    // The same batch over 1, 2 and 4 workers must compose identical content
    // in identical request order.
    let catalog = stress_catalog();
    let requests: Vec<(String, String)> = (0..HOPS)
        .flat_map(|i| ((i + 1)..=HOPS).map(move |j| (format!("v{i}"), format!("v{j}"))))
        .collect();
    let reference: Vec<String> = SharedSession::new(catalog.clone(), 1)
        .compose_batch_parallel(&requests)
        .into_iter()
        .map(|result| render_compose(&result.unwrap()))
        .collect();
    for workers in [2, 4] {
        let session = SharedSession::new(catalog.clone(), workers);
        let rendered: Vec<String> = session
            .compose_batch_parallel(&requests)
            .into_iter()
            .map(|result| render_compose(&result.unwrap()))
            .collect();
        assert_eq!(rendered, reference, "{workers} workers diverged from the 1-worker batch");
    }
}
