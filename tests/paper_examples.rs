//! Integration tests: the worked examples of the paper, end to end through
//! the public API of the umbrella crate, including bounded-model equivalence
//! verification for the small ones.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::compose::{check_equivalence, VerifyConfig};
use mapping_composition::prelude::*;

fn registry() -> Registry {
    Registry::standard()
}

fn verify_cfg() -> VerifyConfig {
    VerifyConfig {
        domain: vec![Value::Int(1), Value::Int(2), Value::Int(5)],
        soundness_samples: 80,
        completeness_samples: 15,
        max_extensions: 1 << 16,
        max_tuples_per_relation: 2,
        seed: 99,
    }
}

/// Compose a textual task and return (task, result).
fn compose_text(text: &str) -> (mapping_composition::algebra::CompositionTask, ComposeResult) {
    let doc = parse_document(text).expect("parses");
    let task = doc.task("m12", "m23").expect("task");
    let result = compose(&task, &registry(), &ComposeConfig::default()).expect("composes");
    (task, result)
}

#[test]
fn example_1_composition_matches_expected_semantics() {
    let (task, result) = compose_text(
        r"
        schema sigma1 { Movies/4; }
        schema sigma2 { FiveStarMovies/3; }
        schema sigma3 { Names/2; Years/2; }
        mapping m12 : sigma1 -> sigma2 {
            project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
        }
        mapping m23 : sigma2 -> sigma3 {
            project[0,1](FiveStarMovies) <= Names;
            project[0,2](FiveStarMovies) <= Years;
        }
        ",
    );
    assert!(result.is_complete());

    // The paper's expected result is
    //   π_{mid,name}(σ_{rating=5}(Movies)) ⊆ Names
    //   π_{mid,year}(σ_{rating=5}(Movies)) ⊆ Years
    // Check equivalence of our (more verbose) output against that manual
    // mapping on bounded models.
    let manual = parse_constraints(
        "project[0,1](select[#3 = 5](Movies)) <= Names; project[0,2](select[#3 = 5](Movies)) <= Years",
    )
    .unwrap()
    .into_vec();
    let reduced_sig = Signature::from_arities([("Movies", 4), ("Names", 2), ("Years", 2)]);
    let full = task.full_signature().unwrap();

    // Both directions: our output implies the manual mapping and vice versa.
    let ours = result.constraints.clone().into_vec();
    let ours_vs_manual =
        check_equivalence(&ours, &reduced_sig, &manual, &reduced_sig, &registry(), &verify_cfg());
    ours_vs_manual.assert_equivalent();
    let manual_vs_ours =
        check_equivalence(&manual, &reduced_sig, &ours, &reduced_sig, &registry(), &verify_cfg());
    manual_vs_ours.assert_equivalent();

    // And the output is equivalent to the input constraint set in the formal
    // sense of paper §2 (eliminating FiveStarMovies).
    let inputs = task.combined_constraints().into_vec();
    let report = check_equivalence(&inputs, &full, &ours, &reduced_sig, &registry(), &verify_cfg());
    report.assert_equivalent();
}

#[test]
fn example_3_equivalence() {
    let (task, result) = compose_text(
        r"
        schema sigma1 { R/1; }
        schema sigma2 { S/1; }
        schema sigma3 { T/1; }
        mapping m12 : sigma1 -> sigma2 { R <= S; }
        mapping m23 : sigma2 -> sigma3 { S <= T; }
        ",
    );
    assert_eq!(result.constraints.to_string().trim(), "R <= T;");
    let full = task.full_signature().unwrap();
    let reduced = Signature::from_arities([("R", 1), ("T", 1)]);
    check_equivalence(
        &task.combined_constraints().into_vec(),
        &full,
        &result.constraints.clone().into_vec(),
        &reduced,
        &registry(),
        &verify_cfg(),
    )
    .assert_equivalent();
}

#[test]
fn example_5_view_unfolding_equivalence() {
    let (task, result) = compose_text(
        r"
        schema sigma1 { R1/1; R2/1; R3/2; }
        schema sigma2 { S/2; }
        schema sigma3 { T1/1; T2/2; T3/2; }
        mapping m12 : sigma1 -> sigma2 { S = R1 * R2; }
        mapping m23 : sigma2 -> sigma3 {
            project[0](R3 - S) <= T1;
            T2 <= T3 - select[#0 = 1](S);
        }
        ",
    );
    assert!(result.is_complete());
    assert_eq!(result.stats.eliminations_by_step(), (1, 0, 0));
    let full = task.full_signature().unwrap();
    let reduced = full.without(&["S".to_string()]);
    check_equivalence(
        &task.combined_constraints().into_vec(),
        &full,
        &result.constraints.clone().into_vec(),
        &reduced,
        &registry(),
        &VerifyConfig { completeness_samples: 0, ..verify_cfg() },
    )
    .assert_equivalent();
}

#[test]
fn example_10_left_compose_equivalence() {
    let (task, result) = compose_text(
        r"
        schema sigma1 { R/1; }
        schema sigma2 { S/1; }
        schema sigma3 { T/1; U/1; }
        mapping m12 : sigma1 -> sigma2 { R - S <= T; }
        mapping m23 : sigma2 -> sigma3 { project[0](S) <= U; }
        ",
    );
    assert!(result.is_complete());
    let full = task.full_signature().unwrap();
    let reduced = full.without(&["S".to_string()]);
    check_equivalence(
        &task.combined_constraints().into_vec(),
        &full,
        &result.constraints.clone().into_vec(),
        &reduced,
        &registry(),
        &verify_cfg(),
    )
    .assert_equivalent();
}

#[test]
fn example_16_skolemized_composition_equivalence() {
    // Examples 14/16: the composition requires Skolemization and
    // deskolemization; verify the final result against the input mappings.
    let (task, result) = compose_text(
        r"
        schema sigma1 { R/1; }
        schema sigma2 { S/2; }
        schema sigma3 { T/2; U/2; }
        mapping m12 : sigma1 -> sigma2 { R <= project[0](S * (T & U)); }
        mapping m23 : sigma2 -> sigma3 { S <= select[#0 = #1](T); }
        ",
    );
    assert!(result.is_complete(), "remaining: {:?}", result.remaining);
    let full = task.full_signature().unwrap();
    let reduced = full.without(&["S".to_string()]);
    check_equivalence(
        &task.combined_constraints().into_vec(),
        &full,
        &result.constraints.clone().into_vec(),
        &reduced,
        &registry(),
        &verify_cfg(),
    )
    .assert_equivalent();
}

#[test]
fn example_17_keeps_the_impossible_symbol() {
    let problem = problem("example17_not_fo_expressible").expect("in corpus");
    let result = problem.compose(&registry(), &ComposeConfig::default()).expect("composes");
    assert_eq!(result.remaining, vec!["C".to_string()]);
    assert!(result.eliminated.contains(&"F".to_string()));
    // The retained symbol still appears in the output constraints and the
    // output signature, as the best-effort contract requires.
    assert!(result.signature.contains("C"));
    assert!(result.constraints.iter().any(|c| c.mentions("C")));
}

#[test]
fn transitive_closure_symbol_is_kept_and_usable() {
    let problem = problem("transitive_closure").expect("in corpus");
    let result = problem.compose(&registry(), &ComposeConfig::default()).expect("composes");
    assert_eq!(result.remaining, vec!["S".to_string()]);
    // The kept symbol is "definable as a recursive view on R": populating
    // S := tc(R) satisfies the output constraints for a compatible T.
    let sig = Signature::from_arities([("R", 2), ("S", 2), ("T", 2)]);
    let registry = registry();
    let mut instance = Instance::new();
    instance.insert("R", vec![Value::Int(1), Value::Int(2)]);
    instance.insert("R", vec![Value::Int(2), Value::Int(3)]);
    // S = tc(R), T ⊇ S.
    for pair in [(1, 2), (2, 3), (1, 3)] {
        instance.insert("S", vec![Value::Int(pair.0), Value::Int(pair.1)]);
        instance.insert("T", vec![Value::Int(pair.0), Value::Int(pair.1)]);
    }
    let satisfied =
        result.constraints.satisfied_by(&sig, registry.operators(), &instance).expect("evaluates");
    assert!(satisfied);
}

#[test]
fn ablations_reported_in_the_paper_change_outcomes() {
    // Example 5 composes only through view unfolding; Examples 13/15 compose
    // only through right compose. The ablation switches must reproduce that.
    let unfolding_only_text = r"
        schema sigma1 { R1/1; R2/1; R3/2; }
        schema sigma2 { S/2; }
        schema sigma3 { T1/1; T2/2; T3/2; }
        mapping m12 : sigma1 -> sigma2 { S = R1 * R2; }
        mapping m23 : sigma2 -> sigma3 {
            project[0](R3 - S) <= T1;
            T2 <= T3 - select[#0 = 1](S);
        }
    ";
    let doc = parse_document(unfolding_only_text).unwrap();
    let task = doc.task("m12", "m23").unwrap();
    let without_unfolding = compose(
        &task,
        &registry(),
        &ComposeConfig { enable_view_unfolding: false, ..ComposeConfig::default() },
    )
    .unwrap();
    assert!(!without_unfolding.is_complete());

    let right_only_text = r"
        schema sigma1 { T/2; R/2; }
        schema sigma2 { S/1; }
        schema sigma3 { U/3; }
        mapping m12 : sigma1 -> sigma2 { T <= select[#0 = 5](S) * project[0](R); }
        mapping m23 : sigma2 -> sigma3 { S * T <= U; }
    ";
    let doc = parse_document(right_only_text).unwrap();
    let task = doc.task("m12", "m23").unwrap();
    let full = compose(&task, &registry(), &ComposeConfig::default()).unwrap();
    assert!(full.is_complete());
    assert_eq!(full.stats.eliminations_by_step(), (0, 0, 1));
    let without_right =
        compose(&task, &registry(), &ComposeConfig::without_right_compose()).unwrap();
    assert!(!without_right.is_complete());
}
