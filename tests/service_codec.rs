//! Property tests for the service wire codec: `decode(encode(x)) == x` for
//! every `Request`/`Response` variant over randomly generated payloads
//! (awkward strings included), plus malformed-frame rejection.
//!
//! Like `tests/property_tests.rs`, the cases are generated with the
//! workspace's deterministic `rand` shim — every failure is reproducible
//! from the fixed seeds below.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mapping_composition::catalog::Position;
use mapping_composition::service::{
    decode_reply, decode_request, decode_request_frame, decode_request_traced, encode_reply,
    encode_request, encode_request_frame, encode_request_traced, escape, unescape,
    CacheInfoPayload, ChainPayload, DeltaChunkPayload, ErrorCode, MappingInfo, ReplicationInfo,
    Request, Response, SegmentCacheInfo, ServiceError, SnapshotPayload, StatsPayload,
};

const CASES: usize = 64;

/// Random string over a palette chosen to stress the codec: token
/// separators, escape characters, newlines, Unicode whitespace, multi-byte
/// characters, and the empty string.
fn gen_string(rng: &mut StdRng) -> String {
    const PALETTE: [&str; 14] =
        ["a", "B", "7", "_", "-", " ", "%", "\n", "\t", "\r", "σ", "→", "\u{2028}", "%e"];
    let length = rng.gen_range(0..8usize);
    (0..length).map(|_| PALETTE[rng.gen_range(0..PALETTE.len())]).collect()
}

fn gen_strings(rng: &mut StdRng, max: usize) -> Vec<String> {
    (0..rng.gen_range(0..=max)).map(|_| gen_string(rng)).collect()
}

fn gen_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0..13u32) {
        0 => Request::Ping,
        1 => Request::AddDocument { text: gen_string(rng) },
        2 => Request::ComposePath { from: gen_string(rng), to: gen_string(rng) },
        3 => Request::ComposeNames { names: gen_strings(rng, 4) },
        4 => Request::ComposeBatch {
            requests: (0..rng.gen_range(0..4usize))
                .map(|_| (gen_string(rng), gen_string(rng)))
                .collect(),
            workers: rng.gen_range(0..9usize),
        },
        5 => Request::Invalidate { mapping: gen_string(rng) },
        6 => Request::Stats,
        7 => Request::CacheInfo,
        8 => Request::Metrics,
        9 => Request::Compact,
        10 => Request::Subscribe { from_generation: gen_hash(rng), from_seq: gen_hash(rng) },
        11 => Request::Snapshot,
        _ => Request::Shutdown,
    }
}

fn gen_error(rng: &mut StdRng) -> ServiceError {
    let code = ErrorCode::ALL[rng.gen_range(0..ErrorCode::ALL.len())];
    ServiceError::new(code, gen_string(rng))
}

fn gen_hash(rng: &mut StdRng) -> u64 {
    use rand::RngCore;
    rng.next_u64()
}

fn gen_chain(rng: &mut StdRng) -> ChainPayload {
    ChainPayload {
        source: gen_string(rng),
        target: gen_string(rng),
        path: gen_strings(rng, 4),
        deps: gen_strings(rng, 4),
        hash: gen_hash(rng),
        document: gen_string(rng),
        compose_calls: rng.gen_range(0..100usize),
        cache_hits: rng.gen_range(0..100usize),
        plan: (0..rng.gen_range(0..4usize)).map(|_| rng.gen_range(1..5usize)).collect(),
    }
}

fn gen_stats(rng: &mut StdRng) -> StatsPayload {
    let entries = (0..rng.gen_range(0..4usize))
        .map(|_| MappingInfo {
            name: gen_string(rng),
            source: gen_string(rng),
            target: gen_string(rng),
            version: rng.gen_range(1..9u64),
            hash: gen_hash(rng),
            constraints: rng.gen_range(0..9usize),
            history: (0..rng.gen_range(0..3usize)).map(|i| (i as u64 + 1, gen_hash(rng))).collect(),
        })
        .collect();
    let mut stats = StatsPayload {
        schemas: rng.gen_range(0..99usize),
        mappings: rng.gen_range(0..99usize),
        entries,
        ..StatsPayload::default()
    };
    stats.session.compose_calls = rng.gen_range(0..999usize);
    stats.session.paths_resolved = rng.gen_range(0..999usize);
    stats.session.chains_composed = rng.gen_range(0..999usize);
    stats.session.cache_entries = rng.gen_range(0..999usize);
    stats.session.cache.hits = rng.gen_range(0..999usize);
    stats.session.cache.misses = rng.gen_range(0..999usize);
    stats.session.cache.insertions = rng.gen_range(0..999usize);
    stats.session.cache.invalidated = rng.gen_range(0..999usize);
    stats.session.cache.evictions = rng.gen_range(0..999usize);
    stats.cache_capacity = if rng.gen_bool(0.5) { Some(rng.gen_range(1..99usize)) } else { None };
    stats.replication = if rng.gen_bool(0.5) {
        Some(ReplicationInfo {
            role: gen_string(rng),
            state: gen_string(rng),
            position: gen_position(rng),
            lag: gen_hash(rng),
        })
    } else {
        None
    };
    stats
}

fn gen_position(rng: &mut StdRng) -> Position {
    Position::new(gen_hash(rng), gen_hash(rng))
}

fn gen_cache_info(rng: &mut StdRng) -> CacheInfoPayload {
    CacheInfoPayload {
        segments: (0..rng.gen_range(0..5usize))
            .map(|segment| SegmentCacheInfo {
                segment,
                entries: rng.gen_range(0..999usize),
                capacity: if rng.gen_bool(0.5) { Some(rng.gen_range(1..99usize)) } else { None },
                hits: rng.gen_range(0..999usize),
                misses: rng.gen_range(0..999usize),
                insertions: rng.gen_range(0..999usize),
                invalidated: rng.gen_range(0..999usize),
                evictions: rng.gen_range(0..999usize),
            })
            .collect(),
    }
}

fn gen_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..14u32) {
        0 => Response::Pong,
        1 => Response::Added {
            touched: gen_strings(rng, 4),
            schemas: rng.gen_range(0..99usize),
            mappings: rng.gen_range(0..99usize),
        },
        2 => Response::Composed(gen_chain(rng)),
        3 => Response::Batch(
            (0..rng.gen_range(0..4usize))
                .map(|_| if rng.gen_bool(0.5) { Ok(gen_chain(rng)) } else { Err(gen_error(rng)) })
                .collect(),
        ),
        4 => Response::Invalidated { dropped: rng.gen_range(0..99usize) },
        5 => Response::Stats(gen_stats(rng)),
        6 => Response::Compacted { bytes_before: gen_hash(rng), bytes_after: gen_hash(rng) },
        7 => Response::Metrics { text: gen_string(rng) },
        8 => Response::CacheInfo(gen_cache_info(rng)),
        9 => Response::Subscribed { position: gen_position(rng) },
        10 => Response::Delta(DeltaChunkPayload {
            first: gen_position(rng),
            last: gen_position(rng),
            chunk: gen_string(rng),
        }),
        11 => Response::Generation { generation: gen_hash(rng) },
        12 => Response::Snapshot(SnapshotPayload {
            position: gen_position(rng),
            document: gen_string(rng),
            sidecar: gen_string(rng),
        }),
        _ => Response::ShuttingDown,
    }
}

#[test]
fn escaped_tokens_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5EC0DE);
    for case in 0..CASES * 4 {
        let text = gen_string(&mut rng);
        let token = escape(&text);
        assert!(
            !token.contains(char::is_whitespace),
            "case {case}: token `{token}` carries whitespace"
        );
        assert_eq!(unescape(&token).unwrap(), text, "case {case}: via `{token}`");
    }
}

#[test]
fn requests_round_trip_through_the_codec() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC01);
    for case in 0..CASES * 4 {
        let request = gen_request(&mut rng);
        let frame = encode_request(&request);
        let decoded = decode_request(&frame)
            .unwrap_or_else(|error| panic!("case {case}: {error}\nframe:\n{frame}"));
        assert_eq!(decoded, request, "case {case}: frame\n{frame}");
    }
}

#[test]
fn every_request_kind_is_exercised_and_round_trips() {
    // The generator is random; pin one case per variant so a codec
    // regression cannot hide behind generator drift.
    let cases = [
        Request::Ping,
        Request::AddDocument { text: "schema s { R/1; }\n".into() },
        Request::ComposePath { from: String::new(), to: "a schema".into() },
        Request::ComposeNames { names: vec![] },
        Request::ComposeNames { names: vec!["m 1".into(), "%".into()] },
        Request::ComposeBatch { requests: vec![], workers: 0 },
        Request::ComposeBatch {
            requests: vec![("σ1".into(), "σ2".into()), (String::new(), "\n".into())],
            workers: 8,
        },
        Request::Invalidate { mapping: "m\t2".into() },
        Request::Stats,
        Request::CacheInfo,
        Request::Metrics,
        Request::Compact,
        Request::Subscribe { from_generation: 0, from_seq: 0 },
        Request::Subscribe { from_generation: 7, from_seq: u64::MAX },
        Request::Snapshot,
        Request::Shutdown,
    ];
    for request in cases {
        let frame = encode_request(&request);
        assert_eq!(decode_request(&frame).unwrap(), request, "frame:\n{frame}");
    }
}

#[test]
fn replies_round_trip_through_the_codec() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC02);
    for case in 0..CASES * 4 {
        let reply: Result<Response, ServiceError> =
            if rng.gen_bool(0.2) { Err(gen_error(&mut rng)) } else { Ok(gen_response(&mut rng)) };
        let frame = encode_reply(&reply);
        let decoded = decode_reply(&frame)
            .unwrap_or_else(|error| panic!("case {case}: {error}\nframe:\n{frame}"));
        assert_eq!(decoded, reply, "case {case}: frame\n{frame}");
    }
}

#[test]
fn every_error_code_round_trips() {
    for code in ErrorCode::ALL {
        assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        let reply: Result<Response, ServiceError> =
            Err(ServiceError::new(code, format!("message for {code}")));
        let frame = encode_reply(&reply);
        assert_eq!(decode_reply(&frame).unwrap(), reply);
    }
    assert_eq!(ErrorCode::parse("not-a-code"), None);
}

#[test]
fn malformed_frames_are_rejected() {
    let bad_frames = [
        "",                                                                        // empty
        "end\n",                                                                   // header missing
        "mapcomp-service 1 request\nend\n",                                        // kind missing
        "mapcomp-service 2 request ping\nend\n",                                   // wrong version
        "other-protocol 1 request ping\nend\n",                                    // wrong protocol
        "mapcomp-service 1 request ping extra\nend\n",                             // trailing token
        "mapcomp-service 1 request no-such-kind\nend\n",                           // unknown kind
        "mapcomp-service 1 request ping\nfield x\nend\n",                          // stray field
        "mapcomp-service 1 request compose-path\nend\n",                           // missing fields
        "mapcomp-service 1 request compose-path\nfrom a\nfrom b\nto c\nend\n",     // duplicate
        "mapcomp-service 1 request add-document\ntext %zz\nend\n",                 // bad escape
        "mapcomp-service 1 request compose-batch\nworkers two\nend\n",             // bad number
        "mapcomp-service 1 request compose-batch\nworkers 1\npair onlyone\nend\n", // short pair
        "mapcomp-service 1 request ping\n", // truncated (no end)
    ];
    for frame in bad_frames {
        let error = decode_request(frame).expect_err(&format!("must reject: {frame:?}"));
        assert_eq!(error.code, ErrorCode::Protocol, "frame {frame:?} gave `{error}`");
    }

    let bad_replies = [
        "mapcomp-service 1 response composed\nsource a\nend\n", // missing chain fields
        "mapcomp-service 1 response composed\nsource a\ntarget b\npath\ndeps\nhash zz\ncalls 0\nhits 0\nplan\ndocument %e\nend\n", // bad hash
        "mapcomp-service 1 response batch\ncount 2\nend\n",     // count mismatch
        "mapcomp-service 1 response error\ncode sideways\nmessage %e\nend\n", // unknown code
        "mapcomp-service 1 response stats\nschemas 1\nmappings 1\nsession 1 2 3\nend\n", // short session
        "mapcomp-service 1 request ping\nend\n",                // direction mismatch
    ];
    for frame in bad_replies {
        let error = decode_reply(frame).expect_err(&format!("must reject: {frame:?}"));
        assert_eq!(error.code, ErrorCode::Protocol, "frame {frame:?} gave `{error}`");
    }
}

#[test]
fn truncating_any_valid_frame_breaks_it_loudly() {
    // Dropping the `end` terminator (or any suffix including it) must never
    // decode successfully — frames cannot be silently mistaken for shorter
    // ones.
    let mut rng = StdRng::seed_from_u64(0xC0DEC03);
    for _ in 0..CASES {
        let frame = encode_request(&gen_request(&mut rng));
        let without_end = frame.strip_suffix("end\n").unwrap();
        assert!(decode_request(without_end).is_err(), "frame:\n{frame}");
    }
}

#[test]
fn trace_ids_round_trip_over_the_wire() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC04);
    for case in 0..CASES {
        let request = gen_request(&mut rng);
        let id: u64 = rng.gen_range(1..u64::MAX);
        let frame = encode_request_traced(&request, Some(id));
        assert!(
            frame.contains(&format!("\ntrace {id:016x}\n")),
            "case {case}: trace field missing from\n{frame}"
        );
        let (decoded, trace) = decode_request_traced(&frame)
            .unwrap_or_else(|error| panic!("case {case}: {error}\nframe:\n{frame}"));
        assert_eq!(decoded, request, "case {case}");
        assert_eq!(trace, Some(id), "case {case}");

        // Servers that predate tracing parse the same frame untouched: the
        // plain decoder accepts and discards the trace field.
        assert_eq!(decode_request(&frame).unwrap(), request, "case {case}");
    }
}

#[test]
fn untraced_frames_are_byte_identical_to_the_legacy_encoding() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC05);
    for _ in 0..CASES {
        let request = gen_request(&mut rng);
        assert_eq!(encode_request_traced(&request, None), encode_request(&request));
        let (decoded, trace) = decode_request_traced(&encode_request(&request)).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(trace, None);
    }
}

#[test]
fn malformed_trace_fields_are_rejected() {
    let bad_frames = [
        // duplicate trace field
        "mapcomp-service 1 request ping\ntrace 00000000deadbeef\ntrace 00000000deadbeef\nend\n",
        // not hex
        "mapcomp-service 1 request ping\ntrace zz\nend\n",
        // missing value
        "mapcomp-service 1 request ping\ntrace\nend\n",
    ];
    for frame in bad_frames {
        let error = decode_request_traced(frame).expect_err(&format!("must reject: {frame:?}"));
        assert_eq!(error.code, ErrorCode::Protocol, "frame {frame:?} gave `{error}`");
    }
}

#[test]
fn auth_tokens_round_trip_over_the_wire() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC06);
    for case in 0..CASES {
        let request = gen_request(&mut rng);
        let token = format!("tok-{}", gen_string(&mut rng));
        let trace: Option<u64> =
            if rng.gen_bool(0.5) { Some(rng.gen_range(1..u64::MAX)) } else { None };
        let frame = encode_request_frame(&request, trace, Some(&token));
        let (decoded, decoded_trace, decoded_auth) = decode_request_frame(&frame)
            .unwrap_or_else(|error| panic!("case {case}: {error}\nframe:\n{frame}"));
        assert_eq!(decoded, request, "case {case}");
        assert_eq!(decoded_trace, trace, "case {case}");
        assert_eq!(decoded_auth.as_deref(), Some(token.as_str()), "case {case}");

        // Auth-unaware decoders (older servers, the plain helpers) accept
        // and discard the envelope: the auth field never leaks into kinds.
        assert_eq!(decode_request(&frame).unwrap(), request, "case {case}");

        // Canonical order: the auth line follows the trace line (when
        // present), before any kind field.
        let lines: Vec<&str> = frame.lines().collect();
        let auth_at = if trace.is_some() { 2 } else { 1 };
        assert!(
            lines[auth_at].starts_with("auth "),
            "case {case}: auth not at canonical position in\n{frame}"
        );
    }
}

#[test]
fn unauthenticated_frames_are_byte_identical_to_the_legacy_encoding() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC07);
    for _ in 0..CASES {
        let request = gen_request(&mut rng);
        assert_eq!(encode_request_frame(&request, None, None), encode_request(&request));
        let (decoded, trace, auth) = decode_request_frame(&encode_request(&request)).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(trace, None);
        assert_eq!(auth, None);
    }
}

#[test]
fn malformed_auth_fields_are_rejected() {
    let bad_frames = [
        // duplicate auth field
        "mapcomp-service 1 request ping\nauth a\nauth b\nend\n",
        // missing value
        "mapcomp-service 1 request ping\nauth\nend\n",
        // bad escape in the token
        "mapcomp-service 1 request ping\nauth %zz\nend\n",
    ];
    for frame in bad_frames {
        let error = decode_request_frame(frame).expect_err(&format!("must reject: {frame:?}"));
        assert_eq!(error.code, ErrorCode::Protocol, "frame {frame:?} gave `{error}`");
    }
}
