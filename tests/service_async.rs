//! End-to-end suite for the readiness-driven event engine: pipelining
//! byte-equivalence, slow-loris resilience (a thousand idle connections
//! must not starve compose traffic), deterministic `busy` backpressure,
//! wire auth, idle-reaping that spares mid-frame peers, and gauges that
//! return to zero after shutdown.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mapping_composition::prelude::*;
use mapping_composition::service::{read_frame, EventServer};

/// A linear chain catalog `v0 -> v1 -> … -> v{hops}`, one relation per
/// schema, so compose-path requests have deterministic answers.
fn chain_document(hops: usize) -> String {
    let mut text = String::new();
    for i in 0..=hops {
        text.push_str(&format!("schema v{i} {{ R{i}/1; }}\n"));
    }
    for i in 0..hops {
        text.push_str(&format!("mapping m{i} : v{i} -> v{j} {{ R{i} <= R{j}; }}\n", j = i + 1));
    }
    text
}

fn chain_backend(hops: usize) -> LocalService {
    let service = LocalService::new(Catalog::new(), 2);
    service.call(Request::AddDocument { text: chain_document(hops) }).unwrap();
    service
}

fn encode(request: &Request) -> String {
    mapping_composition::service::encode_request(request)
}

/// Connect with retries: under connection bursts the listener's backlog
/// can drop a SYN, which surfaces as a transient refusal.
fn connect_patiently(addr: &str) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(error) if Instant::now() < deadline => {
                let _ = error;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(error) => panic!("cannot connect to {addr}: {error}"),
        }
    }
}

/// The pipelined requests under test: successes, a failure, and repeats
/// (repeats exercise the reorder map; the failure must hold its position).
fn pipeline_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::ComposePath { from: "v0".into(), to: "v4".into() },
        Request::ComposePath { from: "v4".into(), to: "v0".into() },
        Request::ComposePath { from: "v1".into(), to: "v3".into() },
        Request::Ping,
        Request::ComposePath { from: "v0".into(), to: "v4".into() },
    ]
}

/// Run `requests` over one connection to `addr`, lock-step: write one,
/// read one. Returns the raw reply frames.
fn run_sequential(addr: &str, requests: &[Request]) -> Vec<String> {
    let stream = connect_patiently(addr);
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut frames = Vec::new();
    for request in requests {
        writer.write_all(encode(request).as_bytes()).unwrap();
        writer.flush().unwrap();
        frames.push(read_frame(&mut reader).unwrap().expect("reply frame"));
    }
    frames
}

/// Run `requests` over one connection to `addr`, pipelined: write the
/// whole burst back-to-back, then read every reply. Returns the raw reply
/// frames.
fn run_pipelined(addr: &str, requests: &[Request]) -> Vec<String> {
    let stream = connect_patiently(addr);
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let burst: String = requests.iter().map(encode).collect();
    writer.write_all(burst.as_bytes()).unwrap();
    writer.flush().unwrap();
    (0..requests.len()).map(|_| read_frame(&mut reader).unwrap().expect("reply frame")).collect()
}

/// Shut a server down through a throwaway client connection.
fn send_shutdown(addr: &str) {
    let client = Client::connect(addr).unwrap();
    client.call(Request::Shutdown).unwrap();
}

#[test]
fn pipelined_replies_are_byte_identical_to_sequential_round_trips() {
    // Three identically seeded servers, so per-request cache counters in
    // the payloads evolve identically: sequential over the event engine,
    // pipelined over the event engine, pipelined over the threaded engine.
    // All three reply streams must match byte for byte.
    let requests = pipeline_requests();

    let sequential = {
        let backend = chain_backend(4);
        let server = EventServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let mut frames = None;
        std::thread::scope(|scope| {
            scope.spawn(|| server.run(&backend, 2).unwrap());
            frames = Some(run_sequential(&addr, &requests));
            send_shutdown(&addr);
        });
        frames.unwrap()
    };

    let pipelined_event = {
        let backend = chain_backend(4);
        let server = EventServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let mut frames = None;
        std::thread::scope(|scope| {
            scope.spawn(|| server.run(&backend, 2).unwrap());
            frames = Some(run_pipelined(&addr, &requests));
            send_shutdown(&addr);
        });
        frames.unwrap()
    };

    let pipelined_threaded = {
        let backend = chain_backend(4);
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let mut frames = None;
        std::thread::scope(|scope| {
            scope.spawn(|| server.run(&backend, 2).unwrap());
            frames = Some(run_pipelined(&addr, &requests));
            send_shutdown(&addr);
        });
        frames.unwrap()
    };

    assert_eq!(sequential.len(), requests.len());
    for (index, (seq, pipe)) in sequential.iter().zip(&pipelined_event).enumerate() {
        assert_eq!(seq, pipe, "reply {index}: event-engine pipeline diverged from sequential");
    }
    for (index, (seq, pipe)) in sequential.iter().zip(&pipelined_threaded).enumerate() {
        assert_eq!(seq, pipe, "reply {index}: threaded-engine pipeline diverged from sequential");
    }
}

#[test]
fn a_thousand_idle_connections_do_not_starve_compose_traffic() {
    // Slow loris: 1024 connections held open without sending a byte. The
    // threaded engine would pin a worker per connection and deadlock at
    // `workers` of them; the event engine must keep serving composes with
    // a 4-thread CPU pool.
    const IDLE: usize = 1024;
    let backend = chain_backend(6);
    let server = EventServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(&backend, 4).unwrap());

        let idle: Vec<TcpStream> = (0..IDLE).map(|_| connect_patiently(&addr)).collect();

        // Compose traffic proceeds while every idle socket stays open.
        let client = Client::connect(&addr).unwrap();
        for i in 0..6usize {
            let reply = client
                .call(Request::ComposePath { from: format!("v{i}"), to: "v6".into() })
                .unwrap();
            assert!(matches!(reply, Response::Composed(_)));
        }
        assert_eq!(client.call(Request::Ping).unwrap(), Response::Pong);

        // The idle sockets are still connected (the server has not dropped
        // them): a request on one of them still gets served.
        let lazy = idle.into_iter().next_back().unwrap();
        lazy.set_nodelay(true).unwrap();
        let mut writer = lazy.try_clone().unwrap();
        let mut reader = BufReader::new(lazy);
        writer.write_all(encode(&Request::Ping).as_bytes()).unwrap();
        writer.flush().unwrap();
        let frame = read_frame(&mut reader).unwrap().expect("reply on a formerly idle socket");
        assert!(frame.contains("pong"), "unexpected reply frame:\n{frame}");

        client.call(Request::Shutdown).unwrap();
    });
}

/// A backend that sleeps before every compose, so compose requests can be
/// held in flight deterministically.
struct SlowService {
    inner: LocalService,
    delay: Duration,
}

impl MapcompService for SlowService {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        if matches!(request, Request::ComposePath { .. }) {
            std::thread::sleep(self.delay);
        }
        self.inner.call(request)
    }
}

#[test]
fn saturating_the_cpu_queue_sheds_with_the_busy_error() {
    // One CPU worker, queue limit 1, and a single connection pipelining
    // three slow composes: the first occupies the worker, the second waits
    // in the connection's pipeline, and the third must be shed with `busy`
    // — deterministically, because frames are processed in arrival order
    // before any completion can drain.
    let backend = SlowService { inner: chain_backend(4), delay: Duration::from_millis(300) };
    let mut server = EventServer::bind("127.0.0.1:0").unwrap();
    server.set_queue_limit(1);
    assert_eq!(server.queue_limit(), 1);
    let addr = server.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(&backend, 1).unwrap());

        let compose = Request::ComposePath { from: "v0".into(), to: "v4".into() };
        let frames = run_pipelined(&addr, &[compose.clone(), compose.clone(), compose]);
        let replies: Vec<_> = frames
            .iter()
            .map(|frame| mapping_composition::service::decode_reply(frame).unwrap())
            .collect();
        assert!(matches!(replies[0], Ok(Response::Composed(_))), "{:?}", replies[0]);
        assert!(matches!(replies[1], Ok(Response::Composed(_))), "{:?}", replies[1]);
        let error = replies[2].as_ref().unwrap_err();
        assert_eq!(error.code, ErrorCode::Busy, "third reply: {error}");

        // The shed is visible in telemetry, and the connection survived to
        // serve more requests after the busy reply.
        let client = Client::connect(&addr).unwrap();
        let Ok(Response::Metrics { text }) = client.call(Request::Metrics) else {
            panic!("metrics request failed");
        };
        let shed: u64 = text
            .lines()
            .find_map(|line| line.strip_prefix("server_busy_rejected_total "))
            .expect("busy counter in the exposition")
            .trim()
            .parse()
            .unwrap();
        assert!(shed >= 1, "busy shed not counted:\n{text}");

        client.call(Request::Shutdown).unwrap();
    });
}

#[test]
fn the_event_engine_enforces_wire_auth() {
    let backend = chain_backend(2);
    let mut server = EventServer::bind("127.0.0.1:0").unwrap();
    server.set_auth_token(Some("swordfish".into()));
    let addr = server.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(&backend, 2).unwrap());

        // No token: refused, but the connection survives to authenticate.
        let anonymous = Client::connect(&addr).unwrap();
        let error = anonymous.call(Request::Ping).unwrap_err();
        assert_eq!(error.code, ErrorCode::Unavailable);
        assert!(error.to_string().contains("auth"), "unhelpful refusal: {error}");

        // Wrong token: still refused.
        let wrong = Client::connect(&addr).unwrap().with_auth_token(Some("sardine".into()));
        assert_eq!(wrong.call(Request::Ping).unwrap_err().code, ErrorCode::Unavailable);

        // Right token: the first frame authenticates the connection and
        // later frames ride without the field.
        let authed = Client::connect(&addr).unwrap().with_auth_token(Some("swordfish".into()));
        assert_eq!(authed.call(Request::Ping).unwrap(), Response::Pong);
        assert!(matches!(
            authed.call(Request::ComposePath { from: "v0".into(), to: "v2".into() }),
            Ok(Response::Composed(_))
        ));

        authed.call(Request::Shutdown).unwrap();
    });
}

#[test]
fn a_stalling_half_frame_client_survives_the_event_engines_idle_reaper() {
    let backend = chain_backend(2);
    let mut server = EventServer::bind("127.0.0.1:0").unwrap();
    server.set_idle_timeout(Some(Duration::from_millis(150)));
    let addr = server.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(&backend, 1).unwrap());

        let stream = connect_patiently(&addr);
        stream.set_nodelay(true).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // Deliver a frame in two halves with a pause several idle timeouts
        // long in between: buffered bytes are progress, so the connection
        // must not be reaped.
        let frame = encode(&Request::Ping);
        let (head, tail) = frame.split_at(frame.len() / 2);
        writer.write_all(head.as_bytes()).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(600));
        writer.write_all(tail.as_bytes()).unwrap();
        writer.flush().unwrap();
        let reply = read_frame(&mut reader).unwrap().expect("half-frame client was reaped");
        assert!(reply.contains("pong"), "unexpected reply frame:\n{reply}");

        // A connection that is *genuinely* idle — no buffered bytes — is
        // reaped: the server closes it and read_frame sees clean EOF.
        let idle = connect_patiently(&addr);
        let mut idle_reader = BufReader::new(idle);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match read_frame(&mut idle_reader) {
                Ok(None) => break, // clean close by the reaper
                Ok(Some(frame)) => panic!("unsolicited frame:\n{frame}"),
                Err(error) => {
                    assert!(Instant::now() < deadline, "idle connection never reaped: {error}");
                }
            }
        }

        send_shutdown(&addr);
    });
}

#[test]
fn gauges_return_to_zero_after_event_engine_shutdown() {
    let backend = chain_backend(3);
    let server = EventServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(&backend, 2).unwrap());
        let clients: Vec<Client> = (0..4).map(|_| Client::connect(&addr).unwrap()).collect();
        for (i, client) in clients.iter().enumerate() {
            let reply = client
                .call(Request::ComposePath { from: format!("v{}", i % 3), to: "v3".into() })
                .unwrap();
            assert!(matches!(reply, Response::Composed(_)));
        }
        clients[0].call(Request::Shutdown).unwrap();
    });

    // The registry is process-global and other tests in this binary run
    // concurrently, so poll: once *their* servers also quiesce, the active
    // and queue-depth gauges must read zero.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = mapping_composition::telemetry::metrics::global().render();
        let gauge = |name: &str| -> Option<i64> {
            text.lines().find_map(|line| line.strip_prefix(name)?.trim().parse().ok())
        };
        let active = gauge("server_connections_active ");
        let cpu_queue = gauge("server_cpu_queue_depth ");
        if active == Some(0) && cpu_queue == Some(0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauges did not settle to zero: active={active:?} cpu_queue={cpu_queue:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
