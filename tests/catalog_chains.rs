//! Integration suite for the mapping catalog and the incremental
//! composition-chain engine: multi-hop chains, cache hit/miss behaviour,
//! dependency-tracked invalidation after edits, error paths, and the
//! evolution-replay hook — all through the umbrella crate's public API.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::catalog::{load_cache, save_cache, CatalogError, ChainOptions};
use mapping_composition::prelude::*;

/// A linear catalog v0 → v1 → … → v{hops} of unary copy mappings
/// `R{i} <= R{i+1}`.
fn chain_session(hops: usize) -> Session {
    let mut catalog = Catalog::new();
    for i in 0..=hops {
        catalog.add_schema(format!("v{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
    }
    for i in 0..hops {
        catalog
            .add_mapping(
                format!("m{i}"),
                &format!("v{i}"),
                &format!("v{}", i + 1),
                parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
            )
            .unwrap();
    }
    Session::new(catalog)
}

#[test]
fn five_hop_chain_composes_end_to_end() {
    let mut session = chain_session(5);
    let result = session.compose_path("v0", "v5").unwrap();
    assert!(result.is_complete());
    assert_eq!(result.chain.path, vec!["m0", "m1", "m2", "m3", "m4"]);
    assert_eq!(result.compose_calls, 4, "n-link chain folds through n-1 pairwise compositions");
    // The composed mapping relates the endpoints directly.
    let text = result.chain.mapping.constraints.to_string();
    assert_eq!(text.trim(), "R0 <= R5;");
    // Every intermediate symbol is gone.
    for i in 1..5 {
        assert!(!text.contains(&format!("R{i} ")), "intermediate R{i} in: {text}");
    }
}

#[test]
fn cache_hits_make_recomposition_and_subchains_cheap() {
    let mut session = chain_session(5);
    session.compose_path("v0", "v5").unwrap();
    let stats = session.stats();
    assert_eq!(stats.compose_calls, 4);
    assert_eq!(stats.cache.misses, 4);
    assert_eq!(stats.cache.hits, 0);

    // Full recomposition: the whole chain is one cached run — a single
    // lookup, no new work.
    let warm = session.compose_path("v0", "v5").unwrap();
    assert_eq!(warm.compose_calls, 0);
    assert_eq!(warm.cache_hits, 1, "the full chain is absorbed as one cached run");
    assert_eq!(warm.plan, vec![5]);

    // A prefix subchain is warm too (left-associated segments are shared).
    let prefix = session.compose_path("v0", "v3").unwrap();
    assert_eq!(prefix.compose_calls, 0);

    // A suffix subchain is *not* left-fold-shaped, so it costs new work —
    // cache keys are content-addressed segments, not arbitrary slices.
    let suffix = session.compose_path("v2", "v5").unwrap();
    assert!(suffix.compose_calls > 0);
}

#[test]
fn editing_one_middle_mapping_recomposes_strictly_less_than_cold() {
    // The acceptance-criterion scenario, end to end: 5-hop chain, edit one
    // middle link, recompose. The instrumented counter must show strictly
    // fewer pairwise compose() calls than the from-scratch run.
    let mut session = chain_session(5);
    let cold = session.compose_path("v0", "v5").unwrap();
    assert_eq!(cold.compose_calls, 4);

    let (version, dropped) =
        session.update_mapping("m2", parse_constraints("project[0](R2) <= R3").unwrap()).unwrap();
    assert_eq!(version, 2);
    // m2 participates in the fold steps for prefixes of length 3, 4, 5.
    assert_eq!(dropped, 3, "exactly the suffix segments depending on m2 are dropped");

    let incremental = session.compose_path("v0", "v5").unwrap();
    assert!(
        incremental.compose_calls < cold.compose_calls,
        "incremental recomposition ({} calls) must beat cold ({} calls)",
        incremental.compose_calls,
        cold.compose_calls
    );
    assert_eq!(incremental.compose_calls, 3, "the m0∘m1 prefix is reused");
    assert_eq!(incremental.cache_hits, 1);
    assert_eq!(incremental.plan, vec![2, 1, 1, 1], "cached prefix run, then link by link");
    assert!(incremental.is_complete());
    // The recomposed mapping relates the endpoints through the edited
    // projection and mentions no intermediate symbol (exact shape is up to
    // the best-effort rewriter).
    let text = incremental.chain.mapping.constraints.to_string();
    assert!(text.contains("R0") && text.contains("R5") && text.contains("project"), "{text}");
    for i in 1..5 {
        assert!(!text.contains(&format!("R{i} ")), "intermediate R{i} in: {text}");
    }
}

#[test]
fn editing_the_last_mapping_keeps_the_longest_prefix() {
    let mut session = chain_session(5);
    session.compose_path("v0", "v5").unwrap();
    session.update_mapping("m4", parse_constraints("project[0](R4) <= R5").unwrap()).unwrap();
    let incremental = session.compose_path("v0", "v5").unwrap();
    // Only the final fold step depends on m4.
    assert_eq!(incremental.compose_calls, 1);
    assert_eq!(incremental.cache_hits, 1);
}

#[test]
fn editing_the_first_mapping_falls_back_to_the_cached_suffix() {
    let mut session = chain_session(5);
    // Warm the v1 → v5 sub-chain, then the full chain.
    session.compose_path("v1", "v5").unwrap();
    let full = session.compose_path("v0", "v5").unwrap();
    assert!(full.compose_calls > 0);
    // Editing m0 invalidates every segment that includes it — but the
    // v1 → v5 segments survive, and run absorption joins the edited first
    // link to that cached suffix with a single new composition.
    session.update_mapping("m0", parse_constraints("project[0](R0) <= R1").unwrap()).unwrap();
    let incremental = session.compose_path("v0", "v5").unwrap();
    assert_eq!(
        incremental.compose_calls, 1,
        "edited first link joins the cached v1→v5 suffix in one composition"
    );
    assert_eq!(incremental.plan, vec![1, 4]);
    assert!(incremental.is_complete());
}

#[test]
fn no_path_and_unknown_names_error() {
    let mut session = chain_session(3);
    // Directed graph: backwards is unreachable.
    assert!(matches!(session.compose_path("v3", "v0"), Err(CatalogError::NoPath { .. })));
    assert!(matches!(session.compose_path("v0", "v0"), Err(CatalogError::EmptyPath { .. })));
    assert!(matches!(session.compose_path("v0", "nowhere"), Err(CatalogError::UnknownSchema(_))));
    // A disconnected island.
    session.add_schema("island", Signature::from_arities([("Z", 1)]));
    assert!(matches!(session.compose_path("v0", "island"), Err(CatalogError::NoPath { .. })));
}

#[test]
fn incomplete_elimination_mid_chain_best_effort_and_strict() {
    // v0 → v1 is a plain copy; v1 → v2 pins the intermediate with a
    // transitive closure, which no elimination step can remove.
    let mut catalog = Catalog::new();
    catalog.add_schema("v0", Signature::from_arities([("A", 2)]));
    catalog.add_schema("v1", Signature::from_arities([("B", 2)]));
    catalog.add_schema("v2", Signature::from_arities([("C", 2)]));
    catalog.add_schema("v3", Signature::from_arities([("D", 2)]));
    catalog.add_mapping("m0", "v0", "v1", parse_constraints("A <= B; B = tc(B)").unwrap()).unwrap();
    catalog.add_mapping("m1", "v1", "v2", parse_constraints("B <= C").unwrap()).unwrap();
    catalog.add_mapping("m2", "v2", "v3", parse_constraints("C <= D").unwrap()).unwrap();

    // Best effort: the chain composes, the blocked symbol rides along as a
    // residual and is reported.
    let mut session = Session::new(catalog.clone());
    let result = session.compose_path("v0", "v3").unwrap();
    assert!(!result.is_complete());
    assert_eq!(result.chain.residual.names(), vec!["B".to_string()]);
    // Downstream symbols were still eliminated best-effort.
    let text = result.chain.mapping.constraints.to_string();
    assert!(!text.contains('C'), "C must be eliminated: {text}");

    // Strict sessions reject the same chain at the offending link.
    let strict = SessionConfig {
        chain: ChainOptions { require_complete: true },
        ..SessionConfig::default()
    };
    let mut session = Session::with_config(catalog, Registry::standard(), strict);
    let err = session.compose_path("v0", "v3").unwrap_err();
    assert!(matches!(err, CatalogError::Incomplete { .. }));
    if let CatalogError::Incomplete { remaining, .. } = err {
        assert_eq!(remaining, vec!["B".to_string()]);
    }
}

#[test]
fn strict_sessions_reject_cached_incomplete_segments() {
    // A lenient session composes (and memoises) an incomplete chain; a
    // strict session restoring that warm cache must still reject it — the
    // completeness policy applies to cache hits, not just fresh work (this
    // is the CLI's cross-invocation situation with a shared sidecar).
    let mut catalog = Catalog::new();
    catalog.add_schema("a", Signature::from_arities([("P", 2)]));
    catalog.add_schema("b", Signature::from_arities([("Q", 2)]));
    catalog.add_schema("c", Signature::from_arities([("Z", 2)]));
    catalog.add_mapping("r1", "a", "b", parse_constraints("P <= Q; Q = tc(Q)").unwrap()).unwrap();
    catalog.add_mapping("r2", "b", "c", parse_constraints("Q <= Z").unwrap()).unwrap();

    let mut lenient = Session::new(catalog.clone());
    assert!(!lenient.compose_path("a", "c").unwrap().is_complete());
    let sidecar = save_cache(lenient.cache());

    let strict_config = SessionConfig {
        chain: ChainOptions { require_complete: true },
        ..SessionConfig::default()
    };
    let mut strict = Session::with_config(catalog, Registry::standard(), strict_config);
    strict.restore_cache(load_cache(&sidecar));
    let err = strict.compose_path("a", "c").unwrap_err();
    assert!(matches!(err, CatalogError::Incomplete { .. }), "got {err:?}");
}

#[test]
fn batch_requests_share_the_cache() {
    let mut session = chain_session(4);
    let results = session.compose_batch(&[
        ("v0".to_string(), "v2".to_string()),
        ("v0".to_string(), "v3".to_string()),
        ("v0".to_string(), "v4".to_string()),
    ]);
    assert!(results.iter().all(Result::is_ok));
    // Each request extends the previous chain by one link: 1 + 1 + 1 calls.
    let calls: Vec<usize> = results.iter().map(|r| r.as_ref().unwrap().compose_calls).collect();
    assert_eq!(calls, vec![1, 1, 1]);
    assert_eq!(session.stats().compose_calls, 3);
}

#[test]
fn memo_sidecar_round_trip_preserves_incrementality() {
    // Simulate the CLI's cross-invocation flow: compose, save the cache,
    // restore it into a fresh session over the same catalog text.
    let mut session = chain_session(4);
    session.compose_path("v0", "v4").unwrap();
    let catalog_text = session.catalog().to_document_string();
    let sidecar = save_cache(session.cache());

    let document = parse_document(&catalog_text).unwrap();
    let mut rebuilt = Catalog::new();
    rebuilt.from_document(&document).unwrap();
    let mut fresh = Session::new(rebuilt);
    fresh.restore_cache(load_cache(&sidecar));
    let warm = fresh.compose_path("v0", "v4").unwrap();
    assert_eq!(warm.compose_calls, 0, "restored sidecar must serve the whole chain");
    assert_eq!(warm.cache_hits, 1, "the whole chain is one restored run");
}

#[test]
fn evolution_replay_runs_incrementally_through_the_catalog() {
    let config = ScenarioConfig { schema_size: 6, edits: 10, seed: 7, ..ScenarioConfig::default() };
    let replay = replay_editing(&config).unwrap();
    assert!(replay.edits > 1, "scenario must apply edits");
    // Incremental: each edit pays at most one new pairwise composition.
    for record in &replay.records {
        assert!(record.compose_calls <= 1, "edit {} paid {}", record.index, record.compose_calls);
    }
    // A cold recomposition of the same final chain costs edits-1 calls —
    // strictly more than any single incremental step for chains ≥ 3 links.
    let final_result = replay.final_result.as_ref().unwrap();
    let path = final_result.chain.path.clone();
    let mut cold_session = Session::new(replay.session.catalog().clone());
    let cold = cold_session.compose_names(&path).unwrap();
    assert_eq!(cold.compose_calls, path.len() - 1);
    assert!(replay.records.last().unwrap().compose_calls < cold.compose_calls);
    // The replayed chain and the cold chain agree on the composed mapping.
    assert_eq!(
        final_result.chain.mapping.constraints.to_string(),
        cold.chain.mapping.constraints.to_string()
    );
}

#[test]
fn content_addressing_survives_no_op_edits() {
    let mut session = chain_session(3);
    session.compose_path("v0", "v3").unwrap();
    // Re-register an identical mapping: hash unchanged, cache stays warm.
    let (version, dropped) =
        session.update_mapping("m1", parse_constraints("R1 <= R2").unwrap()).unwrap();
    assert_eq!(version, 1, "identical content must not bump the version");
    assert_eq!(dropped, 0);
    assert_eq!(session.compose_path("v0", "v3").unwrap().compose_calls, 0);
}
