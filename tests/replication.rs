//! End-to-end replication suite: a leader [`LocalService`] behind an
//! [`EventServer`] streaming its delta log to [`Follower`] replicas over
//! real sockets. Covers snapshot bootstrap (fresh and stale positions),
//! live tailing, byte-identical convergence under concurrent leader writes,
//! the compaction/subscription atomicity fix (no dropped or duplicated
//! deltas across a generation boundary), follower kill/restart resume, and
//! the read-only write fence.
//!
//! The tests share the process-global metrics registry (lag gauge,
//! snapshot counters), so they serialise on one mutex.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use mapping_composition::catalog::{
    parse_positioned_delta, save_versions, Catalog, Position, SessionConfig,
};
use mapping_composition::compose::Registry;
use mapping_composition::service::{
    sidecar_path, Client, ErrorCode, EventServer, Follower, LocalService, MapcompService as _,
    PersistMode, PersistPolicy, Request, Response,
};

/// One test at a time: they share the process-global metrics registry and
/// assert on counter deltas.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Threshold compaction disabled, so tests control generation boundaries
/// explicitly.
fn policy() -> PersistPolicy {
    PersistPolicy { mode: PersistMode::Incremental, compact_appends: None, compact_bytes: None }
}

/// The path `temp_catalog` produces for `tag`, without cleaning anything.
fn temp_catalog_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mapcomp_replication_{tag}_{}.doc", std::process::id()))
}

fn temp_catalog(tag: &str) -> std::path::PathBuf {
    let file = temp_catalog_path(tag);
    cleanup(&file);
    file
}

fn cleanup(file: &std::path::Path) {
    for path in [file.to_path_buf(), sidecar_path(file)] {
        let _ = std::fs::remove_file(&path);
        let mut tmp = path.file_name().unwrap().to_os_string();
        tmp.push(".tmp");
        let _ = std::fs::remove_file(path.with_file_name(tmp));
    }
}

/// A replicating leader over `file`: incremental persistence, hub enabled.
fn open_leader(file: &std::path::Path) -> LocalService {
    let service = LocalService::open_with_policy(
        file,
        Registry::standard(),
        SessionConfig::default(),
        4,
        true,
        policy(),
    )
    .expect("open leader");
    service.enable_replication().expect("enable replication");
    service
}

fn open_follower(file: &std::path::Path, leader_addr: &str) -> Follower {
    Follower::open(file, leader_addr, Registry::standard(), SessionConfig::default(), 2, None)
        .expect("open follower")
}

/// Serve a fresh replicating leader on a loopback socket for the duration
/// of `body`; the server is shut down even if `body` panics, so a failed
/// assertion fails the test instead of wedging the scope join.
fn with_leader(tag: &str, body: impl FnOnce(&LocalService, &str)) {
    let leader_file = temp_catalog(&format!("{tag}_leader"));
    let leader = open_leader(&leader_file);
    let server = EventServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.run(&leader, 2));
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&leader, &addr)));
        if let Ok(client) = Client::connect(&addr) {
            let _ = client.call(Request::Shutdown);
        }
        let served = serve.join().unwrap();
        match outcome {
            Err(panic) => resume_unwind(panic),
            Ok(()) => served.expect("leader server"),
        }
    });
    cleanup(&leader_file);
}

/// Run the follower's apply loop while `body` executes; stops the loop and
/// joins it afterwards, panic or not.
fn with_running_follower(follower: &Follower, body: impl FnOnce()) {
    std::thread::scope(|scope| {
        let apply = scope.spawn(|| follower.run());
        let outcome = catch_unwind(AssertUnwindSafe(body));
        follower.stop();
        let applied = apply.join().unwrap();
        match outcome {
            Err(panic) => resume_unwind(panic),
            Ok(()) => applied.expect("apply loop"),
        }
    });
}

/// Leader + one live follower, both torn down safely around `body`.
fn with_leader_and_follower(tag: &str, body: impl FnOnce(&LocalService, &str, &Follower)) {
    let follower_file = temp_catalog(&format!("{tag}_follower"));
    with_leader(tag, |leader, addr| {
        let follower = open_follower(&follower_file, addr);
        with_running_follower(&follower, || body(leader, addr, &follower));
    });
    cleanup(&follower_file);
}

fn add(service: &LocalService, text: &str) {
    match service.call(Request::AddDocument { text: text.into() }) {
        Ok(Response::Added { .. }) => {}
        other => panic!("add failed: {other:?}"),
    }
}

fn chain_document(hops: usize) -> String {
    let mut text = String::new();
    for i in 0..=hops {
        text.push_str(&format!("schema v{i} {{ R{i}/1; }}\n"));
    }
    for i in 0..hops {
        text.push_str(&format!("mapping m{i} : v{i} -> v{} {{ R{i} <= R{}; }}\n", i + 1, i + 1));
    }
    text
}

/// Wait until the follower is streaming with its position caught up to the
/// leader's log end. Panics after `timeout`.
fn await_convergence(leader: &LocalService, follower: &Follower, timeout: Duration) {
    let hub = leader.replication_hub().expect("leader hub");
    let deadline = Instant::now() + timeout;
    loop {
        let status = follower.status();
        if status.state == "streaming" && status.position == hub.position() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower never converged: leader at {}, follower {:?}",
            hub.position(),
            status
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The convergence comparison surface: byte-identical document rendering
/// and version manifest.
fn replica_state(catalog: &Catalog) -> (String, String) {
    (catalog.to_document_string(), save_versions(catalog))
}

fn assert_replicas_identical(leader: &LocalService, follower: &Follower) {
    let leader_catalog = leader.session().catalog().snapshot();
    let follower_catalog = follower.catalog_snapshot();
    assert_eq!(replica_state(&leader_catalog), replica_state(&follower_catalog));
}

/// The counter value of `name` in the leader's metrics exposition.
fn metric_value(leader: &LocalService, name: &str) -> u64 {
    let text = match leader.call(Request::Metrics) {
        Ok(Response::Metrics { text }) => text,
        other => panic!("metrics failed: {other:?}"),
    };
    text.lines()
        .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or(0)
}

/// Every positioned record in a follower sidecar must advance — a repeated
/// delta position means a chunk was delivered twice, a position below the
/// generation floor means records were dropped or replayed across a
/// compaction boundary.
fn assert_log_monotonic(sidecar_text: &str) {
    // `floor` is the highest position any line has announced; a generation
    // marker names the *next* record's position, so a delta may legally sit
    // exactly at the floor, but deltas must be strictly increasing among
    // themselves.
    let mut floor = Position::new(0, 0);
    let mut last_delta: Option<Position> = None;
    for line in sidecar_text.lines() {
        if let Some(rest) = line.strip_prefix("generation ") {
            let mut tokens = rest.split_whitespace();
            let generation: u64 = tokens.next().unwrap().parse().unwrap();
            let seq: u64 = tokens.next().unwrap().parse().unwrap();
            let marker = Position::new(generation, seq);
            assert!(marker >= floor, "generation marker went backwards: {marker} after {floor}");
            floor = marker;
        } else if let Some((Some(position), _)) = parse_positioned_delta(line) {
            assert!(position >= floor, "delta predates its generation: {position} under {floor}");
            if let Some(previous) = last_delta {
                assert!(
                    position > previous,
                    "duplicate or out-of-order delta: {position} after {previous}"
                );
            }
            last_delta = Some(position);
            floor = position;
        }
    }
}

#[test]
fn fresh_follower_bootstraps_from_snapshot_and_serves_reads() {
    let _serial = serial();
    let follower_file = temp_catalog("bootstrap_follower");
    with_leader("bootstrap", |leader, addr| {
        // Data that predates the follower entirely: a fresh follower's 0:0
        // position is stale against the leader's generation, so the first
        // connection must bootstrap from a snapshot.
        add(leader, &chain_document(4));
        let snapshots_before = metric_value(leader, "replication_snapshots_served_total");

        let follower = open_follower(&follower_file, addr);
        with_running_follower(&follower, || {
            await_convergence(leader, &follower, Duration::from_secs(10));
            assert_eq!(
                metric_value(leader, "replication_snapshots_served_total"),
                snapshots_before + 1,
                "a fresh follower must bootstrap from exactly one snapshot"
            );
            assert_replicas_identical(leader, &follower);

            // Reads are served locally by the replica.
            let service = follower.service();
            match service.call(Request::ComposePath { from: "v0".into(), to: "v4".into() }) {
                Ok(Response::Composed(payload)) => {
                    assert_eq!(payload.path, vec!["m0", "m1", "m2", "m3"]);
                }
                other => panic!("compose on follower failed: {other:?}"),
            }
            let status = follower.status();
            assert_eq!(status.role, "follower");
            assert_eq!(status.lag, 0);
        });
    });
    cleanup(&follower_file);
}

#[test]
fn live_writes_stream_to_byte_identical_convergence() {
    let _serial = serial();
    with_leader_and_follower("live", |leader, _addr, follower| {
        await_convergence(leader, follower, Duration::from_secs(10));
        // Writes land while the follower tails: schemas, mappings, edits
        // (version bumps) and invalidations.
        add(leader, &chain_document(3));
        add(leader, "schema x1 { A/1; } schema x2 { B/1; } mapping mx : x1 -> x2 { A <= B; }");
        add(leader, "mapping mx : x1 -> x2 { A <= project[0](B); }");
        match leader.call(Request::Invalidate { mapping: "m1".into() }) {
            Ok(Response::Invalidated { .. }) => {}
            other => panic!("invalidate failed: {other:?}"),
        }
        await_convergence(leader, follower, Duration::from_secs(10));
        assert_replicas_identical(leader, follower);

        // The follower's stats surface reports its role and zero lag.
        match follower.service().call(Request::Stats) {
            Ok(Response::Stats(stats)) => {
                let replication = stats.replication.expect("follower stats carry replication");
                assert_eq!(replication.role, "follower");
                assert_eq!(replication.state, "streaming");
                assert_eq!(replication.lag, 0);
            }
            other => panic!("stats failed: {other:?}"),
        }
    });
}

#[test]
fn compaction_mid_subscription_neither_drops_nor_duplicates() {
    let _serial = serial();
    with_leader_and_follower("compact", |leader, _addr, follower| {
        await_convergence(leader, follower, Duration::from_secs(10));
        // Interleave writes and compactions: every Compact bumps the
        // generation and rewrites the leader sidecar while the follower's
        // subscription is live. The atomic boundary handoff must deliver
        // every record exactly once.
        for round in 0..4 {
            add(
                leader,
                &format!(
                    "schema a{round} {{ P{round}/1; }} schema b{round} {{ Q{round}/1; }} \
                     mapping w{round} : a{round} -> b{round} {{ P{round} <= Q{round}; }}"
                ),
            );
            match leader.call(Request::Compact) {
                Ok(Response::Compacted { .. }) => {}
                other => panic!("compact failed: {other:?}"),
            }
            add(
                leader,
                &format!(
                    "mapping w{round} : a{round} -> b{round} \
                     {{ P{round} <= project[0](Q{round}); }}"
                ),
            );
        }
        await_convergence(leader, follower, Duration::from_secs(10));
        assert_replicas_identical(leader, follower);
        let sidecar_text =
            std::fs::read_to_string(sidecar_path(&temp_catalog_path("compact_follower")))
                .expect("follower sidecar");
        assert_log_monotonic(&sidecar_text);
    });
}

#[test]
fn follower_kill_and_restart_resumes_without_a_snapshot() {
    let _serial = serial();
    let follower_file = temp_catalog("restart_follower");
    with_leader("restart", |leader, addr| {
        add(leader, &chain_document(3));

        // First life: bootstrap (one snapshot), converge, shut down through
        // the service surface so the replica persists its artifacts.
        let first = open_follower(&follower_file, addr);
        let snapshots_before = metric_value(leader, "replication_snapshots_served_total");
        with_running_follower(&first, || {
            await_convergence(leader, &first, Duration::from_secs(10));
            assert_eq!(first.service().call(Request::Shutdown).unwrap(), Response::ShuttingDown);
        });

        // Writes the dead follower misses.
        add(leader, "schema y1 { C/1; } schema y2 { D/1; } mapping my : y1 -> y2 { C <= D; }");

        // Second life: resume from the recorded position — the retained log
        // still covers it (no compaction happened), so no snapshot is
        // served; the missed writes arrive as replay.
        let second = open_follower(&follower_file, addr);
        with_running_follower(&second, || {
            await_convergence(leader, &second, Duration::from_secs(10));
            assert_replicas_identical(leader, &second);
        });
        assert_eq!(
            metric_value(leader, "replication_snapshots_served_total"),
            snapshots_before + 1,
            "a restart within the retained log must resume, not re-bootstrap"
        );
    });
    cleanup(&follower_file);
}

#[test]
fn stale_follower_bootstraps_from_a_snapshot_after_leader_compaction() {
    let _serial = serial();
    let follower_file = temp_catalog("stale_follower");
    with_leader("stale", |leader, addr| {
        add(leader, &chain_document(3));

        let first = open_follower(&follower_file, addr);
        with_running_follower(&first, || {
            await_convergence(leader, &first, Duration::from_secs(10));
            assert_eq!(first.service().call(Request::Shutdown).unwrap(), Response::ShuttingDown);
        });

        // While the follower is down, the leader moves on *and compacts*:
        // the follower's recorded position now predates the oldest retained
        // generation.
        add(leader, "schema z1 { E/1; } schema z2 { F/1; } mapping mz : z1 -> z2 { E <= F; }");
        match leader.call(Request::Compact) {
            Ok(Response::Compacted { .. }) => {}
            other => panic!("compact failed: {other:?}"),
        }
        let snapshots_before = metric_value(leader, "replication_snapshots_served_total");

        let second = open_follower(&follower_file, addr);
        with_running_follower(&second, || {
            await_convergence(leader, &second, Duration::from_secs(10));
            assert_replicas_identical(leader, &second);
        });
        assert_eq!(
            metric_value(leader, "replication_snapshots_served_total"),
            snapshots_before + 1,
            "a stale position must bootstrap from exactly one snapshot"
        );
    });
    cleanup(&follower_file);
}

#[test]
fn concurrent_leader_writes_with_live_follower_converge_byte_identically() {
    let _serial = serial();
    const THREADS: usize = 4;
    const OPS_PER_THREAD: usize = 24;
    with_leader_and_follower("stress", |leader, _addr, follower| {
        await_convergence(leader, follower, Duration::from_secs(10));
        // Shared fixture every thread composes over, plus one private
        // mapping per thread that it edits back and forth (version bumps).
        add(leader, &chain_document(4));
        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                scope.spawn(move || {
                    for op in 0..OPS_PER_THREAD {
                        match op % 4 {
                            0 | 1 => {
                                // Edit the private mapping: alternating
                                // content variants, each a version bump and
                                // an invalidation on the wire.
                                let body = if (op / 4) % 2 == 0 {
                                    format!("S{thread} <= T{thread};")
                                } else {
                                    format!("S{thread} <= project[0](T{thread});")
                                };
                                add(
                                    leader,
                                    &format!(
                                        "schema s{thread} {{ S{thread}/1; }} \
                                         schema t{thread} {{ T{thread}/1; }} \
                                         mapping p{thread} : s{thread} -> t{thread} {{ {body} }}"
                                    ),
                                );
                            }
                            2 => {
                                let _ = leader
                                    .call(Request::Invalidate { mapping: format!("m{thread}") });
                            }
                            _ => {
                                let _ = leader.call(Request::ComposePath {
                                    from: "v0".into(),
                                    to: "v4".into(),
                                });
                            }
                        }
                    }
                });
            }
            // A compactor rides along: generation boundaries land in the
            // middle of the write storm.
            scope.spawn(move || {
                for _ in 0..3 {
                    std::thread::sleep(Duration::from_millis(20));
                    let _ = leader.call(Request::Compact);
                }
            });
        });
        await_convergence(leader, follower, Duration::from_secs(30));
        assert_replicas_identical(leader, follower);
    });
}

#[test]
fn followers_fence_writes_with_the_readonly_error() {
    let _serial = serial();
    with_leader_and_follower("readonly", |leader, addr, follower| {
        await_convergence(leader, follower, Duration::from_secs(10));
        let service = follower.service();
        for request in [
            Request::AddDocument { text: "schema q { R/1; }".into() },
            Request::Invalidate { mapping: "m0".into() },
            Request::Compact,
        ] {
            let error = service.call(request).expect_err("writes must be fenced");
            assert_eq!(error.code, ErrorCode::Readonly);
            assert!(error.message.contains(addr), "the error must name the leader: {error}");
        }
        // A follower is not a leader: replication requests point back too.
        let error = service.call(Request::Snapshot).expect_err("followers serve no snapshots");
        assert_eq!(error.code, ErrorCode::Unavailable);
        assert!(error.message.contains(addr), "the error must name the leader: {error}");
    });
}
