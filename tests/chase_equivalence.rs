//! Equivalence suite for the two chase strategies: the semi-naive indexed
//! engine must be observationally identical to the naive reference — same
//! target instance (the engines even allocate labelled nulls in the same
//! order, so equality is exact, which subsumes isomorphism up to null
//! renaming), same skipped constraints, same convergence flag and round
//! count — across the paper's worked examples, the literature corpus, and
//! evolution-simulator scenarios.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::compose::plan::{PremisePlan, TupleIndex, WorkBudget};
use mapping_composition::compose::{exchange, ChaseStrategy, ExchangeConfig, ExchangeResult};
use mapping_composition::prelude::*;

fn registry() -> Registry {
    Registry::standard()
}

/// Chase under both strategies and assert they coincide; returns the
/// semi-naive result for scenario-specific checks.
fn assert_strategies_agree(
    label: &str,
    constraints: &[Constraint],
    full: &Signature,
    target: &Signature,
    source: &Instance,
    config: &ExchangeConfig,
) -> ExchangeResult {
    let naive = exchange(
        constraints,
        full,
        target,
        source,
        &registry(),
        &config.clone().with_strategy(ChaseStrategy::Naive),
    );
    let semi = exchange(
        constraints,
        full,
        target,
        source,
        &registry(),
        &config.clone().with_strategy(ChaseStrategy::SemiNaive),
    );
    assert_eq!(naive.target, semi.target, "{label}: targets differ");
    assert_eq!(naive.nulls_created, semi.nulls_created, "{label}: null counts differ");
    assert_eq!(naive.rounds, semi.rounds, "{label}: round counts differ");
    assert_eq!(naive.converged, semi.converged, "{label}: convergence differs");
    let naive_skipped: Vec<&Constraint> = naive.skipped.iter().map(|(c, _)| c).collect();
    let semi_skipped: Vec<&Constraint> = semi.skipped.iter().map(|(c, _)| c).collect();
    assert_eq!(naive_skipped, semi_skipped, "{label}: skipped sets differ");
    semi
}

#[test]
fn example_1_composed_migration_is_strategy_independent() {
    let doc = parse_document(
        r"
        schema sigma1 { Movies/4; }
        schema sigma2 { FiveStarMovies/3; }
        schema sigma3 { Names/2; Years/2; }
        mapping m12 : sigma1 -> sigma2 {
            project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
        }
        mapping m23 : sigma2 -> sigma3 {
            project[0,1](FiveStarMovies) <= Names;
            project[0,2](FiveStarMovies) <= Years;
        }
        ",
    )
    .unwrap();
    let task = doc.task("m12", "m23").unwrap();
    let composed = compose(&task, &registry(), &ComposeConfig::default()).unwrap();

    let mut source = Instance::new();
    source.insert("Movies", vec![Value::Int(1), Value::Int(11), Value::Int(1991), Value::Int(5)]);
    source.insert("Movies", vec![Value::Int(2), Value::Int(22), Value::Int(1992), Value::Int(4)]);
    source.insert("Movies", vec![Value::Int(3), Value::Int(33), Value::Int(1993), Value::Int(5)]);

    let full = task.full_signature().unwrap();
    let result = assert_strategies_agree(
        "example 1",
        composed.constraints.as_slice(),
        &full,
        &task.sigma3,
        &source,
        &ExchangeConfig::default(),
    );
    assert!(result.converged);
    assert!(result.skipped.is_empty());
    assert_eq!(result.target.get("Names").len(), 2);
}

#[test]
fn paper_example_scenarios_agree() {
    // The worked-example documents of `tests/paper_examples.rs`, chased
    // directly (uncomposed, so the intermediate schema is part of the
    // target) from a small σ1 instance.
    let documents = [
        (
            "example 3 (R ⊆ S ⊆ T)",
            r"
            schema sigma1 { R/1; }
            schema sigma2 { S/1; }
            schema sigma3 { T/1; }
            mapping m12 : sigma1 -> sigma2 { R <= S; }
            mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
        ),
        (
            "example 5 (view unfolding)",
            r"
            schema sigma1 { R1/1; R2/1; R3/2; }
            schema sigma2 { S/2; }
            schema sigma3 { T1/1; T2/2; T3/2; }
            mapping m12 : sigma1 -> sigma2 { S = R1 * R2; }
            mapping m23 : sigma2 -> sigma3 {
                project[0](R3 - S) <= T1;
                T2 <= T3 - select[#0 = 1](S);
            }
            ",
        ),
        (
            "recursive tc example",
            r"
            schema sigma1 { R/2; }
            schema sigma2 { S/2; }
            schema sigma3 { T/2; }
            mapping m12 : sigma1 -> sigma2 { R <= S; S = tc(S); }
            mapping m23 : sigma2 -> sigma3 { S <= T; }
            ",
        ),
    ];
    for (label, text) in documents {
        let doc = parse_document(text).unwrap();
        let task = doc.task("m12", "m23").unwrap();
        let full = task.full_signature().unwrap();
        let target = task.sigma2.union(&task.sigma3).unwrap();
        let mut source = Instance::new();
        for (name, info) in task.sigma1.iter() {
            for row in 0..3i64 {
                let tuple: Vec<Value> =
                    (0..info.arity).map(|c| Value::Int(row + c as i64)).collect();
                source.insert(name, tuple);
            }
        }
        let constraints = task.combined_constraints().into_vec();
        assert_strategies_agree(
            label,
            &constraints,
            &full,
            &target,
            &source,
            &ExchangeConfig::default(),
        );
    }
}

#[test]
fn corpus_problems_agree() {
    // Chase every literature-suite problem's combined constraint set from a
    // generic σ1 instance into σ2 ∪ σ3. The corpus spans the operator
    // vocabulary (unions, differences, user-defined operators, Skolem
    // shapes), so this exercises both the indexed-plan path and the
    // layered-view fallback, including rules both engines must skip.
    for problem in mapping_composition::corpus::problems() {
        let task = problem.task().expect("corpus problem parses");
        let full = task.full_signature().expect("well-formed signature");
        let target = task.sigma2.union(&task.sigma3).expect("disjoint enough");
        let mut source = Instance::new();
        for (name, info) in task.sigma1.iter() {
            for row in 0..2i64 {
                let tuple: Vec<Value> =
                    (0..info.arity).map(|c| Value::Int(row * 10 + c as i64)).collect();
                source.insert(name, tuple);
            }
        }
        let constraints = task.combined_constraints().into_vec();
        assert_strategies_agree(
            problem.id,
            &constraints,
            &full,
            &target,
            &source,
            &ExchangeConfig::default(),
        );
    }
}

#[test]
fn evolution_scenarios_agree() {
    // Simulator-generated mappings over several seeds: the same scenario as
    // the end-to-end migration test, chased under both strategies.
    for seed in [7, 42, 77] {
        let run = run_editing(&ScenarioConfig {
            schema_size: 6,
            edits: 12,
            seed,
            ..ScenarioConfig::default()
        });
        let mut source = Instance::new();
        for (name, info) in run.original.iter() {
            for row in 0..2i64 {
                let tuple: Vec<Value> =
                    (0..info.arity).map(|c| Value::Int(row * 10 + c as i64)).collect();
                source.insert(name, tuple);
            }
        }
        let mut target_sig = run.current.clone();
        for name in &run.pending {
            if let Some(info) = run.universe.get(name) {
                target_sig.add(name.clone(), info.clone());
            }
        }
        let result = assert_strategies_agree(
            &format!("evolution seed {seed}"),
            &run.constraints,
            &run.universe,
            &target_sig,
            &source,
            &ExchangeConfig { max_rounds: 32, max_nulls: 50_000, ..ExchangeConfig::default() },
        );
        assert!(result.converged, "seed {seed}: chase did not converge");
    }
}

#[test]
fn greedy_join_order_reorders_skewed_premises_and_preserves_results() {
    // A two-atom join premise where the small relation is written *second*:
    // source order would open the join on the big Events relation, greedy
    // must open on the one-row Config relation. The chase result — targets,
    // skips, rounds, convergence — must be identical either way, and the
    // plan introspection must show the reorder actually fired.
    let full = Signature::from_arities([("Events", 2), ("Config", 2), ("Out", 2)]);
    let target = Signature::from_arities([("Out", 2)]);
    let constraints =
        parse_constraints("project[0,3](select[#1 = #2](Events * Config)) <= Out").unwrap();
    let mut source = Instance::new();
    for i in 0..40i64 {
        source.insert("Events", vec![Value::Int(i), Value::Int(i % 4)]);
    }
    source.insert("Config", vec![Value::Int(0), Value::Int(99)]);

    // Plan introspection: greedy flips the atom order, source order keeps it.
    let premise = parse_expr("project[0,3](select[#1 = #2](Events * Config))").unwrap();
    let frontier =
        TupleIndex::from_layers(&[&source], ["Events".to_string(), "Config".to_string()].iter());
    let greedy = PremisePlan::compile(&premise, &full).unwrap();
    assert_eq!(greedy.join_order(&frontier, None), vec![1, 0], "reorder must fire");
    let pinned = PremisePlan::compile(&premise, &full)
        .unwrap()
        .with_order(mapping_composition::compose::JoinOrder::SourceOrder);
    assert_eq!(pinned.join_order(&frontier, None), vec![0, 1]);
    let a = greedy.eval_full(&frontier, None, &mut WorkBudget::new(100_000)).unwrap();
    let b = pinned.eval_full(&frontier, None, &mut WorkBudget::new(100_000)).unwrap();
    assert_eq!(a, b, "join order must not change the result set");
    assert_eq!(a.len(), 10, "ten events match the config row");

    // End to end: the chase under either join order (and either strategy)
    // produces identical targets and skips.
    let constraint_vec = constraints.into_vec();
    let base = ExchangeConfig::default();
    let greedy_result = assert_strategies_agree(
        "greedy order",
        &constraint_vec,
        &full,
        &target,
        &source,
        &base.clone().with_join_order(JoinOrder::Greedy),
    );
    let pinned_result = assert_strategies_agree(
        "source order",
        &constraint_vec,
        &full,
        &target,
        &source,
        &base.with_join_order(JoinOrder::SourceOrder),
    );
    assert_eq!(greedy_result.target, pinned_result.target);
    assert_eq!(greedy_result.rounds, pinned_result.rounds);
    assert!(greedy_result.converged && pinned_result.converged);
    assert_eq!(greedy_result.target.get("Out").len(), 10);
}

#[test]
fn greedy_join_order_survives_tight_budgets_source_order_cannot() {
    // The budget win the greedy order buys: opening on the one-row side
    // keeps the intermediate binding set tiny, so a budget that the
    // source-order join blows through is comfortably enough. (This is why
    // the flag matters: under bound budgets the two orders can differ in
    // *which rules get skipped*, so parity suites must pin one.)
    let full = Signature::from_arities([("Big", 2), ("Tiny", 2), ("Out", 2)]);
    let target = Signature::from_arities([("Out", 2)]);
    let constraints =
        parse_constraints("project[0,3](select[#1 = #2](Big * Tiny)) <= Out").unwrap().into_vec();
    let mut source = Instance::new();
    for i in 0..60i64 {
        source.insert("Big", vec![Value::Int(i), Value::Int(i)]);
    }
    source.insert("Tiny", vec![Value::Int(0), Value::Int(1)]);
    let registry = registry();
    let tight = ExchangeConfig { eval_budget: 30, ..ExchangeConfig::default() };

    let greedy = exchange(&constraints, &full, &target, &source, &registry, &tight);
    assert!(greedy.skipped.is_empty(), "greedy order fits the budget: {:?}", greedy.skipped);
    assert_eq!(greedy.target.get("Out").len(), 1);

    let pinned = exchange(
        &constraints,
        &full,
        &target,
        &source,
        &registry,
        &tight.with_join_order(JoinOrder::SourceOrder),
    );
    assert_eq!(pinned.skipped.len(), 1, "source order must blow the same budget");
}

#[test]
fn fig9_scenario_has_no_skips_and_identical_results() {
    // The acceptance scenario of the fig9 bench, asserted at test scale:
    // both strategies converge with an empty skip set and equal targets.
    let (constraints, full, target, source) = mapcomp_bench::chase_scenario(60, 8);
    let result = assert_strategies_agree(
        "fig9 scenario",
        &constraints,
        &full,
        &target,
        &source,
        &mapcomp_bench::chase_scaling_config(8),
    );
    assert!(result.converged);
    assert!(result.skipped.is_empty());
    assert_eq!(result.target.get("J").len(), 60);
}
