//! Integration tests for the synthetic-workload scenarios of §4: schema
//! editing and schema reconciliation, across the configurations studied in
//! the paper, exercised through the public API.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::evolution::{
    average_reconciliation, run_editing, run_reconciliation, EventVector, PrimitiveOptions,
    ReconcileConfig, ScenarioConfig,
};
use mapping_composition::prelude::*;

fn base_scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig { schema_size: 10, edits: 30, seed, ..ScenarioConfig::default() }
}

#[test]
fn editing_constraints_always_type_check() {
    for seed in [1u64, 2, 3] {
        let run = run_editing(&base_scenario(seed));
        let registry = Registry::standard();
        for constraint in &run.constraints {
            constraint
                .validate(&run.universe, registry.operators())
                .unwrap_or_else(|e| panic!("constraint {constraint} does not type-check: {e}"));
        }
    }
}

#[test]
fn editing_eliminations_are_sound_per_step() {
    // Replay a short editing run and verify, for a handful of edits, that
    // each composition step preserved satisfaction of a concrete witness
    // instance: an instance satisfying the constraints before elimination
    // still satisfies them afterwards when restricted (soundness direction).
    //
    // A full replay would duplicate the scenario driver, so instead this test
    // relies on the per-record metadata: every record that reports an
    // elimination must leave no occurrence of the consumed symbol behind.
    let run = run_editing(&base_scenario(7));
    for record in &run.records {
        if record.consumed_intermediate && record.eliminated_now {
            let consumed = record.consumed.as_ref().unwrap();
            // Symbols reported eliminated at some edit may not reappear later.
            assert!(
                run.constraints.iter().all(|c| !c.mentions(consumed)),
                "eliminated symbol {consumed} resurfaced"
            );
            assert!(!run.pending.contains(consumed));
        }
    }
}

#[test]
fn all_four_paper_configurations_run_and_rank_plausibly() {
    let full = run_editing(&base_scenario(11));
    let keys = run_editing(&ScenarioConfig {
        options: PrimitiveOptions::with_keys(),
        ..base_scenario(11)
    });
    let no_unfold = run_editing(&ScenarioConfig {
        compose_config: ComposeConfig::without_view_unfolding(),
        ..base_scenario(11)
    });
    let no_right = run_editing(&ScenarioConfig {
        compose_config: ComposeConfig::without_right_compose(),
        ..base_scenario(11)
    });

    // Figure 2's qualitative ranking: the complete algorithm is at least as
    // effective as each ablation, and keys do not change effectiveness much.
    assert!(full.fraction_eliminated() + 1e-9 >= no_unfold.fraction_eliminated());
    assert!(full.fraction_eliminated() + 1e-9 >= no_right.fraction_eliminated());
    assert!((full.fraction_eliminated() - keys.fraction_eliminated()).abs() <= 0.5);
    // And the paper's headline: 50-100% of symbols eliminated.
    assert!(full.fraction_eliminated() >= 0.5);
}

#[test]
fn inclusion_heavy_vectors_reduce_unfolding_effectiveness() {
    // Figure 5: raising the Sub/Sup proportion makes composition harder on
    // average (the effectiveness of view unfolding drops). Allow generous
    // slack because the quick workload is small.
    let plain = run_editing(&ScenarioConfig {
        event_vector: EventVector::default_vector().with_inclusion_proportion(0.0),
        ..base_scenario(21)
    });
    let inclusion_heavy = run_editing(&ScenarioConfig {
        event_vector: EventVector::default_vector().with_inclusion_proportion(0.2),
        ..base_scenario(21)
    });
    assert!(inclusion_heavy.fraction_eliminated() <= plain.fraction_eliminated() + 0.2);
}

#[test]
fn reconciliation_produces_mapping_between_evolved_schemas() {
    let config = ReconcileConfig {
        schema_size: 8,
        edits_per_branch: 12,
        scenario: ScenarioConfig { schema_size: 8, edits: 12, ..ScenarioConfig::default() },
        max_branch_retries: 3,
        seed: 31,
    };
    let outcome = run_reconciliation(&config);
    assert_eq!(outcome.intermediate_symbols, 8);
    // The composed constraints only mention symbols known to either branch.
    let universe = outcome.branch_a.universe.union(&outcome.branch_b.universe).unwrap();
    for constraint in &outcome.constraints {
        for relation in constraint.relations() {
            assert!(universe.contains(&relation), "unknown relation {relation}");
        }
    }
    // Determinism.
    let again = run_reconciliation(&config);
    assert_eq!(outcome.constraints, again.constraints);
    assert_eq!(outcome.eliminated, again.eliminated);
}

#[test]
fn reconciliation_gets_harder_with_more_edits() {
    // Figure 7's qualitative shape, at a very small scale.
    let few = average_reconciliation(
        &ReconcileConfig {
            schema_size: 10,
            edits_per_branch: 6,
            scenario: ScenarioConfig { schema_size: 10, edits: 6, ..ScenarioConfig::default() },
            max_branch_retries: 2,
            seed: 41,
        },
        3,
    );
    let many = average_reconciliation(
        &ReconcileConfig {
            schema_size: 10,
            edits_per_branch: 40,
            scenario: ScenarioConfig { schema_size: 10, edits: 40, ..ScenarioConfig::default() },
            max_branch_retries: 2,
            seed: 41,
        },
        3,
    );
    assert!(many.0 <= few.0 + 0.15, "few-edit fraction {} vs many-edit fraction {}", few.0, many.0);
}
