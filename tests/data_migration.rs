//! End-to-end data migration: compose mappings, then chase source data
//! through the composed mapping into the evolved schema (the workflow the
//! paper's Example 1 describes: "the designer can now migrate data from the
//! old schema to the new schema").

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::compose::{exchange, ExchangeConfig};
use mapping_composition::prelude::*;

#[test]
fn example_1_end_to_end_migration() {
    let doc = parse_document(
        r"
        schema sigma1 { Movies/4; }
        schema sigma2 { FiveStarMovies/3; }
        schema sigma3 { Names/2; Years/2; }
        mapping m12 : sigma1 -> sigma2 {
            project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
        }
        mapping m23 : sigma2 -> sigma3 {
            project[0,1](FiveStarMovies) <= Names;
            project[0,2](FiveStarMovies) <= Years;
        }
        ",
    )
    .unwrap();
    let task = doc.task("m12", "m23").unwrap();
    let registry = Registry::standard();
    let composed = compose(&task, &registry, &ComposeConfig::default()).unwrap();
    assert!(composed.is_complete());

    // Source data: three movies, two of them five-star.
    let mut source = Instance::new();
    source.insert("Movies", vec![Value::Int(1), Value::Int(11), Value::Int(1991), Value::Int(5)]);
    source.insert("Movies", vec![Value::Int(2), Value::Int(22), Value::Int(1992), Value::Int(4)]);
    source.insert("Movies", vec![Value::Int(3), Value::Int(33), Value::Int(1993), Value::Int(5)]);

    let full = task.full_signature().unwrap();
    let result = exchange(
        composed.constraints.as_slice(),
        &full,
        &task.sigma3,
        &source,
        &registry,
        &ExchangeConfig::default(),
    );
    assert!(result.converged);
    assert!(result.skipped.is_empty(), "skipped: {:?}", result.skipped);

    // Exactly the five-star movies arrive in the evolved schema.
    assert_eq!(result.target.get("Names").len(), 2);
    assert_eq!(result.target.get("Years").len(), 2);
    assert!(result.target.get("Names").contains(&vec![Value::Int(1), Value::Int(11)]));
    assert!(result.target.get("Years").contains(&vec![Value::Int(3), Value::Int(1993)]));
    assert!(!result.target.get("Names").contains(&vec![Value::Int(2), Value::Int(22)]));

    // The migrated pair (source, target) is a model of the composed mapping
    // and of the original two-step mapping (with the intermediate relation
    // chased as well).
    let merged = source.merge(&result.target);
    assert!(composed.constraints.satisfied_by(&full, registry.operators(), &merged).unwrap());
}

#[test]
fn migration_through_an_evolution_run_satisfies_the_composed_mapping() {
    // Drive the simulator for a handful of edits, then migrate a concrete
    // instance of the original schema into the evolved schema using the
    // composed mapping, and check the pair satisfies every constraint that
    // does not require inventing data beyond the chase's fragment.
    let run = run_editing(&ScenarioConfig {
        schema_size: 6,
        edits: 12,
        seed: 77,
        ..ScenarioConfig::default()
    });
    let registry = Registry::standard();

    // Populate every original relation with a couple of rows.
    let mut source = Instance::new();
    for (name, info) in run.original.iter() {
        for row in 0..2i64 {
            let tuple: Vec<Value> =
                (0..info.arity).map(|c| Value::Int(row * 10 + c as i64)).collect();
            source.insert(name, tuple);
        }
    }

    // Targets: the evolved schema plus any pending intermediate symbols (they
    // must be populated as auxiliary relations, exactly as §1.3 describes).
    let mut target_sig = run.current.clone();
    for name in &run.pending {
        if let Some(info) = run.universe.get(name) {
            target_sig.add(name.clone(), info.clone());
        }
    }

    let result = exchange(
        &run.constraints,
        &run.universe,
        &target_sig,
        &source,
        &registry,
        &ExchangeConfig { max_rounds: 32, max_nulls: 50_000, ..ExchangeConfig::default() },
    );
    assert!(result.converged, "chase did not converge");

    // Every chased (select-project-join conclusion) constraint holds on the
    // migrated pair; constraints the chase had to skip are exempt. The
    // verification itself runs under a tuple budget: constraints over
    // active-domain powers can be combinatorially large on the chased
    // instance, and a budget overrun (an `Err`) exempts the constraint just
    // like any other evaluation failure.
    let merged = source.merge(&result.target);
    let skipped: Vec<&Constraint> = result.skipped.iter().map(|(c, _)| c).collect();
    for constraint in &run.constraints {
        if constraint.is_equality() {
            // Equalities assert both directions; the chase only enforces the
            // source-to-target direction, so check that direction only.
            continue;
        }
        if skipped.contains(&constraint) {
            continue;
        }
        let evaluator = mapping_composition::algebra::Evaluator::with_budget(
            &run.universe,
            registry.operators(),
            &merged,
            1_000_000,
        );
        if let Ok(holds) = constraint.satisfied_with(&evaluator) {
            assert!(holds, "migrated instance violates chased constraint {constraint}");
        }
    }
}
