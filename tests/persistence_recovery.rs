//! Crash-recovery coverage for the incremental persistence path: a sidecar
//! truncated mid-delta-line or mid-entry-block (a crash during an append)
//! and stray `.tmp` siblings (a crash during compaction) must never be
//! fatal — recovery replays the surviving committed prefix to exactly the
//! state acknowledged before the crash, byte-identically for the catalog
//! document and exactly for the cumulative cache statistics, and the torn
//! tail is dropped.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::catalog::{
    parse_positioned_delta, CacheStats, Position, SessionConfig, SidecarWriter,
};
use mapping_composition::compose::Registry;
use mapping_composition::service::{
    sidecar_path, LocalService, MapcompService as _, PersistMode, PersistPolicy, Request, Response,
};

/// Incremental persistence with threshold compaction disabled, so every
/// state-changing request appends exactly one chunk and the tests control
/// compaction explicitly.
fn policy() -> PersistPolicy {
    PersistPolicy { mode: PersistMode::Incremental, compact_appends: None, compact_bytes: None }
}

fn temp_catalog(tag: &str) -> std::path::PathBuf {
    let file =
        std::env::temp_dir().join(format!("mapcomp_recovery_{tag}_{}.doc", std::process::id()));
    cleanup(&file);
    file
}

fn cleanup(file: &std::path::Path) {
    for path in [file.to_path_buf(), sidecar_path(file)] {
        let _ = std::fs::remove_file(&path);
        let mut tmp = path.file_name().unwrap().to_os_string();
        tmp.push(".tmp");
        let _ = std::fs::remove_file(path.with_file_name(tmp));
    }
}

fn open(file: &std::path::Path) -> LocalService {
    LocalService::open_with_policy(
        file,
        Registry::standard(),
        SessionConfig::default(),
        1,
        true,
        policy(),
    )
    .expect("open persistent service")
}

fn chain_document(hops: usize) -> String {
    let mut text = String::new();
    for i in 0..=hops {
        text.push_str(&format!("schema v{i} {{ R{i}/1; }}\n"));
    }
    for i in 0..hops {
        text.push_str(&format!("mapping m{i} : v{i} -> v{} {{ R{i} <= R{}; }}\n", i + 1, i + 1));
    }
    text
}

/// Everything recovery must reproduce: the catalog content (byte-identical
/// document rendering), the cumulative cache statistics, and the recorded
/// mapping versions.
fn committed_state(service: &LocalService) -> (String, CacheStats, Vec<(String, u64)>) {
    let catalog = service.session().catalog().snapshot();
    let versions = catalog.mappings().map(|entry| (entry.name.clone(), entry.version)).collect();
    (catalog.to_document_string(), service.session().cache().stats(), versions)
}

fn compose(service: &LocalService, from: &str, to: &str) -> usize {
    match service.call(Request::ComposePath { from: from.into(), to: to.into() }) {
        Ok(Response::Composed(payload)) => payload.compose_calls,
        other => panic!("compose {from} -> {to} failed: {other:?}"),
    }
}

#[test]
fn torn_final_delta_line_is_dropped_not_fatal() {
    let file = temp_catalog("torn_line");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(4) }).unwrap();
    assert!(compose(&service, "v0", "v2") > 0);
    // Commit point: everything up to here is acknowledged and on disk.
    let committed_bytes = std::fs::read(&sidecar).unwrap();
    let committed = committed_state(&service);

    // One more request appends a chunk; the "crash" truncates the file a
    // few bytes into that chunk's first line — a torn line that must be
    // dropped, not parsed as a shorter valid record.
    assert!(compose(&service, "v1", "v3") > 0);
    drop(service);
    let full = std::fs::read(&sidecar).unwrap();
    assert!(full.len() > committed_bytes.len() + 8, "the second request must have appended");
    std::fs::write(&sidecar, &full[..committed_bytes.len() + 7]).unwrap();

    let reopened = open(&file);
    assert_eq!(committed_state(&reopened), committed, "recovery = the pre-crash committed state");
    // The committed entry still serves; the torn-away one recomputes.
    assert_eq!(compose(&reopened, "v0", "v2"), 0, "committed memo entry survives");
    assert!(compose(&reopened, "v1", "v3") > 0, "torn-away memo entry is recomposed");
    cleanup(&file);
}

#[test]
fn appends_after_a_torn_tail_survive_the_next_recovery() {
    let file = temp_catalog("torn_then_append");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
    assert!(compose(&service, "v0", "v2") > 0);
    drop(service);
    // Crash mid-append: the file ends inside a line, no trailing newline.
    let full = std::fs::read(&sidecar).unwrap();
    std::fs::write(&sidecar, &full[..full.len() - 9]).unwrap();

    // The next session appends an acknowledged edit. The writer must heal
    // the torn tail first — otherwise the chunk's first line glues onto
    // the fragment and the edit silently vanishes from every later load.
    let survivor = open(&file);
    let edited = chain_document(3).replace("{ R1 <= R2; }", "{ project[0](R1) <= R2; }");
    survivor.call(Request::AddDocument { text: edited }).unwrap();
    let committed = committed_state(&survivor);
    drop(survivor); // second crash: no shutdown, no compaction

    let reopened = open(&file);
    assert_eq!(committed_state(&reopened), committed, "acknowledged edit must survive");
    let entry = reopened.session().catalog().mapping("m1").unwrap();
    assert_eq!(entry.version, 2);
    assert!(entry.constraints.to_string().contains("project[0](R1)"));
    cleanup(&file);
}

#[test]
fn torn_entry_block_is_dropped_not_fatal() {
    let file = temp_catalog("torn_block");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(4) }).unwrap();
    let committed_bytes = std::fs::read(&sidecar).unwrap();
    let committed = committed_state(&service);

    assert!(compose(&service, "v0", "v2") > 0);
    drop(service);
    let full = std::fs::read_to_string(&sidecar).unwrap();
    // Cut inside the appended entry block: mid-way through its embedded
    // document, after a complete line (so only block-level recovery, not
    // line-level, can drop it).
    let block_start = full[committed_bytes.len()..]
        .find("begin-document")
        .expect("appended chunk carries an entry block")
        + committed_bytes.len();
    let cut = full[block_start..].find('\n').unwrap() + block_start + 1;
    std::fs::write(&sidecar, &full.as_bytes()[..cut]).unwrap();

    let reopened = open(&file);
    assert_eq!(committed_state(&reopened), committed, "incomplete entry block is dropped");
    assert!(compose(&reopened, "v0", "v2") > 0, "the torn entry is recomposed, not resurrected");
    cleanup(&file);
}

#[test]
fn records_after_a_mid_file_unterminated_entry_block_are_not_swallowed() {
    let file = temp_catalog("torn_block_mid_file");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(4) }).unwrap();
    assert!(compose(&service, "v0", "v2") > 0);
    drop(service);
    // Crash tears the appended entry block at a *line boundary* inside its
    // embedded document: every surviving line is complete (no torn tail to
    // heal), but `end-document` is gone.
    let full = std::fs::read_to_string(&sidecar).unwrap();
    let block_start = full.find("begin-document").expect("entry block present");
    let cut = full[block_start..].find('\n').unwrap() + block_start + 1;
    assert!(full.as_bytes()[cut - 1] == b'\n');
    std::fs::write(&sidecar, &full.as_bytes()[..cut]).unwrap();

    // The next session appends acknowledged records AFTER the unterminated
    // block: an edit (delta mapping + invalidate + version) and a fresh
    // memo entry.
    let survivor = open(&file);
    let edited = chain_document(4).replace("{ R1 <= R2; }", "{ project[0](R1) <= R2; }");
    survivor.call(Request::AddDocument { text: edited }).unwrap();
    assert!(compose(&survivor, "v2", "v4") > 0);
    let committed = committed_state(&survivor);
    drop(survivor); // second crash

    // Recovery must abandon the torn block instead of consuming the later
    // records while hunting for its `end-document`.
    let reopened = open(&file);
    assert_eq!(committed_state(&reopened), committed, "records after the torn block survive");
    let entry = reopened.session().catalog().mapping("m1").unwrap();
    assert_eq!(entry.version, 2, "the acknowledged edit must not be swallowed");
    assert!(entry.constraints.to_string().contains("project[0](R1)"));
    assert_eq!(compose(&reopened, "v2", "v4"), 0, "the later memo entry survives");
    cleanup(&file);
}

#[test]
fn stray_tmp_files_from_a_crashed_compaction_are_ignored() {
    let file = temp_catalog("tmp_crash");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
    assert!(compose(&service, "v0", "v3") > 0);
    let committed = committed_state(&service);
    drop(service);

    // A compaction that crashed after writing its temporaries but before
    // either rename: both `.tmp` siblings exist and hold garbage. Recovery
    // reads only the real files.
    for target in [&file, &sidecar] {
        let mut name = target.file_name().unwrap().to_os_string();
        name.push(".tmp");
        std::fs::write(target.with_file_name(name), "schema half { gar/").unwrap();
    }

    let reopened = open(&file);
    assert_eq!(committed_state(&reopened), committed, "tmp siblings must not affect recovery");
    assert_eq!(compose(&reopened, "v0", "v3"), 0, "memo cache fully recovered");

    // The recovered service is fully live: compaction folds the replayed
    // log and the snapshot round-trips once more.
    let Ok(Response::Compacted { bytes_after, .. }) = reopened.call(Request::Compact) else {
        panic!("compact failed after recovery");
    };
    assert!(bytes_after > 0);
    let compacted = std::fs::read_to_string(&sidecar).unwrap();
    assert!(!compacted.contains("delta "), "compaction folded the delta log");
    // The warm compose above accumulated one more cache hit; the compacted
    // snapshot must round-trip exactly that state.
    let committed_after_compact = committed_state(&reopened);
    assert_eq!(committed_after_compact.0, committed.0, "catalog content unchanged");
    drop(reopened);
    let again = open(&file);
    assert_eq!(committed_state(&again), committed_after_compact);
    cleanup(&file);
}

/// The sidecar's recorded replication position, read the way recovery
/// reads it.
fn sidecar_position(file: &std::path::Path) -> Position {
    SidecarWriter::new(sidecar_path(file)).load_full().next_position()
}

#[test]
fn delta_positions_are_recorded_and_survive_kill_and_restart() {
    let file = temp_catalog("positions");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
    assert!(compose(&service, "v0", "v3") > 0);
    service.call(Request::Invalidate { mapping: "m1".into() }).unwrap();
    drop(service); // kill: no shutdown, no compaction

    // Every delta record carries an explicit `(generation, seq)` position,
    // strictly increasing in file order within the generation.
    let text = std::fs::read_to_string(&sidecar).unwrap();
    let mut last: Option<Position> = None;
    let mut deltas = 0;
    for line in text.lines().filter(|line| line.starts_with("delta ")) {
        let (position, _) = parse_positioned_delta(line).expect("well-formed delta");
        let position = position.expect("every appended delta is positioned");
        if let Some(previous) = last {
            assert!(position > previous, "positions must increase: {position} after {previous}");
        }
        last = Some(position);
        deltas += 1;
    }
    assert!(deltas >= 3, "document, memo and invalidation deltas all landed");

    // Restart resumes exactly after the last recorded position — the next
    // append continues the sequence instead of restarting or skipping.
    let resumed = sidecar_position(&file);
    assert_eq!(resumed, last.unwrap().next());
    let reopened = open(&file);
    reopened.call(Request::Invalidate { mapping: "m0".into() }).unwrap();
    drop(reopened);
    assert_eq!(sidecar_position(&file), resumed.next(), "appends continue the recorded sequence");
    cleanup(&file);
}

#[test]
fn compaction_bumps_the_generation_and_restarts_the_sequence() {
    let file = temp_catalog("generation_bump");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
    assert!(compose(&service, "v0", "v3") > 0);
    drop(service);
    let before = sidecar_position(&file);
    assert!(before.generation >= 1, "a live sidecar always has a generation");
    assert!(before.seq > 0, "appends advanced the sequence");

    // Compaction folds the log and opens a fresh generation at seq 0; the
    // rewritten sidecar announces it with a leading generation marker.
    let reopened = open(&file);
    let Ok(Response::Compacted { .. }) = reopened.call(Request::Compact) else {
        panic!("compact failed");
    };
    drop(reopened);
    assert_eq!(sidecar_position(&file), Position::new(before.generation + 1, 0));
    let text = std::fs::read_to_string(&sidecar).unwrap();
    assert!(
        text.starts_with(&format!("generation {} 0\n", before.generation + 1)),
        "the compacted sidecar must open with its generation marker"
    );

    // Post-compaction appends number from zero in the new generation, and
    // a second kill/restart still recovers the bumped generation.
    let survivor = open(&file);
    survivor.call(Request::Invalidate { mapping: "m2".into() }).unwrap();
    drop(survivor);
    let tail = sidecar_position(&file);
    assert_eq!(tail.generation, before.generation + 1, "the bumped generation is recovered");
    assert!(tail.seq > 0, "the new generation's sequence advanced from zero");
    cleanup(&file);
}

#[test]
fn kill_and_restart_replays_to_byte_identical_state() {
    let file = temp_catalog("kill_restart");
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(5) }).unwrap();
    compose(&service, "v0", "v5");
    service.call(Request::Invalidate { mapping: "m2".into() }).unwrap();
    // An out-of-band edit through the service: version bump + invalidation
    // deltas land in the log.
    let edited = chain_document(5).replace("{ R1 <= R2; }", "{ project[0](R1) <= R2; }");
    service.call(Request::AddDocument { text: edited }).unwrap();
    compose(&service, "v0", "v5");
    let committed = committed_state(&service);
    drop(service); // kill: no shutdown, no compaction

    let reopened = open(&file);
    assert_eq!(committed_state(&reopened), committed);
    assert_eq!(reopened.session().catalog().mapping("m1").unwrap().version, 2);
    assert_eq!(compose(&reopened, "v0", "v5"), 0, "warm chain survives the restart");
    cleanup(&file);
}

// ---------------------------------------------------------------------------
// Migrate-delta fault injection: a crash mid-`MigrateDelta` must leave the
// migration session replayable — recovery folds the surviving committed
// history, and a follow-up delta (or full re-chase) converges byte-
// identically with a cold engine over the same net source.
// ---------------------------------------------------------------------------

fn migrate(
    service: &LocalService,
    from: &str,
    to: &str,
    updates: &[&str],
) -> mapping_composition::service::MigratePayload {
    let request = Request::MigrateDelta {
        from: from.into(),
        to: to.into(),
        updates: updates.iter().map(std::string::ToString::to_string).collect(),
    };
    match service.call(request) {
        Ok(Response::Migrated(payload)) => payload,
        other => panic!("migrate-delta {from} -> {to} failed: {other:?}"),
    }
}

/// The cold oracle: a brand-new catalog fed the same net history in one
/// batch. Confluence of the Skolem chase makes its target the ground truth.
fn cold_migration_target(tag: &str, hops: usize, to: &str, updates: &[&str]) -> String {
    let file = temp_catalog(tag);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(hops) }).unwrap();
    let target = migrate(&service, "v0", to, updates).target;
    drop(service);
    cleanup(&file);
    target
}

#[test]
fn torn_migrate_delta_tail_reverts_to_the_acknowledged_batch() {
    let file = temp_catalog("torn_migrate");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
    let first = migrate(&service, "v0", "v2", &["+R0(1)", "+R0(2)"]);
    assert!(first.target_rows > 0, "the first batch must materialize target rows");
    // Commit point: the first batch's delta record is fully on disk.
    let committed_bytes = std::fs::read(&sidecar).unwrap();

    // The crash lands mid-way through appending the second batch's record:
    // the engine applied it in memory, but the log holds only a torn line.
    migrate(&service, "v0", "v2", &["-R0(1)", "+R0(3)"]);
    drop(service);
    let full = std::fs::read(&sidecar).unwrap();
    assert!(full.len() > committed_bytes.len() + 8, "the second batch must have appended");
    std::fs::write(&sidecar, &full[..committed_bytes.len() + 7]).unwrap();

    // Recovery drops the torn record: an empty probe batch rebuilds the
    // engine from the surviving history and serves the first batch's target.
    let reopened = open(&file);
    let probe = migrate(&reopened, "v0", "v2", &[]);
    assert_eq!(probe.target, first.target, "recovery = the acknowledged pre-crash batch");
    assert_eq!(probe.source_rows, 2);

    // Re-issuing the lost batch converges byte-identically with a cold
    // engine over the net source {R0(2), R0(3)}.
    let replayed = migrate(&reopened, "v0", "v2", &["-R0(1)", "+R0(3)"]);
    drop(reopened);
    let oracle = cold_migration_target("torn_migrate_oracle", 3, "v2", &["+R0(2)", "+R0(3)"]);
    assert_eq!(replayed.target, oracle, "follow-up delta must match a cold re-chase");
    cleanup(&file);
}

#[test]
fn migrate_sessions_survive_kill_restart_and_compaction() {
    let file = temp_catalog("migrate_compact");
    let sidecar = sidecar_path(&file);
    let service = open(&file);
    service.call(Request::AddDocument { text: chain_document(3) }).unwrap();
    migrate(&service, "v0", "v2", &["+R0(1)", "+R0(2)"]);
    migrate(&service, "v0", "v1", &["+R0(7)"]);

    // Compaction folds the per-session histories into `migrate` snapshot
    // lines; no `delta migrate` records may survive the rewrite.
    service.call(Request::Compact).unwrap();
    let text = std::fs::read_to_string(&sidecar).unwrap();
    assert!(!text.lines().any(|line| line.starts_with("delta ")), "compaction must fold deltas");
    assert_eq!(
        text.lines().filter(|line| line.starts_with("migrate ")).count(),
        2,
        "one snapshot line per live migration session"
    );

    // Post-compaction deltas stack on top of the snapshot...
    let live = migrate(&service, "v0", "v2", &["-R0(1)", "+R0(4)"]);
    drop(service); // ...and a kill without shutdown loses nothing.

    let reopened = open(&file);
    let probe = migrate(&reopened, "v0", "v2", &[]);
    assert_eq!(probe.target, live.target, "restart replays snapshot + delta history");
    let side = migrate(&reopened, "v0", "v1", &[]);
    assert_eq!(side.source_rows, 1, "the second session's history is independent");
    drop(reopened);
    let oracle = cold_migration_target("migrate_compact_oracle", 3, "v2", &["+R0(2)", "+R0(4)"]);
    assert_eq!(probe.target, oracle, "maintained target equals a cold re-chase");
    cleanup(&file);
}
