//! Executable documentation: the on-disk and wire-format specs under
//! `docs/` are kept in lockstep with the code by round-tripping every
//! marked example through the real parsers and renderers.
//!
//! * `docs/PERSISTENCE.md` — every fenced block preceded by
//!   `<!-- roundtrip:sidecar -->` is parsed line-by-line with the sidecar
//!   grammar; each record must be *recognised* and must re-render
//!   byte-identically (so a stale example, or a grammar change without a
//!   doc update, fails here).
//! * `docs/WIRE_PROTOCOL.md` — every block preceded by
//!   `<!-- roundtrip:request -->` / `<!-- roundtrip:reply -->` must decode
//!   with the real codec and re-encode byte-identically, and the stable
//!   error-code table must list exactly `ErrorCode::ALL`.
//! * `docs/OBSERVABILITY.md` — the metric-catalog table is checked against
//!   a driven registry, the exposition sample and log-line examples are
//!   re-rendered byte-identically, and the traced request frame round-trips
//!   through the trace-aware codec.
//! * `docs/ANALYSIS.md` — every `<!-- analysis:document -->` block is
//!   ingested into a real session and its `<!-- analysis:report -->` twin
//!   must match `analysis_text` byte-for-byte; the lint-code table must
//!   list exactly `LintCode::ALL`.

// Integration-test crates are built without `cfg(test)`, so the
// `allow-unwrap-in-tests` exemption in clippy.toml cannot reach them;
// panicking on a surprise is exactly what a test should do.
#![allow(clippy::unwrap_used)]

use mapping_composition::algebra::parse_document;
use mapping_composition::catalog::{
    load_cache, load_sidecar, load_versions, parse_positioned_delta, render_delta,
    render_generation_marker, render_mapping_decl, render_migration_snapshot,
    render_positioned_delta, render_schema_decl, save_cache, DeltaRecord, Position,
};
use mapping_composition::service::{
    decode_reply, decode_request, decode_request_traced, encode_reply, encode_request,
    encode_request_traced, ErrorCode,
};

fn read_doc(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("docs").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|error| panic!("cannot read {}: {error}", path.display()))
}

/// Extract every fenced code block immediately preceded by the given
/// `<!-- marker -->` comment line (blank lines between marker and fence are
/// allowed).
fn marked_blocks(doc: &str, marker: &str) -> Vec<String> {
    let marker_line = format!("<!-- {marker} -->");
    let mut blocks = Vec::new();
    let mut lines = doc.lines().peekable();
    while let Some(line) = lines.next() {
        if line.trim() != marker_line {
            continue;
        }
        while lines.peek().is_some_and(|next| next.trim().is_empty()) {
            lines.next();
        }
        let fence = lines.next().unwrap_or_default();
        assert!(
            fence.trim_start().starts_with("```"),
            "marker `{marker_line}` must be followed by a fenced block, found `{fence}`"
        );
        let mut block = String::new();
        for line in lines.by_ref() {
            if line.trim_start().starts_with("```") {
                break;
            }
            block.push_str(line);
            block.push('\n');
        }
        blocks.push(block);
    }
    blocks
}

#[test]
fn persistence_doc_sidecar_examples_round_trip() {
    let doc = read_doc("PERSISTENCE.md");
    let blocks = marked_blocks(&doc, "roundtrip:sidecar");
    assert!(blocks.len() >= 4, "PERSISTENCE.md must keep its marked sidecar examples");
    let mut records = 0usize;
    let mut positioned = 0usize;
    let mut headers = 0usize;
    for block in &blocks {
        let mut lines = block.lines().peekable();
        while let Some(line) = lines.next() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            records += 1;
            if line.starts_with("version ") {
                let manifest = load_versions(line);
                assert!(!manifest.is_empty(), "documented version line must parse: `{line}`");
                assert_eq!(
                    manifest.render().trim_end(),
                    line,
                    "documented version line must re-render identically"
                );
            } else if let Some(rest) = line.strip_prefix("stats ") {
                let numbers: Vec<usize> =
                    rest.split_whitespace().map(|token| token.parse().unwrap()).collect();
                assert_eq!(numbers.len(), 5, "stats line carries five counters: `{line}`");
                let restored = load_cache(&format!("{line}\n")).stats();
                assert_eq!(
                    (restored.hits, restored.misses, restored.insertions),
                    (numbers[0], numbers[1], numbers[2]),
                    "documented stats line must restore: `{line}`"
                );
            } else if let Some(rest) = line.strip_prefix("generation ") {
                let tokens: Vec<u64> =
                    rest.split_whitespace().map(|token| token.parse().unwrap()).collect();
                let [generation, seq] = tokens[..] else {
                    panic!("generation header carries two numbers: `{line}`");
                };
                assert_eq!(
                    render_generation_marker(Position::new(generation, seq)).trim_end(),
                    line,
                    "documented generation header must re-render identically"
                );
                headers += 1;
            } else if line.starts_with("delta ") {
                let (position, delta) = parse_positioned_delta(line)
                    .unwrap_or_else(|| panic!("documented delta line must parse: `{line}`"));
                let rendered = match position {
                    Some(position) => {
                        positioned += 1;
                        render_positioned_delta(position, &delta)
                    }
                    None => render_delta(&delta),
                };
                assert_eq!(rendered, line, "documented delta line must re-render identically");
                // Content payloads must be canonical declarations.
                match &delta {
                    DeltaRecord::Schema { decl } => {
                        let document = parse_document(decl).expect("schema payload parses");
                        assert_eq!(document.schemas.len(), 1);
                        let (name, signature) = document.schemas.iter().next().unwrap();
                        assert_eq!(&render_schema_decl(name, signature), decl);
                    }
                    DeltaRecord::Mapping { decl } => {
                        let document = parse_document(decl).expect("mapping payload parses");
                        assert_eq!(document.mappings.len(), 1);
                        let (name, (source, target, constraints)) =
                            document.mappings.iter().next().unwrap();
                        assert_eq!(&render_mapping_decl(name, source, target, constraints), decl);
                    }
                    _ => {}
                }
            } else if line.starts_with("migrate ") {
                let state = load_sidecar(&format!("{line}\n"));
                assert_eq!(
                    state.migrations.len(),
                    1,
                    "documented migrate snapshot line must load: `{line}`"
                );
                let ((from, to), updates) = state.migrations.iter().next().unwrap();
                assert_eq!(
                    render_migration_snapshot(from, to, updates),
                    line,
                    "documented migrate snapshot line must re-render identically"
                );
            } else if line.starts_with("entry ") {
                // Re-assemble the whole block through `end-document`.
                let mut entry_block = format!("{line}\n");
                for body in lines.by_ref() {
                    entry_block.push_str(body);
                    entry_block.push('\n');
                    if body.trim() == "end-document" {
                        break;
                    }
                }
                let cache = load_cache(&entry_block);
                assert_eq!(cache.len(), 1, "documented entry block must load:\n{entry_block}");
                // save_cache = comment + stats + the canonical block.
                let rendered = save_cache(&cache);
                let tail: String = rendered
                    .lines()
                    .skip(2)
                    .flat_map(|rendered_line| [rendered_line, "\n"])
                    .collect();
                assert_eq!(tail, entry_block, "documented entry block must re-render identically");
            } else {
                panic!("PERSISTENCE.md documents an unrecognised line kind: `{line}`");
            }
        }
    }
    assert!(records >= 12, "the sidecar examples must cover the grammar, found {records} records");
    assert!(positioned >= 5, "the examples must cover every positioned delta kind");
    assert!(headers >= 1, "the examples must cover the generation header");
}

#[test]
fn wire_doc_request_frames_decode_and_reencode() {
    let doc = read_doc("WIRE_PROTOCOL.md");
    let frames = marked_blocks(&doc, "roundtrip:request");
    assert!(frames.len() >= 9, "WIRE_PROTOCOL.md must document every request kind");
    let mut kinds = std::collections::BTreeSet::new();
    for frame in &frames {
        let request = decode_request(frame)
            .unwrap_or_else(|error| panic!("documented request must decode: {error}\n{frame}"));
        kinds.insert(request.kind());
        assert_eq!(&encode_request(&request), frame, "documented frame must be canonical");
    }
    for kind in [
        "ping",
        "add-document",
        "compose-path",
        "compose-names",
        "compose-batch",
        "invalidate",
        "migrate-delta",
        "analyze",
        "stats",
        "cache-info",
        "metrics",
        "compact",
        "subscribe",
        "snapshot",
        "shutdown",
    ] {
        assert!(kinds.contains(kind), "request kind `{kind}` has no documented example");
    }
}

#[test]
fn wire_doc_authenticated_frame_round_trips() {
    use mapping_composition::service::{decode_request_frame, encode_request_frame};

    let doc = read_doc("WIRE_PROTOCOL.md");
    let frames = marked_blocks(&doc, "roundtrip:request-auth");
    assert!(!frames.is_empty(), "WIRE_PROTOCOL.md must document an authenticated request frame");
    for frame in &frames {
        let (request, trace, auth) = decode_request_frame(frame).unwrap_or_else(|error| {
            panic!("documented authenticated frame must decode: {error}\n{frame}")
        });
        let auth = auth.expect("documented authenticated frame must carry a token");
        assert_eq!(
            &encode_request_frame(&request, trace, Some(&auth)),
            frame,
            "documented authenticated frame must be canonical"
        );
        // The envelope-unaware decoder accepts and discards both fields.
        assert_eq!(decode_request(frame).unwrap(), request);
    }
}

#[test]
fn wire_doc_reply_frames_decode_and_reencode() {
    let doc = read_doc("WIRE_PROTOCOL.md");
    let frames = marked_blocks(&doc, "roundtrip:reply");
    assert!(frames.len() >= 6, "WIRE_PROTOCOL.md must document the reply kinds");
    for frame in &frames {
        let reply = decode_reply(frame)
            .unwrap_or_else(|error| panic!("documented reply must decode: {error}\n{frame}"));
        assert_eq!(&encode_reply(&reply), frame, "documented frame must be canonical");
    }
}

#[test]
fn wire_doc_error_code_table_matches_the_api() {
    let doc = read_doc("WIRE_PROTOCOL.md");
    let start = doc.find("<!-- error-code-table -->").expect("error-code table marker");
    let mut documented = std::collections::BTreeSet::new();
    for line in doc[start..].lines().skip(1) {
        let line = line.trim();
        if !line.starts_with('|') {
            if !documented.is_empty() {
                break;
            }
            continue;
        }
        let Some(cell) = line.trim_start_matches('|').split('|').next() else { continue };
        let cell = cell.trim();
        if let Some(code) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            documented.insert(code.to_string());
        }
    }
    let actual: std::collections::BTreeSet<String> =
        ErrorCode::ALL.iter().map(|code| code.as_str().to_string()).collect();
    assert_eq!(documented, actual, "the documented error-code table must match ErrorCode::ALL");
}

#[test]
fn replication_doc_frames_round_trip() {
    let doc = read_doc("REPLICATION.md");
    let requests = marked_blocks(&doc, "roundtrip:request");
    assert!(requests.len() >= 2, "REPLICATION.md must document subscribe and snapshot requests");
    let mut kinds = std::collections::BTreeSet::new();
    for frame in &requests {
        let request = decode_request(frame)
            .unwrap_or_else(|error| panic!("documented request must decode: {error}\n{frame}"));
        kinds.insert(request.kind());
        assert_eq!(&encode_request(&request), frame, "documented frame must be canonical");
    }
    assert!(kinds.contains("subscribe") && kinds.contains("snapshot"));
    let replies = marked_blocks(&doc, "roundtrip:reply");
    assert!(replies.len() >= 4, "REPLICATION.md must document the stream reply kinds");
    for frame in &replies {
        let reply = decode_reply(frame)
            .unwrap_or_else(|error| panic!("documented reply must decode: {error}\n{frame}"));
        assert_eq!(&encode_reply(&reply), frame, "documented frame must be canonical");
    }
}

#[test]
fn replication_doc_state_table_matches_the_api() {
    use mapping_composition::service::FollowerState;

    let doc = read_doc("REPLICATION.md");
    let start = doc.find("<!-- follower-state-table -->").expect("follower-state table marker");
    let mut documented = std::collections::BTreeSet::new();
    for line in doc[start..].lines().skip(1) {
        let line = line.trim();
        if !line.starts_with('|') {
            if !documented.is_empty() {
                break;
            }
            continue;
        }
        let Some(cell) = line.trim_start_matches('|').split('|').next() else { continue };
        let cell = cell.trim();
        if let Some(state) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            documented.insert(state.to_string());
        }
    }
    let actual: std::collections::BTreeSet<String> =
        FollowerState::ALL.iter().map(|state| state.as_str().to_string()).collect();
    assert_eq!(documented, actual, "the documented state table must match FollowerState::ALL");
}

#[test]
fn analysis_doc_reports_render_identically() {
    use mapping_composition::catalog::{Catalog, Session};

    let doc = read_doc("ANALYSIS.md");
    let documents = marked_blocks(&doc, "analysis:document");
    let reports = marked_blocks(&doc, "analysis:report");
    assert_eq!(documents.len(), reports.len(), "every example document needs a report block");
    assert!(documents.len() >= 2, "ANALYSIS.md must keep its proven and unknown examples");
    for (document, expected) in documents.iter().zip(&reports) {
        let parsed = parse_document(document).expect("documented catalog document parses");
        let mut session = Session::new(Catalog::new());
        session.ingest_document(&parsed).expect("documented catalog document ingests");
        let rendered = session.analysis_text(None).expect("analysis renders");
        assert_eq!(&rendered, expected, "documented analysis report must match the renderer");
    }
}

#[test]
fn analysis_doc_lint_code_table_matches_the_api() {
    use mapping_composition::analysis::LintCode;

    let doc = read_doc("ANALYSIS.md");
    let start = doc.find("<!-- lint-code-table -->").expect("lint-code table marker");
    let mut documented = std::collections::BTreeSet::new();
    for line in doc[start..].lines().skip(1) {
        let line = line.trim();
        if !line.starts_with('|') {
            if !documented.is_empty() {
                break;
            }
            continue;
        }
        let Some(cell) = line.trim_start_matches('|').split('|').next() else { continue };
        let cell = cell.trim();
        if let Some(code) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            documented.insert(code.to_string());
        }
    }
    let actual: std::collections::BTreeSet<String> =
        LintCode::ALL.iter().map(|code| code.as_str().to_string()).collect();
    assert_eq!(documented, actual, "the documented lint-code table must match LintCode::ALL");
}

#[test]
fn observability_doc_traced_frame_round_trips() {
    let doc = read_doc("OBSERVABILITY.md");
    let frames = marked_blocks(&doc, "roundtrip:request-traced");
    assert!(!frames.is_empty(), "OBSERVABILITY.md must document a traced request frame");
    for frame in &frames {
        let (request, trace) = decode_request_traced(frame).unwrap_or_else(|error| {
            panic!("documented traced frame must decode: {error}\n{frame}")
        });
        let trace = trace.expect("documented traced frame must carry a trace ID");
        assert_eq!(
            &encode_request_traced(&request, Some(trace)),
            frame,
            "documented traced frame must be canonical"
        );
        // The trace-unaware decoder accepts and discards the field.
        assert_eq!(decode_request(frame).unwrap(), request);
    }
}

#[test]
fn observability_doc_exposition_sample_renders_identically() {
    use mapping_composition::telemetry::metrics::MetricsRegistry;

    let doc = read_doc("OBSERVABILITY.md");
    let blocks = marked_blocks(&doc, "exposition:sample");
    assert_eq!(blocks.len(), 1, "OBSERVABILITY.md must keep its exposition sample");

    // Rebuild the documented sample on a fresh registry.
    let registry = MetricsRegistry::new().leak();
    registry
        .counter("mapcomp_demo_requests_total", "Requests served, per kind.", &[("kind", "ping")])
        .add(3);
    registry
        .counter("mapcomp_demo_requests_total", "Requests served, per kind.", &[("kind", "stats")])
        .incr();
    registry.gauge("mapcomp_demo_connections_active", "Open connections.", &[]).set(2);
    let latency = registry.histogram(
        "mapcomp_demo_latency_us",
        "Request latency in microseconds.",
        &[],
        &[100, 1000],
    );
    latency.observe(40);
    latency.observe(250);
    latency.observe(9000);

    assert_eq!(
        registry.render(),
        blocks[0],
        "documented exposition sample must match the renderer"
    );
}

#[test]
fn observability_doc_log_line_examples_render_identically() {
    use mapping_composition::telemetry::log::{json_line, LogFormat, LogValue};

    let doc = read_doc("OBSERVABILITY.md");
    let fields = [
        ("peer", LogValue::Str("127.0.0.1:52114")),
        ("kind", LogValue::Str("compose-path")),
        ("ms", LogValue::F64(1.5)),
        ("ok", LogValue::Bool(true)),
        ("trace", LogValue::Str("4be1a4cd0d7f3a2b")),
    ];
    for (marker, format) in [("logline:json", LogFormat::Json), ("logline:text", LogFormat::Text)] {
        let blocks = marked_blocks(&doc, marker);
        assert_eq!(blocks.len(), 1, "OBSERVABILITY.md must keep its `{marker}` example");
        assert_eq!(
            blocks[0].trim_end(),
            json_line(format, "request", &fields),
            "documented `{marker}` line must match the renderer"
        );
    }
}

#[test]
fn observability_doc_metric_catalog_matches_the_registry() {
    use mapping_composition::algebra::{parse_constraints, Instance, Signature, Value};
    use mapping_composition::catalog::{Catalog, SessionConfig, SidecarWriter};
    use mapping_composition::compose::{exchange, ExchangeConfig, Registry};
    use mapping_composition::replication::ReplicationHub;
    use mapping_composition::service::{Follower, LocalService, Server};
    use mapping_composition::telemetry::metrics::global;

    let doc = read_doc("OBSERVABILITY.md");
    let start = doc.find("<!-- metric-catalog -->").expect("metric-catalog marker");
    let mut documented = std::collections::BTreeSet::new();
    for line in doc[start..].lines().skip(1) {
        let line = line.trim();
        if !line.starts_with('|') {
            if !documented.is_empty() {
                break;
            }
            continue;
        }
        let Some(cell) = line.trim_start_matches('|').split('|').next() else { continue };
        let cell = cell.trim();
        if let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            documented.insert(name.to_string());
        }
    }
    assert!(documented.len() >= 20, "the catalog must list every built-in metric");

    // Construct one of each instrumented component so every family in the
    // catalog registers on the global registry (registration is eager at
    // component construction; the chase registers on first run).
    let _service = LocalService::new(Catalog::new(), 2);
    let _server = Server::bind("127.0.0.1:0").expect("loopback bind");
    let _sidecar = SidecarWriter::new(std::env::temp_dir().join("mapcomp-docs-metrics.sidecar"));
    // The leader-side replication families register on hub construction,
    // the lag gauge on follower construction (no connection is dialled).
    let _hub = ReplicationHub::new();
    let _follower = Follower::open(
        std::env::temp_dir().join("mapcomp-docs-metrics-follower.doc"),
        "127.0.0.1:1",
        Registry::standard(),
        SessionConfig::default(),
        1,
        None,
    )
    .expect("follower opens without dialling");
    let constraints = parse_constraints("R <= T").unwrap().into_vec();
    let full = Signature::from_arities(vec![("R".to_string(), 1), ("T".to_string(), 1)]);
    let target = Signature::from_arities(vec![("T".to_string(), 1)]);
    let mut source = Instance::new();
    source.insert("R", vec![Value::Int(1)]);
    let result = exchange(
        &constraints,
        &full,
        &target,
        &source,
        &Registry::standard(),
        &ExchangeConfig::default(),
    );
    assert!(result.converged);
    // The differential engine registers its chase_delta_* families on the
    // first applied batch.
    let mut engine = mapping_composition::compose::DifferentialChase::new(
        &constraints,
        &full,
        &target,
        source,
        &Registry::standard(),
        &ExchangeConfig::default(),
    );
    engine
        .apply(&[mapping_composition::compose::Update::insert("R", vec![Value::Int(2)])])
        .unwrap();
    // The analyzer registers its verdict/lint families on first run; a
    // cartesian-product premise makes sure at least one lint fires.
    let lint_me = parse_constraints("P * Q <= S").unwrap().into_vec();
    let lint_full = Signature::from_arities(vec![
        ("P".to_string(), 1),
        ("Q".to_string(), 1),
        ("S".to_string(), 2),
    ]);
    let lint_target = Signature::from_arities(vec![("S".to_string(), 2)]);
    let report =
        mapping_composition::analysis::analyze_exchange(&lint_me, &lint_full, &lint_target);
    assert!(report.proven() && !report.diagnostics.is_empty());

    let rendered = global().render();
    for name in &documented {
        assert!(
            rendered.contains(&format!("# TYPE {name} ")),
            "documented metric `{name}` is not registered; rendered families:\n{}",
            rendered.lines().filter(|l| l.starts_with("# TYPE")).collect::<Vec<_>>().join("\n")
        );
    }
}

#[test]
fn differential_doc_update_examples_round_trip() {
    use mapping_composition::compose::parse_update;

    let doc = read_doc("DIFFERENTIAL.md");
    let blocks = marked_blocks(&doc, "roundtrip:update");
    assert!(!blocks.is_empty(), "DIFFERENTIAL.md must document the signed-update grammar");
    let mut updates = 0usize;
    for block in &blocks {
        for line in block.lines().map(str::trim).filter(|line| !line.is_empty()) {
            let update = parse_update(line)
                .unwrap_or_else(|error| panic!("documented update must parse: {error}\n{line}"));
            assert_eq!(update.render(), line, "documented update must be canonical");
            updates += 1;
        }
    }
    assert!(updates >= 4, "the grammar examples must cover signs and every constant kind");
}

#[test]
fn differential_doc_wire_frames_round_trip() {
    let doc = read_doc("DIFFERENTIAL.md");
    let requests = marked_blocks(&doc, "roundtrip:request");
    let replies = marked_blocks(&doc, "roundtrip:reply");
    assert!(
        !requests.is_empty() && !replies.is_empty(),
        "DIFFERENTIAL.md must document the migrate-delta wire frames"
    );
    for frame in &requests {
        let request = decode_request(frame)
            .unwrap_or_else(|error| panic!("documented request must decode: {error}\n{frame}"));
        assert_eq!(request.kind(), "migrate-delta");
        assert_eq!(&encode_request(&request), frame, "documented frame must be canonical");
    }
    for frame in &replies {
        let reply = decode_reply(frame)
            .unwrap_or_else(|error| panic!("documented reply must decode: {error}\n{frame}"));
        assert_eq!(&encode_reply(&reply), frame, "documented frame must be canonical");
    }
}

#[test]
fn differential_doc_migration_scenario_executes() {
    use mapping_composition::catalog::Catalog;
    use mapping_composition::service::{LocalService, MapcompService as _, Request, Response};

    let doc = read_doc("DIFFERENTIAL.md");
    let documents = marked_blocks(&doc, "migrate:document");
    let batches = marked_blocks(&doc, "migrate:batch");
    let targets = marked_blocks(&doc, "migrate:target");
    assert_eq!(documents.len(), 1, "the scenario needs exactly one catalog document");
    assert_eq!(batches.len(), targets.len(), "every batch needs its expected target");
    assert!(batches.len() >= 3, "the scenario must exercise shared support and retraction");

    let service = LocalService::new(Catalog::new(), 2);
    service.call(Request::AddDocument { text: documents[0].clone() }).expect("document ingests");
    let mut payloads = Vec::new();
    for (index, (batch, target)) in batches.iter().zip(&targets).enumerate() {
        let updates: Vec<String> =
            batch.lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from).collect();
        let reply = service
            .call(Request::MigrateDelta { from: "src".into(), to: "dst".into(), updates })
            .unwrap_or_else(|error| panic!("documented batch {index} must apply: {error}"));
        let Response::Migrated(payload) = reply else {
            panic!("expected a migrated reply, got {reply:?}");
        };
        assert_eq!(
            &payload.target, target,
            "batch {index}: the documented target must match the maintained engine"
        );
        payloads.push(payload);
    }
    // The documented `migrated` frame is the *actual* reply of the second
    // batch (the shared-support deletion), byte-for-byte.
    let documented = marked_blocks(&doc, "roundtrip:reply");
    let reply = decode_reply(&documented[0]).expect("documented reply decodes");
    assert_eq!(
        reply,
        Ok(Response::Migrated(payloads[1].clone())),
        "the documented migrated frame must be the live reply of the second batch"
    );
}
