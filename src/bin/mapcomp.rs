//! `mapcomp` — command-line front end for the composition component.
//!
//! Two modes:
//!
//! **Task mode** (the original paper workflow): read a composition task
//! written in the plain-text format (paper §4), run the best-effort COMPOSE
//! algorithm, and print the resulting mapping.
//!
//! ```text
//! mapcomp <task-file> [<first-mapping> <second-mapping>]
//!         [--no-unfolding] [--no-left-compose] [--no-right-compose]
//!         [--minimize] [--blowup N] [--stats]
//! ```
//!
//! When the mapping names are omitted, `m12` and `m23` are assumed. Example
//! task files live under `examples/tasks/`.
//!
//! **Catalog mode**: maintain a persistent catalog of schemas and mappings
//! (a plain-text document on disk, with a `<file>.memo` sidecar holding the
//! memo cache) and compose multi-hop chains incrementally:
//!
//! ```text
//! mapcomp catalog add           --catalog <file> <document-file>...
//! mapcomp catalog compose-path  --catalog <file> <from-schema> <to-schema>
//!                               [--require-complete] [--stats] [compose flags]
//! mapcomp catalog compose-batch --catalog <file> [--workers N]
//!                               <from> <to> [<from> <to> ...]
//! mapcomp catalog invalidate    --catalog <file> <mapping-name>
//! mapcomp catalog stats         --catalog <file>
//! ```
//!
//! `compose-batch` fans its requests across `--workers` scoped threads
//! sharing one catalog and one (segment-striped) memo cache, so overlapping
//! chains pay for their common segments once — the multi-session traffic
//! shape, served from a single invocation.
//!
//! Every catalog command also accepts `--cache-capacity N` to bound the memo
//! cache (least-recently-used entries are evicted past the bound; 0 means
//! unbounded).
//!
//! `compose-path` prints the composed mapping as a plain-text document
//! (schemas + mapping), so its output can be fed back to `catalog add` or
//! any other consumer of the format.
//!
//! The document format carries content only; entry version counters, hash
//! history and cumulative cache statistics are persisted in the `<file>.memo`
//! sidecar and re-applied on load, so versions survive across invocations
//! (an out-of-session edit to the document is detected by content hash and
//! advances the recorded version by one).

use std::process::ExitCode;

use mapping_composition::algebra::parse_document;
use mapping_composition::catalog::{
    load_state, save_state, Catalog, ChainOptions, Session, SessionConfig,
};
use mapping_composition::compose::{compose, minimize_mapping, ComposeConfig, Registry};

struct Options {
    file: String,
    first: String,
    second: String,
    config: ComposeConfig,
    minimize: bool,
    stats: bool,
}

/// Handle a compose-configuration flag shared by both CLI modes, consuming
/// the flag's value from `iter` when it carries one. Returns `Ok(false)`
/// when the argument is not a compose flag.
fn parse_compose_flag<'a>(
    arg: &str,
    iter: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
    config: &mut ComposeConfig,
) -> Result<bool, String> {
    match arg {
        "--no-unfolding" => config.enable_view_unfolding = false,
        "--no-left-compose" => config.enable_left_compose = false,
        "--no-right-compose" => config.enable_right_compose = false,
        "--blowup" => {
            let value = iter.next().ok_or("--blowup requires a factor")?;
            let factor: usize =
                value.parse().map_err(|_| format!("invalid blow-up factor `{value}`"))?;
            config.blowup_factor = if factor == 0 { None } else { Some(factor) };
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut config = ComposeConfig::default();
    let mut minimize = false;
    let mut stats = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if parse_compose_flag(arg, &mut iter, &mut config)? {
            continue;
        }
        match arg.as_str() {
            "--minimize" => minimize = true,
            "--stats" => stats = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            other => positional.push(other.to_string()),
        }
    }
    let file = positional.first().cloned().ok_or("missing task file")?;
    let first = positional.get(1).cloned().unwrap_or_else(|| "m12".to_string());
    let second = positional.get(2).cloned().unwrap_or_else(|| "m23".to_string());
    Ok(Options { file, first, second, config, minimize, stats })
}

fn run(options: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(&options.file)
        .map_err(|e| format!("cannot read {}: {e}", options.file))?;
    let document = parse_document(&text).map_err(|e| format!("parse error: {e}"))?;
    let task = document.task(&options.first, &options.second).map_err(|e| {
        format!("cannot build task from `{}` and `{}`: {e}", options.first, options.second)
    })?;
    let registry = Registry::standard();
    task.validate(registry.operators()).map_err(|e| format!("task does not type-check: {e}"))?;

    let result = compose(&task, &registry, &options.config).map_err(|e| e.to_string())?;
    let full_signature = task.full_signature().map_err(|e| e.to_string())?;

    let constraints = if options.minimize {
        minimize_mapping(result.constraints.clone().into_vec(), &full_signature, &registry)
    } else {
        result.constraints.clone().into_vec()
    };

    println!("// composed mapping over {}", result.signature);
    for constraint in &constraints {
        println!("{constraint};");
    }
    eprintln!();
    eprintln!("eliminated : {:?}", result.eliminated);
    eprintln!("remaining  : {:?}", result.remaining);
    if options.stats {
        let (unfold, left, right) = result.stats.eliminations_by_step();
        eprintln!("steps      : unfolding {unfold}, left compose {left}, right compose {right}");
        eprintln!(
            "size       : {} -> {} constraints, {} -> {} operators",
            result.stats.input_constraints,
            constraints.len(),
            result.stats.input_op_count,
            constraints.iter().map(|c| c.op_count()).sum::<usize>()
        );
        eprintln!("time       : {:?}", result.stats.total_time);
        if result.stats.blowup_aborts > 0 {
            eprintln!(
                "aborted    : {} eliminations hit the blow-up budget",
                result.stats.blowup_aborts
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Catalog mode
// ---------------------------------------------------------------------------

struct CatalogOptions {
    command: String,
    catalog_file: String,
    positional: Vec<String>,
    config: ComposeConfig,
    require_complete: bool,
    stats: bool,
    cache_capacity: Option<usize>,
    workers: usize,
}

fn parse_catalog_args(args: &[String]) -> Result<CatalogOptions, String> {
    let command = args.first().cloned().ok_or(
        "missing catalog command: expected `add`, `compose-path`, `compose-batch`, \
         `invalidate`, or `stats`",
    )?;
    let mut catalog_file = None;
    let mut positional = Vec::new();
    let mut config = ComposeConfig::default();
    let mut require_complete = false;
    let mut stats = false;
    let mut cache_capacity = None;
    let mut workers = 1usize;
    let mut iter = args[1..].iter().peekable();
    while let Some(arg) = iter.next() {
        if parse_compose_flag(arg, &mut iter, &mut config)? {
            continue;
        }
        match arg.as_str() {
            "--catalog" => {
                let value = iter.next().ok_or("--catalog requires a file path")?;
                catalog_file = Some(value.clone());
            }
            "--require-complete" => require_complete = true,
            "--stats" => stats = true,
            "--cache-capacity" => {
                let value = iter.next().ok_or("--cache-capacity requires a count")?;
                let entries: usize =
                    value.parse().map_err(|_| format!("invalid cache capacity `{value}`"))?;
                cache_capacity = if entries == 0 { None } else { Some(entries) };
            }
            "--workers" => {
                let value = iter.next().ok_or("--workers requires a count")?;
                workers = value
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid worker count `{value}`"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            other => positional.push(other.to_string()),
        }
    }
    let catalog_file = catalog_file.ok_or("catalog commands require --catalog <file>")?;
    Ok(CatalogOptions {
        command,
        catalog_file,
        positional,
        config,
        require_complete,
        stats,
        cache_capacity,
        workers,
    })
}

fn memo_path(catalog_file: &str) -> String {
    format!("{catalog_file}.memo")
}

/// Load a session from the catalog file (which may not exist yet for `add`)
/// and its memo sidecar.
fn load_session(options: &CatalogOptions, allow_missing: bool) -> Result<Session, String> {
    let mut catalog = Catalog::new();
    match std::fs::read_to_string(&options.catalog_file) {
        Ok(text) => {
            let document = parse_document(&text)
                .map_err(|e| format!("{}: parse error: {e}", options.catalog_file))?;
            catalog.from_document(&document).map_err(|e| e.to_string())?;
        }
        // Only genuine absence may be ignored: any other read failure
        // (permissions, I/O) must not make `add` start from an empty catalog
        // and overwrite the existing file on save.
        Err(e) if allow_missing && e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot read {}: {e}", options.catalog_file)),
    }
    let session_config = SessionConfig {
        compose: options.config.clone(),
        chain: ChainOptions { require_complete: options.require_complete },
        cache_capacity: options.cache_capacity,
    };
    // The sidecar carries version counters, hash history and the memo cache;
    // versions are re-applied before the session takes over the catalog.
    if let Ok(text) = std::fs::read_to_string(memo_path(&options.catalog_file)) {
        let (manifest, cache) = load_state(&text);
        catalog.restore_versions(&manifest);
        let mut session = Session::with_config(catalog, Registry::standard(), session_config);
        session.restore_cache(cache);
        return Ok(session);
    }
    Ok(Session::with_config(catalog, Registry::standard(), session_config))
}

fn save_session(options: &CatalogOptions, session: &Session) -> Result<(), String> {
    std::fs::write(&options.catalog_file, session.catalog().to_document_string())
        .map_err(|e| format!("cannot write {}: {e}", options.catalog_file))?;
    std::fs::write(
        memo_path(&options.catalog_file),
        save_state(session.catalog(), session.cache()),
    )
    .map_err(|e| format!("cannot write {}: {e}", memo_path(&options.catalog_file)))?;
    Ok(())
}

fn run_catalog(options: &CatalogOptions) -> Result<(), String> {
    match options.command.as_str() {
        "add" => {
            if options.positional.is_empty() {
                return Err("catalog add requires at least one document file".to_string());
            }
            let mut session = load_session(options, true)?;
            let mut touched = Vec::new();
            for file in &options.positional {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                let document =
                    parse_document(&text).map_err(|e| format!("{file}: parse error: {e}"))?;
                touched.extend(session.ingest_document(&document).map_err(|e| e.to_string())?);
            }
            save_session(options, &session)?;
            eprintln!(
                "catalog    : {} schemas, {} mappings",
                session.catalog().schema_count(),
                session.catalog().mapping_count()
            );
            eprintln!("updated    : {touched:?}");
            Ok(())
        }
        "compose-path" => {
            let [from, to] = options.positional.as_slice() else {
                return Err("catalog compose-path requires <from-schema> <to-schema>".to_string());
            };
            let mut session = load_session(options, false)?;
            let result = session.compose_path(from, to).map_err(|e| e.to_string())?;
            save_session(options, &session)?;

            // Print the composed mapping as a document that re-parses: the
            // endpoint schemas (target extended by any residual symbols, per
            // §3.1 the output signature may keep σ2 leftovers) + mapping.
            let chain = &result.chain;
            let mut printed = Catalog::new();
            printed.add_schema(from.clone(), chain.mapping.input.clone());
            let mut target_sig = chain.mapping.output.clone();
            for (name, info) in chain.residual.iter() {
                target_sig.add(name.to_string(), info.clone());
            }
            printed.add_schema(to.clone(), target_sig);
            printed
                .add_mapping("composed", from, to, chain.mapping.constraints.clone())
                .map_err(|e| e.to_string())?;
            println!("// composed {} -> {} via {:?}", from, to, chain.path);
            if !chain.residual.is_empty() {
                println!("// residual (uneliminated) symbols: {:?}", chain.residual.names());
            }
            print!("{}", printed.to_document_string());

            eprintln!();
            eprintln!("path        : {:?}", chain.path);
            eprintln!("residual    : {:?}", chain.residual.names());
            if options.stats {
                let stats = session.stats();
                eprintln!("plan        : {:?} (run lengths; >1 = served from cache)", result.plan);
                eprintln!("compose     : {} pairwise calls this request", result.compose_calls);
                eprintln!("cache hits  : {} this request", result.cache_hits);
                eprintln!(
                    "cache       : {} entries ({} hits / {} misses lifetime)",
                    stats.cache_entries, stats.cache.hits, stats.cache.misses
                );
            }
            Ok(())
        }
        "compose-batch" => {
            if options.positional.is_empty() || !options.positional.len().is_multiple_of(2) {
                return Err(
                    "catalog compose-batch requires <from> <to> pairs (an even number of schema names)"
                        .to_string(),
                );
            }
            let requests: Vec<(String, String)> = options
                .positional
                .chunks(2)
                .map(|pair| (pair[0].clone(), pair[1].clone()))
                .collect();
            let mut session = load_session(options, false)?;
            let started = std::time::Instant::now();
            let results = session.compose_batch_parallel(&requests, options.workers);
            let elapsed = started.elapsed();
            save_session(options, &session)?;
            let mut failures = 0usize;
            for ((from, to), result) in requests.iter().zip(&results) {
                match result {
                    Ok(result) => {
                        let residual = if result.is_complete() {
                            String::new()
                        } else {
                            format!(" residual {:?}", result.chain.residual.names())
                        };
                        eprintln!(
                            "ok   : {from} -> {to} via {:?} ({} compose calls, {} cache hits{residual})",
                            result.chain.path, result.compose_calls, result.cache_hits
                        );
                    }
                    Err(error) => {
                        failures += 1;
                        eprintln!("fail : {from} -> {to} : {error}");
                    }
                }
            }
            eprintln!(
                "batch       : {} requests, {} failed, {} workers, {:.1} ms",
                requests.len(),
                failures,
                options.workers,
                elapsed.as_secs_f64() * 1000.0
            );
            if options.stats {
                let stats = session.stats();
                eprintln!(
                    "compose     : {} pairwise calls lifetime; cache {} entries ({} hits / {} misses)",
                    stats.compose_calls, stats.cache_entries, stats.cache.hits, stats.cache.misses
                );
            }
            if failures > 0 {
                return Err(format!("{failures} of {} batch requests failed", requests.len()));
            }
            Ok(())
        }
        "invalidate" => {
            let [mapping] = options.positional.as_slice() else {
                return Err("catalog invalidate requires <mapping-name>".to_string());
            };
            let mut session = load_session(options, false)?;
            session.catalog().mapping(mapping).map_err(|e| e.to_string())?;
            let dropped = session.invalidate(mapping);
            save_session(options, &session)?;
            eprintln!("invalidated : {dropped} cached compositions depending on `{mapping}`");
            Ok(())
        }
        "stats" => {
            let session = load_session(options, false)?;
            let catalog = session.catalog();
            eprintln!("schemas     : {}", catalog.schema_count());
            eprintln!("mappings    : {}", catalog.mapping_count());
            for entry in catalog.mappings() {
                eprintln!(
                    "  {} : {} -> {} (v{}, hash {}, {} constraints)",
                    entry.name,
                    entry.source,
                    entry.target,
                    entry.version,
                    entry.hash,
                    entry.constraints.len()
                );
                if entry.history.len() > 1 {
                    let history: Vec<String> =
                        entry.history.iter().map(|(v, h)| format!("v{v}={h}")).collect();
                    eprintln!("      history: {}", history.join(", "));
                }
            }
            let cache_stats = session.cache().stats();
            eprintln!(
                "memo cache  : {} entries (capacity {})",
                session.cache().len(),
                session
                    .cache()
                    .capacity()
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "unbounded".to_string())
            );
            eprintln!(
                "  lifetime  : {} hits, {} misses, {} insertions, {} invalidated, {} evicted",
                cache_stats.hits,
                cache_stats.misses,
                cache_stats.insertions,
                cache_stats.invalidated,
                cache_stats.evictions
            );
            for (key, entry) in session.cache().iter() {
                eprintln!(
                    "  {:016x}/{:016x}/{:016x} : {} -> {} via {:?} ({} hits)",
                    key.0,
                    key.1,
                    key.2,
                    entry.chain.source,
                    entry.chain.target,
                    entry.chain.path,
                    entry.hits
                );
            }
            // Connectivity summary: for each schema, what it can compose to.
            for schema in catalog.schemas() {
                if let Ok(reach) = mapping_composition::catalog::reachable(catalog, &schema.name) {
                    if !reach.is_empty() {
                        let targets: Vec<String> =
                            reach.iter().map(|(name, hops)| format!("{name}({hops})")).collect();
                        eprintln!("reachable   : {} -> {}", schema.name, targets.join(", "));
                    }
                }
            }
            Ok(())
        }
        other => Err(format!(
            "unknown catalog command `{other}`: expected `add`, `compose-path`, \
             `compose-batch`, `invalidate`, or `stats`"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: mapcomp <task-file> [<first-mapping> <second-mapping>] \
             [--no-unfolding] [--no-left-compose] [--no-right-compose] \
             [--minimize] [--blowup N] [--stats]\n\
             \n\
             \x20      mapcomp catalog add           --catalog <file> <document-file>...\n\
             \x20      mapcomp catalog compose-path  --catalog <file> <from> <to> \
             [--require-complete] [--stats]\n\
             \x20      mapcomp catalog compose-batch --catalog <file> [--workers N] \
             <from> <to> [<from> <to> ...]\n\
             \x20      mapcomp catalog invalidate    --catalog <file> <mapping>\n\
             \x20      mapcomp catalog stats         --catalog <file>\n\
             \x20      (catalog commands also accept --cache-capacity N; 0 = unbounded)"
        );
        return if args.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    let outcome = if args[0] == "catalog" {
        parse_catalog_args(&args[1..]).and_then(|options| run_catalog(&options))
    } else {
        parse_args(&args).and_then(|options| run(&options))
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
