//! `mapcomp` — command-line front end for the composition component.
//!
//! Reads a composition task written in the plain-text format (paper §4), runs
//! the best-effort COMPOSE algorithm, and prints the resulting mapping.
//!
//! ```text
//! mapcomp <task-file> [<first-mapping> <second-mapping>]
//!         [--no-unfolding] [--no-left-compose] [--no-right-compose]
//!         [--minimize] [--blowup N] [--stats]
//! ```
//!
//! When the mapping names are omitted, `m12` and `m23` are assumed. Example
//! task files live under `examples/tasks/`.

use std::process::ExitCode;

use mapping_composition::algebra::parse_document;
use mapping_composition::compose::{compose, minimize_mapping, ComposeConfig, Registry};

struct Options {
    file: String,
    first: String,
    second: String,
    config: ComposeConfig,
    minimize: bool,
    stats: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut config = ComposeConfig::default();
    let mut minimize = false;
    let mut stats = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--no-unfolding" => config.enable_view_unfolding = false,
            "--no-left-compose" => config.enable_left_compose = false,
            "--no-right-compose" => config.enable_right_compose = false,
            "--minimize" => minimize = true,
            "--stats" => stats = true,
            "--blowup" => {
                let value = iter.next().ok_or("--blowup requires a factor")?;
                let factor: usize =
                    value.parse().map_err(|_| format!("invalid blow-up factor `{value}`"))?;
                config.blowup_factor = if factor == 0 { None } else { Some(factor) };
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            other => positional.push(other.to_string()),
        }
    }
    let file = positional.first().cloned().ok_or("missing task file")?;
    let first = positional.get(1).cloned().unwrap_or_else(|| "m12".to_string());
    let second = positional.get(2).cloned().unwrap_or_else(|| "m23".to_string());
    Ok(Options { file, first, second, config, minimize, stats })
}

fn run(options: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(&options.file)
        .map_err(|e| format!("cannot read {}: {e}", options.file))?;
    let document = parse_document(&text).map_err(|e| format!("parse error: {e}"))?;
    let task = document
        .task(&options.first, &options.second)
        .map_err(|e| format!("cannot build task from `{}` and `{}`: {e}", options.first, options.second))?;
    let registry = Registry::standard();
    task.validate(registry.operators()).map_err(|e| format!("task does not type-check: {e}"))?;

    let result = compose(&task, &registry, &options.config).map_err(|e| e.to_string())?;
    let full_signature = task.full_signature().map_err(|e| e.to_string())?;

    let constraints = if options.minimize {
        minimize_mapping(result.constraints.clone().into_vec(), &full_signature, &registry)
    } else {
        result.constraints.clone().into_vec()
    };

    println!("// composed mapping over {}", result.signature);
    for constraint in &constraints {
        println!("{constraint};");
    }
    eprintln!();
    eprintln!("eliminated : {:?}", result.eliminated);
    eprintln!("remaining  : {:?}", result.remaining);
    if options.stats {
        let (unfold, left, right) = result.stats.eliminations_by_step();
        eprintln!("steps      : unfolding {unfold}, left compose {left}, right compose {right}");
        eprintln!(
            "size       : {} -> {} constraints, {} -> {} operators",
            result.stats.input_constraints,
            constraints.len(),
            result.stats.input_op_count,
            constraints.iter().map(|c| c.op_count()).sum::<usize>()
        );
        eprintln!("time       : {:?}", result.stats.total_time);
        if result.stats.blowup_aborts > 0 {
            eprintln!("aborted    : {} eliminations hit the blow-up budget", result.stats.blowup_aborts);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: mapcomp <task-file> [<first-mapping> <second-mapping>] \
             [--no-unfolding] [--no-left-compose] [--no-right-compose] \
             [--minimize] [--blowup N] [--stats]"
        );
        return if args.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    match parse_args(&args).and_then(|options| run(&options)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
