//! `mapcomp` — command-line front end for the composition component.
//!
//! Three modes:
//!
//! **Task mode** (the original paper workflow): read a composition task
//! written in the plain-text format (paper §4), run the best-effort COMPOSE
//! algorithm, and print the resulting mapping.
//!
//! ```text
//! mapcomp <task-file> [<first-mapping> <second-mapping>]
//!         [--no-unfolding] [--no-left-compose] [--no-right-compose]
//!         [--minimize] [--blowup N] [--stats]
//! ```
//!
//! When the mapping names are omitted, `m12` and `m23` are assumed. Example
//! task files live under `examples/tasks/`.
//!
//! **Catalog mode**: maintain a persistent catalog of schemas and mappings
//! (a plain-text document on disk, with a `<file>.memo` sidecar holding the
//! memo cache) and compose multi-hop chains incrementally. Every catalog
//! subcommand is a typed service request executed against an in-process
//! backend — the *same* requests `mapcomp client` sends over TCP, so local
//! and remote traffic share one code path:
//!
//! ```text
//! mapcomp catalog add           --catalog <file> <document-file>...
//! mapcomp catalog compose-path  --catalog <file> <from-schema> <to-schema>
//!                               [--require-complete] [--stats] [compose flags]
//! mapcomp catalog compose-names --catalog <file> <mapping>...
//! mapcomp catalog compose-batch --catalog <file> [--workers N]
//!                               <from> <to> [<from> <to> ...]
//! mapcomp catalog migrate-delta --catalog <file> <from> <to> <±rel(v,...)>...
//! mapcomp catalog invalidate    --catalog <file> <mapping-name>
//! mapcomp catalog lint          --catalog <file> [<mapping-name>]
//! mapcomp catalog stats         --catalog <file>
//! mapcomp catalog cache-info    --catalog <file>
//! mapcomp catalog compact       --catalog <file>
//! ```
//!
//! `lint` runs the static analyzer over every mapping (or just the named
//! one): a chase-termination verdict per mapping — `proven` with a concrete
//! polynomial evaluation budget, or `unknown` with the existential cycle
//! that blocks the proof — plus style diagnostics with stable codes
//! (unbound head variables, cartesian-product joins, duplicate rules, …).
//! Output is deterministic byte-for-byte; the report grammar is specified
//! in `docs/ANALYSIS.md`. Proven budgets are applied automatically when the
//! serving side chases (`--eval-budget N` overrides them by hand; 0 is
//! rejected).
//!
//! Catalog commands also accept `--cache-capacity N` (bound the memo cache;
//! 0 = unbounded), `--path-cost hops|op-count` (fewest-hops vs.
//! cheapest-estimated-growth path resolution), and the durability policy:
//! `--persist incremental|full` (incremental, the default, appends delta
//! records so each state-changing command costs I/O proportional to the
//! change; full rewrites document + sidecar every time), with
//! `--compact-appends N` / `--compact-bytes N` bounding how much delta log
//! accumulates before it is folded back into snapshot form (0 = never; an
//! explicit `compact` always folds). The on-disk grammar is specified in
//! `docs/PERSISTENCE.md`.
//!
//! **Service mode**: serve the same catalog over TCP, and drive a server
//! from the command line:
//!
//! ```text
//! mapcomp serve  --catalog <file> [--addr 127.0.0.1:0] [--workers N]
//!                [--engine event|threaded] [--queue-limit N]
//!                [--auth-token-file <path>]
//!                [--cache-capacity N] [--path-cost hops|op-count]
//!                [--require-complete] [--idle-timeout SECONDS]
//!                [--slow-ms N] [--log-format text|json]
//!                [--persist incremental|full] [compose flags]
//!                [--replicate | --follow <host:port>]
//! mapcomp client --addr <host:port> [--auth-token-file <path>] ping
//! mapcomp client --addr <host:port> add <document-file>...
//! mapcomp client --addr <host:port> compose-path <from> <to> [--stats]
//! mapcomp client --addr <host:port> compose-names <mapping>...
//! mapcomp client --addr <host:port> compose-batch [--workers N] <from> <to> ...
//! mapcomp client --addr <host:port> migrate-delta <from> <to> <±rel(v,...)>...
//! mapcomp client --addr <host:port> invalidate <mapping>
//! mapcomp client --addr <host:port> lint [<mapping>]
//! mapcomp client --addr <host:port> stats
//! mapcomp client --addr <host:port> cache-info
//! mapcomp client --addr <host:port> metrics
//! mapcomp client --addr <host:port> compact
//! mapcomp client --addr <host:port> shutdown
//! ```
//!
//! `serve` defaults to the readiness-driven event engine: one event loop
//! owns every socket, connections pipeline freely, and `--workers N`
//! bounds the CPU pool that actually composes (`--queue-limit N` bounds
//! how many decoded requests may wait for it before the server sheds with
//! the `busy` error code). `--engine threaded` selects the
//! thread-per-connection server instead — same wire protocol byte for
//! byte, with `--workers` bounding concurrent connections. With
//! `--auth-token-file <path>` the server refuses requests until a
//! connection presents the file's first-line token in an `auth` frame
//! field; the client-side flag makes `mapcomp client` present it.
//!
//! `metrics` prints the serving side's metrics registry as Prometheus-style
//! text exposition on stdout; `serve --log-format json` emits one JSON
//! object per connection event and request on stderr, and `--slow-ms N`
//! logs any request slower than N milliseconds even when general logging
//! is off. The metric catalog, log-line shape, and the wire-level `trace`
//! field are specified in `docs/OBSERVABILITY.md`.
//!
//! `serve --replicate` makes the process a replication *leader*: every
//! sidecar append is published to subscribers, and `subscribe`/`snapshot`
//! requests are answered (event engine only). `serve --follow <host:port>`
//! makes it a read-only *follower* of the leader at that address: reads
//! are served from a local replica fed by the leader's delta stream, and
//! writes fail with the `readonly` error code naming the leader. See
//! `docs/REPLICATION.md` for the stream grammar and follower lifecycle.
//!
//! `serve` prints `listening on <addr>` once the socket is bound (bind port
//! 0 for an ephemeral port and read it off that line), then blocks until a
//! client sends `shutdown`. Composition policy (compose flags, path cost,
//! strictness) is fixed server-side at `serve` time; clients only name
//! schemas and mappings.
//!
//! `compose-path` prints the composed mapping as a plain-text document
//! (schemas + mapping), so its output can be fed back to `catalog add` or
//! any other consumer of the format.
//!
//! The document format carries content only; entry version counters, hash
//! history and cumulative cache statistics are persisted in the `<file>.memo`
//! sidecar and re-applied on load, so versions survive across invocations
//! (an out-of-session edit to the document is detected by content hash and
//! advances the recorded version by one). Sidecar writes take a sibling
//! `.lock` file, so concurrent invocations — or a server and a stray CLI —
//! never tear each other's state.

use std::process::ExitCode;

use mapping_composition::algebra::parse_document;
use mapping_composition::catalog::{Catalog, ChainOptions, PathCost, SessionConfig};
use mapping_composition::compose::{compose, minimize_mapping, ComposeConfig, Registry};
use mapping_composition::service::{
    Client, EventServer, Follower, LocalService, MapcompService, PersistMode, PersistPolicy,
    Request, Response, Server,
};
use mapping_composition::telemetry::log::LogFormat;

struct Options {
    file: String,
    first: String,
    second: String,
    config: ComposeConfig,
    minimize: bool,
    stats: bool,
}

/// Handle a compose-configuration flag shared by all CLI modes, consuming
/// the flag's value from `iter` when it carries one. Returns `Ok(false)`
/// when the argument is not a compose flag.
fn parse_compose_flag<'a>(
    arg: &str,
    iter: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
    config: &mut ComposeConfig,
) -> Result<bool, String> {
    match arg {
        "--no-unfolding" => config.enable_view_unfolding = false,
        "--no-left-compose" => config.enable_left_compose = false,
        "--no-right-compose" => config.enable_right_compose = false,
        "--blowup" => {
            let value = iter.next().ok_or("--blowup requires a factor")?;
            let factor: usize =
                value.parse().map_err(|_| format!("invalid blow-up factor `{value}`"))?;
            config.blowup_factor = if factor == 0 { None } else { Some(factor) };
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut config = ComposeConfig::default();
    let mut minimize = false;
    let mut stats = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if parse_compose_flag(arg, &mut iter, &mut config)? {
            continue;
        }
        match arg.as_str() {
            "--minimize" => minimize = true,
            "--stats" => stats = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            other => positional.push(other.to_string()),
        }
    }
    let file = positional.first().cloned().ok_or("missing task file")?;
    let first = positional.get(1).cloned().unwrap_or_else(|| "m12".to_string());
    let second = positional.get(2).cloned().unwrap_or_else(|| "m23".to_string());
    Ok(Options { file, first, second, config, minimize, stats })
}

fn run(options: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(&options.file)
        .map_err(|e| format!("cannot read {}: {e}", options.file))?;
    let document = parse_document(&text).map_err(|e| format!("parse error: {e}"))?;
    let task = document.task(&options.first, &options.second).map_err(|e| {
        format!("cannot build task from `{}` and `{}`: {e}", options.first, options.second)
    })?;
    let registry = Registry::standard();
    task.validate(registry.operators()).map_err(|e| format!("task does not type-check: {e}"))?;

    let result = compose(&task, &registry, &options.config).map_err(|e| e.to_string())?;
    let full_signature = task.full_signature().map_err(|e| e.to_string())?;

    let constraints = if options.minimize {
        minimize_mapping(result.constraints.clone().into_vec(), &full_signature, &registry)
    } else {
        result.constraints.clone().into_vec()
    };

    println!("// composed mapping over {}", result.signature);
    for constraint in &constraints {
        println!("{constraint};");
    }
    eprintln!();
    eprintln!("eliminated : {:?}", result.eliminated);
    eprintln!("remaining  : {:?}", result.remaining);
    if options.stats {
        let (unfold, left, right) = result.stats.eliminations_by_step();
        eprintln!("steps      : unfolding {unfold}, left compose {left}, right compose {right}");
        eprintln!(
            "size       : {} -> {} constraints, {} -> {} operators",
            result.stats.input_constraints,
            constraints.len(),
            result.stats.input_op_count,
            constraints
                .iter()
                .map(mapping_composition::prelude::Constraint::op_count)
                .sum::<usize>()
        );
        eprintln!("time       : {:?}", result.stats.total_time);
        if result.stats.blowup_aborts > 0 {
            eprintln!(
                "aborted    : {} eliminations hit the blow-up budget",
                result.stats.blowup_aborts
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Service-mode argument parsing (catalog / serve / client)
// ---------------------------------------------------------------------------

/// Arguments shared by the three service-mode entry points: the subcommand
/// keyword, its positional arguments, and the session policy flags (which
/// only the *serving* side applies — locally for `catalog`, at bind time for
/// `serve`, and not at all for `client`).
/// Which TCP front end `mapcomp serve` runs. Both speak the identical
/// wire protocol; the difference is purely the concurrency model.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ServeEngine {
    /// Readiness-driven event loop with a bounded CPU pool (the default).
    Event,
    /// Thread-per-connection server with a bounded worker pool.
    Threaded,
}

struct ServiceArgs {
    command: String,
    positional: Vec<String>,
    catalog_file: Option<String>,
    addr: Option<String>,
    config: ComposeConfig,
    require_complete: bool,
    stats: bool,
    cache_capacity: Option<usize>,
    path_cost: PathCost,
    /// `--eval-budget N`: operator override for the chase evaluation budget.
    /// Always wins over analysis-derived bounds; 0 is rejected at parse time.
    eval_budget: Option<usize>,
    /// `--workers N`; `None` when the flag was not given — the serving side
    /// then uses its own default (1 locally, the `serve`-time count
    /// remotely).
    workers: Option<usize>,
    /// `--persist incremental|full`; `None` = the default (incremental).
    persist_mode: Option<PersistMode>,
    /// `--compact-appends N` (0 = never compact on append count).
    compact_appends: Option<usize>,
    /// `--compact-bytes N` (0 = never compact on sidecar size).
    compact_bytes: Option<u64>,
    /// `--idle-timeout SECONDS` (0 = keep idle connections forever, the
    /// default).
    idle_timeout: Option<f64>,
    /// `--slow-ms N`: log any request slower than N milliseconds (0 = off,
    /// the default). Serve mode only.
    slow_ms: Option<u64>,
    /// `--log-format text|json`: structured connection/request logging on
    /// stderr. Serve mode only; `None` = silent, the default.
    log_format: Option<LogFormat>,
    /// `--engine event|threaded`: which server front end `serve` runs.
    /// `None` = event, the default.
    engine: Option<ServeEngine>,
    /// `--queue-limit N`: bound on decoded requests waiting for a CPU
    /// worker before the event engine sheds with `busy`. Serve mode,
    /// event engine only.
    queue_limit: Option<usize>,
    /// `--auth-token-file <path>`: file whose first line is the shared
    /// auth token (serve requires it, client presents it).
    auth_token_file: Option<String>,
    /// `--replicate`: serve as a replication leader — publish every sidecar
    /// append to subscribers and answer `subscribe`/`snapshot`. Serve mode,
    /// event engine only.
    replicate: bool,
    /// `--follow <host:port>`: serve as a read-only follower of the leader
    /// at that address. Serve mode only.
    follow: Option<String>,
    /// Session-policy flags seen while parsing (compose flags,
    /// `--require-complete`, `--cache-capacity`, `--path-cost`). They only
    /// take effect on the serving side, so client mode rejects them instead
    /// of silently ignoring them.
    policy_flags: Vec<String>,
}

impl ServiceArgs {
    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            compose: self.config.clone(),
            chain: ChainOptions { require_complete: self.require_complete },
            cache_capacity: self.cache_capacity,
            path_cost: self.path_cost,
            eval_budget: self.eval_budget,
        }
    }

    fn persist_policy(&self) -> PersistPolicy {
        let mut policy = match self.persist_mode {
            Some(PersistMode::FullRewrite) => PersistPolicy::full_rewrite(),
            _ => PersistPolicy::default(),
        };
        if let Some(appends) = self.compact_appends {
            policy.compact_appends = if appends == 0 { None } else { Some(appends) };
        }
        if let Some(bytes) = self.compact_bytes {
            policy.compact_bytes = if bytes == 0 { None } else { Some(bytes) };
        }
        policy
    }
}

fn parse_service_args(command: Option<&String>, args: &[String]) -> Result<ServiceArgs, String> {
    let command = command.cloned().unwrap_or_default();
    let mut parsed = ServiceArgs {
        command,
        positional: Vec::new(),
        catalog_file: None,
        addr: None,
        config: ComposeConfig::default(),
        require_complete: false,
        stats: false,
        cache_capacity: None,
        path_cost: PathCost::Hops,
        eval_budget: None,
        workers: None,
        persist_mode: None,
        compact_appends: None,
        compact_bytes: None,
        idle_timeout: None,
        slow_ms: None,
        log_format: None,
        engine: None,
        queue_limit: None,
        auth_token_file: None,
        replicate: false,
        follow: None,
        policy_flags: Vec::new(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if parse_compose_flag(arg, &mut iter, &mut parsed.config)? {
            parsed.policy_flags.push(arg.clone());
            continue;
        }
        match arg.as_str() {
            "--catalog" => {
                let value = iter.next().ok_or("--catalog requires a file path")?;
                parsed.catalog_file = Some(value.clone());
            }
            "--addr" => {
                let value = iter.next().ok_or("--addr requires a host:port address")?;
                parsed.addr = Some(value.clone());
            }
            "--require-complete" => {
                parsed.require_complete = true;
                parsed.policy_flags.push(arg.clone());
            }
            "--stats" => parsed.stats = true,
            "--cache-capacity" => {
                let value = iter.next().ok_or("--cache-capacity requires a count")?;
                let entries: usize =
                    value.parse().map_err(|_| format!("invalid cache capacity `{value}`"))?;
                parsed.cache_capacity = if entries == 0 { None } else { Some(entries) };
                parsed.policy_flags.push(arg.clone());
            }
            "--path-cost" => {
                let value = iter.next().ok_or("--path-cost requires `hops` or `op-count`")?;
                parsed.path_cost = match value.as_str() {
                    "hops" => PathCost::Hops,
                    "op-count" => PathCost::OpCount,
                    other => return Err(format!("invalid path cost `{other}`")),
                };
                parsed.policy_flags.push(arg.clone());
            }
            "--eval-budget" => {
                let value = iter.next().ok_or("--eval-budget requires a step count")?;
                let budget: usize =
                    value.parse().map_err(|_| format!("invalid eval budget `{value}`"))?;
                if budget == 0 {
                    return Err(
                        "--eval-budget must be positive: a zero budget would reject every \
                         chase before its first step (omit the flag to use the analyzer's \
                         proven bound or the engine default)"
                            .to_string(),
                    );
                }
                parsed.eval_budget = Some(budget);
                parsed.policy_flags.push(arg.clone());
            }
            "--workers" => {
                let value = iter.next().ok_or("--workers requires a count")?;
                parsed.workers = Some(
                    value
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid worker count `{value}`"))?,
                );
            }
            "--persist" => {
                let value = iter.next().ok_or("--persist requires `incremental` or `full`")?;
                parsed.persist_mode = Some(match value.as_str() {
                    "incremental" => PersistMode::Incremental,
                    "full" => PersistMode::FullRewrite,
                    other => return Err(format!("invalid persist mode `{other}`")),
                });
                parsed.policy_flags.push(arg.clone());
            }
            "--compact-appends" => {
                let value = iter.next().ok_or("--compact-appends requires a count")?;
                parsed.compact_appends =
                    Some(value.parse().map_err(|_| format!("invalid append threshold `{value}`"))?);
                parsed.policy_flags.push(arg.clone());
            }
            "--compact-bytes" => {
                let value = iter.next().ok_or("--compact-bytes requires a byte count")?;
                parsed.compact_bytes =
                    Some(value.parse().map_err(|_| format!("invalid byte threshold `{value}`"))?);
                parsed.policy_flags.push(arg.clone());
            }
            "--idle-timeout" => {
                let value = iter.next().ok_or("--idle-timeout requires seconds")?;
                // Bounded so `Duration::from_secs_f64` can never panic
                // (anything past a year is "never reap" in practice).
                const MAX_IDLE_SECONDS: f64 = 366.0 * 24.0 * 3600.0;
                parsed.idle_timeout = Some(
                    value
                        .parse()
                        .ok()
                        .filter(|&s: &f64| s.is_finite() && (0.0..=MAX_IDLE_SECONDS).contains(&s))
                        .ok_or_else(|| format!("invalid idle timeout `{value}`"))?,
                );
                parsed.policy_flags.push(arg.clone());
            }
            "--slow-ms" => {
                let value = iter.next().ok_or("--slow-ms requires milliseconds")?;
                parsed.slow_ms =
                    Some(value.parse().map_err(|_| format!("invalid slow threshold `{value}`"))?);
                parsed.policy_flags.push(arg.clone());
            }
            "--log-format" => {
                let value = iter.next().ok_or("--log-format requires `text` or `json`")?;
                parsed.log_format = Some(value.parse()?);
                parsed.policy_flags.push(arg.clone());
            }
            "--engine" => {
                let value = iter.next().ok_or("--engine requires `event` or `threaded`")?;
                parsed.engine = Some(match value.as_str() {
                    "event" => ServeEngine::Event,
                    "threaded" => ServeEngine::Threaded,
                    other => return Err(format!("invalid engine `{other}`")),
                });
            }
            "--queue-limit" => {
                let value = iter.next().ok_or("--queue-limit requires a count")?;
                parsed.queue_limit = Some(
                    value
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid queue limit `{value}`"))?,
                );
            }
            "--auth-token-file" => {
                let value = iter.next().ok_or("--auth-token-file requires a file path")?;
                parsed.auth_token_file = Some(value.clone());
            }
            "--replicate" => parsed.replicate = true,
            "--follow" => {
                let value = iter.next().ok_or("--follow requires the leader's host:port")?;
                parsed.follow = Some(value.clone());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            other => parsed.positional.push(other.to_string()),
        }
    }
    Ok(parsed)
}

// ---------------------------------------------------------------------------
// One command path for local and remote service backends
// ---------------------------------------------------------------------------

const COMMANDS: &str =
    "`add`, `compose-path`, `compose-names`, `compose-batch`, `migrate-delta`, `invalidate`, \
     `lint`, `stats`, `cache-info`, `metrics`, `compact`, `ping`, or `shutdown`";

/// Execute one service-mode subcommand against any backend and print the
/// reply. This is the single dispatch path: `mapcomp catalog` hands in a
/// [`LocalService`], `mapcomp client` a TCP [`Client`].
fn run_command(service: &dyn MapcompService, args: &ServiceArgs) -> Result<(), String> {
    match args.command.as_str() {
        "ping" => {
            match service.call(Request::Ping).map_err(|e| e.to_string())? {
                Response::Pong => eprintln!("pong"),
                other => return Err(format!("unexpected reply `{}`", other.kind())),
            }
            Ok(())
        }
        "add" => {
            if args.positional.is_empty() {
                return Err("add requires at least one document file".to_string());
            }
            // Read and pre-parse every file before sending anything, so the
            // common failure (a malformed file anywhere in the list) commits
            // nothing and names the offending file. The files are then
            // ingested in order as separate requests — a later file
            // redefining an earlier file's mapping is an *edit* (version
            // bump + history), exactly as if the files were added in
            // separate invocations.
            let mut texts = Vec::new();
            for file in &args.positional {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                parse_document(&text).map_err(|e| format!("{file}: parse error: {e}"))?;
                texts.push(text);
            }
            let mut touched = Vec::new();
            let mut counts = (0, 0);
            for text in texts {
                match service.call(Request::AddDocument { text }).map_err(|e| e.to_string())? {
                    Response::Added { touched: t, schemas, mappings } => {
                        touched.extend(t);
                        counts = (schemas, mappings);
                    }
                    other => return Err(format!("unexpected reply `{}`", other.kind())),
                }
            }
            touched.sort();
            touched.dedup();
            eprintln!("catalog    : {} schemas, {} mappings", counts.0, counts.1);
            eprintln!("updated    : {touched:?}");
            Ok(())
        }
        "compose-path" | "compose-names" => {
            let request = if args.command == "compose-path" {
                let [from, to] = args.positional.as_slice() else {
                    return Err("compose-path requires <from-schema> <to-schema>".to_string());
                };
                Request::ComposePath { from: from.clone(), to: to.clone() }
            } else {
                if args.positional.is_empty() {
                    return Err("compose-names requires at least one mapping name".to_string());
                }
                Request::ComposeNames { names: args.positional.clone() }
            };
            let payload = match service.call(request).map_err(|e| e.to_string())? {
                Response::Composed(payload) => payload,
                other => return Err(format!("unexpected reply `{}`", other.kind())),
            };
            let chain = payload.to_chain().map_err(|e| e.to_string())?;

            // Print the composed mapping as a document that re-parses: the
            // endpoint schemas (target extended by any residual symbols, per
            // §3.1 the output signature may keep σ2 leftovers) + mapping.
            let mut printed = Catalog::new();
            printed.add_schema(chain.source.clone(), chain.mapping.input.clone());
            let mut target_sig = chain.mapping.output.clone();
            for (name, info) in chain.residual.iter() {
                target_sig.add(name.to_string(), info.clone());
            }
            printed.add_schema(chain.target.clone(), target_sig);
            printed
                .add_mapping(
                    "composed",
                    &chain.source,
                    &chain.target,
                    chain.mapping.constraints.clone(),
                )
                .map_err(|e| e.to_string())?;
            println!("// composed {} -> {} via {:?}", chain.source, chain.target, chain.path);
            if !chain.residual.is_empty() {
                println!("// residual (uneliminated) symbols: {:?}", chain.residual.names());
            }
            print!("{}", printed.to_document_string());

            eprintln!();
            eprintln!("path        : {:?}", chain.path);
            eprintln!("residual    : {:?}", chain.residual.names());
            if args.stats {
                eprintln!("plan        : {:?} (run lengths; >1 = served from cache)", payload.plan);
                eprintln!("compose     : {} pairwise calls this request", payload.compose_calls);
                eprintln!("cache hits  : {} this request", payload.cache_hits);
                let stats = fetch_stats(service)?;
                eprintln!(
                    "cache       : {} entries ({} hits / {} misses lifetime)",
                    stats.session.cache_entries,
                    stats.session.cache.hits,
                    stats.session.cache.misses
                );
            }
            Ok(())
        }
        "compose-batch" => {
            if args.positional.is_empty() || !args.positional.len().is_multiple_of(2) {
                return Err(
                    "compose-batch requires <from> <to> pairs (an even number of schema names)"
                        .to_string(),
                );
            }
            let requests: Vec<(String, String)> =
                args.positional.chunks(2).map(|pair| (pair[0].clone(), pair[1].clone())).collect();
            let started = std::time::Instant::now();
            // `workers: 0` on the wire means "the serving side's configured
            // default" — locally that is 1, remotely the `serve`-time count.
            let reply = service
                .call(Request::ComposeBatch {
                    requests: requests.clone(),
                    workers: args.workers.unwrap_or(0),
                })
                .map_err(|e| e.to_string())?;
            let elapsed = started.elapsed();
            let Response::Batch(results) = reply else {
                return Err(format!("unexpected reply `{}`", reply.kind()));
            };
            let mut failures = 0usize;
            for ((from, to), result) in requests.iter().zip(&results) {
                match result {
                    Ok(payload) => {
                        let chain = payload.to_chain().map_err(|e| e.to_string())?;
                        let residual = if chain.residual.is_empty() {
                            String::new()
                        } else {
                            format!(" residual {:?}", chain.residual.names())
                        };
                        eprintln!(
                            "ok   : {from} -> {to} via {:?} ({} compose calls, {} cache hits{residual})",
                            payload.path, payload.compose_calls, payload.cache_hits
                        );
                    }
                    Err(error) => {
                        failures += 1;
                        eprintln!("fail : {from} -> {to} : {error}");
                    }
                }
            }
            eprintln!(
                "batch       : {} requests, {} failed, {} workers, {:.1} ms",
                requests.len(),
                failures,
                args.workers.map_or_else(|| "default".to_string(), |w| w.to_string()),
                elapsed.as_secs_f64() * 1000.0
            );
            if args.stats {
                let stats = fetch_stats(service)?;
                eprintln!(
                    "compose     : {} pairwise calls lifetime; cache {} entries ({} hits / {} misses)",
                    stats.session.compose_calls,
                    stats.session.cache_entries,
                    stats.session.cache.hits,
                    stats.session.cache.misses
                );
            }
            if failures > 0 {
                return Err(format!("{failures} of {} batch requests failed", requests.len()));
            }
            Ok(())
        }
        "migrate-delta" => {
            let [from, to, updates @ ..] = args.positional.as_slice() else {
                return Err("migrate-delta requires <from-schema> <to-schema> [±rel(v,...) ...]"
                    .to_string());
            };
            if updates.is_empty() {
                return Err(
                    "migrate-delta requires at least one signed update, e.g. +R(1,'a') or -R(1,'a')"
                        .to_string(),
                );
            }
            let reply = service
                .call(Request::MigrateDelta {
                    from: from.clone(),
                    to: to.clone(),
                    updates: updates.to_vec(),
                })
                .map_err(|e| e.to_string())?;
            let Response::Migrated(payload) = reply else {
                return Err(format!("unexpected reply `{}`", reply.kind()));
            };
            // The maintained target instance goes to stdout (pipeable, like
            // the composed document of `compose-path`); statistics to stderr.
            print!("{}", payload.target);
            eprintln!(
                "batch       : {} effective of {} requested (+{} / -{})",
                payload.applied,
                updates.len(),
                payload.inserted,
                payload.deleted
            );
            eprintln!(
                "maintenance : {} firings retracted, {} rederived, {}",
                payload.retracted,
                payload.rederived,
                if payload.fallback { "full re-chase fallback" } else { "incremental" }
            );
            eprintln!(
                "instance    : {} source rows -> {} target rows ({} support entries)",
                payload.source_rows, payload.target_rows, payload.support_entries
            );
            Ok(())
        }
        "invalidate" => {
            let [mapping] = args.positional.as_slice() else {
                return Err("invalidate requires <mapping-name>".to_string());
            };
            match service
                .call(Request::Invalidate { mapping: mapping.clone() })
                .map_err(|e| e.to_string())?
            {
                Response::Invalidated { dropped } => {
                    eprintln!(
                        "invalidated : {dropped} cached compositions depending on `{mapping}`"
                    );
                    Ok(())
                }
                other => Err(format!("unexpected reply `{}`", other.kind())),
            }
        }
        "lint" => {
            let mapping = match args.positional.as_slice() {
                [] => None,
                [name] => Some(name.clone()),
                _ => return Err("lint takes at most one mapping name".to_string()),
            };
            match service.call(Request::Analyze { mapping }).map_err(|e| e.to_string())? {
                // The report goes to stdout byte-for-byte as the server
                // rendered it — it is the machine-checkable artifact — with
                // the one-line tally on stderr.
                Response::Analysis(payload) => {
                    print!("{}", payload.text);
                    eprintln!(
                        "analysis    : {} proven, {} unknown, {} diagnostics",
                        payload.proven, payload.unknown, payload.diagnostics
                    );
                    Ok(())
                }
                other => Err(format!("unexpected reply `{}`", other.kind())),
            }
        }
        "stats" => {
            let stats = fetch_stats(service)?;
            eprintln!("schemas     : {}", stats.schemas);
            eprintln!("mappings    : {}", stats.mappings);
            for entry in &stats.entries {
                eprintln!(
                    "  {} : {} -> {} (v{}, hash {:016x}, {} constraints)",
                    entry.name,
                    entry.source,
                    entry.target,
                    entry.version,
                    entry.hash,
                    entry.constraints
                );
                if entry.history.len() > 1 {
                    let history: Vec<String> =
                        entry.history.iter().map(|(v, h)| format!("v{v}={h:016x}")).collect();
                    eprintln!("      history: {}", history.join(", "));
                }
            }
            let session = &stats.session;
            eprintln!(
                "session     : {} compose calls, {} paths resolved, {} chains composed",
                session.compose_calls, session.paths_resolved, session.chains_composed
            );
            eprintln!(
                "memo cache  : {} entries (capacity {})",
                session.cache_entries,
                stats.cache_capacity.map_or_else(|| "unbounded".to_string(), |c| c.to_string())
            );
            eprintln!(
                "  lifetime  : {} hits, {} misses, {} insertions, {} invalidated, {} evicted",
                session.cache.hits,
                session.cache.misses,
                session.cache.insertions,
                session.cache.invalidated,
                session.cache.evictions
            );
            if let Some(replication) = &stats.replication {
                eprintln!(
                    "replication : {} ({}) at position {}, lag {}",
                    replication.role, replication.state, replication.position, replication.lag
                );
            }
            // Connectivity summary, computed client-side from the entry
            // edges: for each schema with outgoing mappings, what it can
            // compose to (fewest hops).
            let mut adjacency: std::collections::BTreeMap<&str, Vec<&str>> = Default::default();
            for entry in &stats.entries {
                adjacency.entry(&entry.source).or_default().push(&entry.target);
            }
            for from in adjacency.keys().copied().collect::<Vec<_>>() {
                let mut distance: std::collections::BTreeMap<&str, usize> = Default::default();
                let mut queue = std::collections::VecDeque::from([(from, 0usize)]);
                while let Some((node, hops)) = queue.pop_front() {
                    for next in adjacency.get(node).into_iter().flatten() {
                        if *next != from && !distance.contains_key(*next) {
                            distance.insert(next, hops + 1);
                            queue.push_back((next, hops + 1));
                        }
                    }
                }
                if !distance.is_empty() {
                    let targets: Vec<String> =
                        distance.iter().map(|(name, hops)| format!("{name}({hops})")).collect();
                    eprintln!("reachable   : {} -> {}", from, targets.join(", "));
                }
            }
            Ok(())
        }
        "cache-info" => {
            let payload = match service.call(Request::CacheInfo).map_err(|e| e.to_string())? {
                Response::CacheInfo(payload) => payload,
                other => return Err(format!("unexpected reply `{}`", other.kind())),
            };
            let (mut entries, mut hits, mut misses) = (0usize, 0usize, 0usize);
            for segment in &payload.segments {
                entries += segment.entries;
                hits += segment.hits;
                misses += segment.misses;
                eprintln!(
                    "segment {:>3} : {} entries (capacity {}), {} hits, {} misses, \
                     {} insertions, {} invalidated, {} evicted",
                    segment.segment,
                    segment.entries,
                    segment.capacity.map_or_else(|| "unbounded".to_string(), |c| c.to_string()),
                    segment.hits,
                    segment.misses,
                    segment.insertions,
                    segment.invalidated,
                    segment.evictions
                );
            }
            eprintln!(
                "memo cache  : {} segments, {entries} entries, {hits} hits, {misses} misses",
                payload.segments.len()
            );
            Ok(())
        }
        "metrics" => match service.call(Request::Metrics).map_err(|e| e.to_string())? {
            // The exposition goes to stdout — it is the machine-readable
            // output a scraper redirects, like compose-path's document.
            Response::Metrics { text } => {
                print!("{text}");
                Ok(())
            }
            other => Err(format!("unexpected reply `{}`", other.kind())),
        },
        "compact" => match service.call(Request::Compact).map_err(|e| e.to_string())? {
            Response::Compacted { bytes_before, bytes_after } => {
                eprintln!("compacted   : sidecar {bytes_before} -> {bytes_after} bytes");
                Ok(())
            }
            other => Err(format!("unexpected reply `{}`", other.kind())),
        },
        "shutdown" => {
            match service.call(Request::Shutdown).map_err(|e| e.to_string())? {
                Response::ShuttingDown => eprintln!("server shutting down"),
                other => return Err(format!("unexpected reply `{}`", other.kind())),
            }
            Ok(())
        }
        "" => Err(format!("missing command: expected {COMMANDS}")),
        other => Err(format!("unknown command `{other}`: expected {COMMANDS}")),
    }
}

fn fetch_stats(
    service: &dyn MapcompService,
) -> Result<mapping_composition::service::StatsPayload, String> {
    match service.call(Request::Stats).map_err(|e| e.to_string())? {
        Response::Stats(stats) => Ok(stats),
        other => Err(format!("unexpected reply `{}`", other.kind())),
    }
}

// ---------------------------------------------------------------------------
// Mode entry points
// ---------------------------------------------------------------------------

fn run_catalog(args: &ServiceArgs) -> Result<(), String> {
    let catalog_file =
        args.catalog_file.as_ref().ok_or("catalog commands require --catalog <file>")?;
    // Connection policy has no meaning without a server; silently accepting
    // it would let a user believe a timeout took effect.
    if args.idle_timeout.is_some() {
        return Err("--idle-timeout applies to `mapcomp serve`, not catalog mode".to_string());
    }
    // Likewise the serve-loop observability flags: catalog mode has no
    // connection loop to log.
    if args.slow_ms.is_some() || args.log_format.is_some() {
        return Err("--slow-ms/--log-format apply to `mapcomp serve`, not catalog mode".to_string());
    }
    if args.engine.is_some() || args.queue_limit.is_some() {
        return Err("--engine/--queue-limit apply to `mapcomp serve`, not catalog mode".to_string());
    }
    if args.replicate || args.follow.is_some() {
        return Err("--replicate/--follow apply to `mapcomp serve`, not catalog mode".to_string());
    }
    if args.auth_token_file.is_some() {
        return Err(
            "--auth-token-file applies to `mapcomp serve` and `mapcomp client`, not catalog mode"
                .to_string(),
        );
    }
    // Only `add` may start from a missing catalog file.
    let allow_missing = args.command == "add";
    let service = LocalService::open_with_policy(
        catalog_file,
        Registry::standard(),
        args.session_config(),
        args.workers.unwrap_or(1),
        allow_missing,
        args.persist_policy(),
    )
    .map_err(|e| e.to_string())?;
    run_command(&service, args)
}

/// Read the shared auth token from `path`: the file's content with any
/// trailing newline stripped (so `echo secret > token` works as expected).
fn read_auth_token(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read auth token file {path}: {e}"))?;
    let token = text.trim_end_matches(['\n', '\r']);
    if token.is_empty() {
        return Err(format!("auth token file {path} is empty"));
    }
    Ok(token.to_string())
}

fn run_serve(args: &ServiceArgs) -> Result<(), String> {
    let catalog_file = args.catalog_file.as_ref().ok_or("serve requires --catalog <file>")?;
    let addr = args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_string());
    let workers = args.workers.unwrap_or(1);
    let engine = args.engine.unwrap_or(ServeEngine::Event);
    if engine == ServeEngine::Threaded && args.queue_limit.is_some() {
        return Err("--queue-limit applies to the event engine: the threaded engine's \
                    queue is bounded by --workers"
            .to_string());
    }
    let auth_token = args.auth_token_file.as_deref().map(read_auth_token).transpose()?;
    if args.replicate && args.follow.is_some() {
        return Err("--replicate and --follow are mutually exclusive: a process is a \
                    leader or a follower, not both"
            .to_string());
    }
    if args.replicate && engine == ServeEngine::Threaded {
        return Err("--replicate requires the event engine: subscriptions are long-lived \
                    streams served by the event loop"
            .to_string());
    }
    if let Some(leader) = &args.follow {
        return run_follower(args, catalog_file, leader, &addr, workers, engine, auth_token);
    }
    let service = LocalService::open_with_policy(
        catalog_file,
        Registry::standard(),
        args.session_config(),
        workers,
        true,
        args.persist_policy(),
    )
    .map_err(|e| e.to_string())?;
    if args.replicate {
        service.enable_replication().map_err(|e| e.to_string())?;
        eprintln!("replicating : leader mode, publishing the delta log to subscribers");
    }
    let idle_timeout =
        args.idle_timeout.filter(|&s| s > 0.0).map(std::time::Duration::from_secs_f64);
    let slow_threshold = args.slow_ms.filter(|&ms| ms > 0).map(|ms| {
        // Keep the in-process slow-span ring on the same threshold, so
        // slow wire requests are retained by the tracer too.
        mapping_composition::telemetry::trace::set_slow_threshold_ms(ms);
        std::time::Duration::from_millis(ms)
    });
    let engine_name = match engine {
        ServeEngine::Event => "event",
        ServeEngine::Threaded => "threaded",
    };
    let announce = |bound: std::net::SocketAddr| {
        // The one stdout line automation depends on: parse the ephemeral
        // port off it before connecting.
        println!("listening on {bound}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        eprintln!(
            "serving     : catalog {catalog_file} with {workers} workers \
             ({engine_name} engine; send `shutdown` to stop)"
        );
    };
    match engine {
        ServeEngine::Event => {
            let mut server =
                EventServer::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            if let Some(timeout) = idle_timeout {
                server.set_idle_timeout(Some(timeout));
            }
            if let Some(threshold) = slow_threshold {
                server.set_slow_threshold(Some(threshold));
            }
            server.set_log_format(args.log_format);
            server.set_auth_token(auth_token);
            if let Some(limit) = args.queue_limit {
                server.set_queue_limit(limit);
            }
            announce(server.local_addr().map_err(|e| e.to_string())?);
            server.run(&service, workers).map_err(|e| e.to_string())?;
        }
        ServeEngine::Threaded => {
            let mut server = Server::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            if let Some(timeout) = idle_timeout {
                server.set_idle_timeout(Some(timeout));
            }
            if let Some(threshold) = slow_threshold {
                server.set_slow_threshold(Some(threshold));
            }
            server.set_log_format(args.log_format);
            server.set_auth_token(auth_token);
            announce(server.local_addr().map_err(|e| e.to_string())?);
            server.run(&service, workers).map_err(|e| e.to_string())?;
        }
    }
    eprintln!("stopped     : catalog persisted to {catalog_file}");
    Ok(())
}

/// Serve as a read-only follower: open the local replica, put its
/// read-only service surface behind the chosen server front end, and drive
/// the replication apply loop (subscribe → bootstrap → stream) on a
/// dedicated thread. The auth token, when given, is presented to the
/// leader *and* required of the follower's own clients.
fn run_follower(
    args: &ServiceArgs,
    catalog_file: &str,
    leader: &str,
    addr: &str,
    workers: usize,
    engine: ServeEngine,
    auth_token: Option<String>,
) -> Result<(), String> {
    // Persistence policy configures a leader's delta log; the follower's
    // sidecar mirrors the leader's log verbatim, so the flags would be
    // silently meaningless here.
    if args.persist_mode.is_some() || args.compact_appends.is_some() || args.compact_bytes.is_some()
    {
        return Err("--persist/--compact-appends/--compact-bytes configure a leader's log; \
                    a follower mirrors the leader's log verbatim"
            .to_string());
    }
    let follower = Follower::open(
        catalog_file,
        leader,
        Registry::standard(),
        args.session_config(),
        workers,
        auth_token.clone(),
    )
    .map_err(|e| e.to_string())?;
    let service = follower.service();
    let idle_timeout =
        args.idle_timeout.filter(|&s| s > 0.0).map(std::time::Duration::from_secs_f64);
    let slow_threshold = args.slow_ms.filter(|&ms| ms > 0).map(|ms| {
        mapping_composition::telemetry::trace::set_slow_threshold_ms(ms);
        std::time::Duration::from_millis(ms)
    });
    let engine_name = match engine {
        ServeEngine::Event => "event",
        ServeEngine::Threaded => "threaded",
    };
    let announce = |bound: std::net::SocketAddr| {
        println!("listening on {bound}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        eprintln!(
            "following   : leader {leader} -> catalog {catalog_file} \
             ({engine_name} engine, read-only; send `shutdown` to stop)"
        );
    };
    std::thread::scope(|scope| -> Result<(), String> {
        let apply = scope.spawn(|| follower.run());
        let served = match engine {
            ServeEngine::Event => {
                let mut server =
                    EventServer::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
                if let Some(timeout) = idle_timeout {
                    server.set_idle_timeout(Some(timeout));
                }
                if let Some(threshold) = slow_threshold {
                    server.set_slow_threshold(Some(threshold));
                }
                server.set_log_format(args.log_format);
                server.set_auth_token(auth_token.clone());
                if let Some(limit) = args.queue_limit {
                    server.set_queue_limit(limit);
                }
                announce(server.local_addr().map_err(|e| e.to_string())?);
                server.run(&service, workers).map_err(|e| e.to_string())
            }
            ServeEngine::Threaded => {
                let mut server =
                    Server::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
                if let Some(timeout) = idle_timeout {
                    server.set_idle_timeout(Some(timeout));
                }
                if let Some(threshold) = slow_threshold {
                    server.set_slow_threshold(Some(threshold));
                }
                server.set_log_format(args.log_format);
                server.set_auth_token(auth_token.clone());
                announce(server.local_addr().map_err(|e| e.to_string())?);
                server.run(&service, workers).map_err(|e| e.to_string())
            }
        };
        follower.stop();
        let streamed = apply.join().map_err(|_| "replication apply thread panicked".to_string())?;
        served?;
        streamed.map_err(|error| format!("replication stream failed: {error}"))
    })?;
    eprintln!("stopped     : follower catalog persisted to {catalog_file}");
    Ok(())
}

fn run_client(args: &ServiceArgs) -> Result<(), String> {
    let addr = args.addr.as_ref().ok_or("client requires --addr <host:port>")?;
    // Composition policy is fixed server-side at `serve` time; silently
    // dropping these flags would let a user believe e.g. --require-complete
    // was enforced when it was not.
    if !args.policy_flags.is_empty() {
        return Err(format!(
            "{flags:?} configure the serving side: set them on `mapcomp serve` (or `mapcomp \
             catalog`); client requests carry only schema and mapping names",
            flags = args.policy_flags
        ));
    }
    if args.catalog_file.is_some() {
        return Err("client mode talks to a server: use --addr, not --catalog".to_string());
    }
    if args.engine.is_some() || args.queue_limit.is_some() {
        return Err("--engine/--queue-limit apply to `mapcomp serve`, not client mode".to_string());
    }
    if args.replicate || args.follow.is_some() {
        return Err("--replicate/--follow apply to `mapcomp serve`, not client mode".to_string());
    }
    let auth_token = args.auth_token_file.as_deref().map(read_auth_token).transpose()?;
    let client = Client::connect(addr).map_err(|e| e.to_string())?.with_auth_token(auth_token);
    run_command(&client, args)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: mapcomp <task-file> [<first-mapping> <second-mapping>] \
             [--no-unfolding] [--no-left-compose] [--no-right-compose] \
             [--minimize] [--blowup N] [--stats]\n\
             \n\
             \x20      mapcomp catalog add           --catalog <file> <document-file>...\n\
             \x20      mapcomp catalog compose-path  --catalog <file> <from> <to> \
             [--require-complete] [--stats]\n\
             \x20      mapcomp catalog compose-names --catalog <file> <mapping>...\n\
             \x20      mapcomp catalog compose-batch --catalog <file> [--workers N] \
             <from> <to> [<from> <to> ...]\n\
             \x20      mapcomp catalog migrate-delta --catalog <file> <from> <to> \
             <±rel(v,...)>...\n\
             \x20      mapcomp catalog invalidate    --catalog <file> <mapping>\n\
             \x20      mapcomp catalog lint          --catalog <file> [<mapping>]\n\
             \x20      mapcomp catalog stats         --catalog <file>\n\
             \x20      mapcomp catalog cache-info    --catalog <file>\n\
             \x20      mapcomp catalog metrics       --catalog <file>\n\
             \x20      mapcomp catalog compact       --catalog <file>\n\
             \n\
             \x20      mapcomp serve  --catalog <file> [--addr HOST:PORT] [--workers N]\n\
             \x20                     [--engine event|threaded] [--queue-limit N]\n\
             \x20                     [--auth-token-file FILE]\n\
             \x20                     [--idle-timeout SECONDS] [--slow-ms N]\n\
             \x20                     [--log-format text|json]\n\
             \x20                     [--replicate | --follow HOST:PORT]\n\
             \x20      mapcomp client --addr HOST:PORT [--auth-token-file FILE] \
             <ping|add|compose-path|compose-names|compose-batch|migrate-delta|invalidate|\
             lint|stats|cache-info|metrics|compact|shutdown> [args...]\n\
             \n\
             \x20      catalog/serve also accept --cache-capacity N (0 = unbounded),\n\
             \x20      --path-cost hops|op-count, --eval-budget N (chase step budget;\n\
             \x20      must be positive, overrides analyzer-proven bounds),\n\
             \x20      the compose flags, and the durability\n\
             \x20      policy: --persist incremental|full (default incremental: append\n\
             \x20      delta records, compact on thresholds/shutdown/`compact`),\n\
             \x20      --compact-appends N and --compact-bytes N (0 = never). `serve`\n\
             \x20      prints `listening on <addr>` (use port 0 for an ephemeral port),\n\
             \x20      reaps connections idle past --idle-timeout (0/off = keep forever),\n\
             \x20      and stops when a client sends `shutdown`. The default --engine\n\
             \x20      event pipelines requests through one readiness loop and bounds\n\
             \x20      compose work with a --workers CPU pool (--queue-limit N sheds\n\
             \x20      excess load with the `busy` error); --engine threaded serves one\n\
             \x20      connection per worker thread. --auth-token-file FILE requires\n\
             \x20      clients to present the file's token in an `auth` frame field."
        );
        return if args.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    let outcome = match args[0].as_str() {
        "catalog" => parse_service_args(args.get(1), args.get(2..).unwrap_or_default())
            .and_then(|args| run_catalog(&args)),
        "serve" => {
            // `serve` has no subcommand keyword: everything after it is flags.
            parse_service_args(None, &args[1..]).and_then(|mut args| {
                args.command = "serve".to_string();
                run_serve(&args)
            })
        }
        "client" => {
            // The subcommand may appear before or after --addr; take the
            // first positional as the command.
            parse_service_args(None, &args[1..]).and_then(|mut args| {
                if args.positional.is_empty() {
                    return Err(format!("client requires a command: expected {COMMANDS}"));
                }
                args.command = args.positional.remove(0);
                run_client(&args)
            })
        }
        _ => parse_args(&args).and_then(|options| run(&options)),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
