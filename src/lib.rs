//! # mapping-composition
//!
//! Umbrella crate for the reproduction of *"Implementing Mapping
//! Composition"* (Bernstein, Green, Melnik, Nash; VLDB 2006): a best-effort,
//! algebra-based, extensible component for composing relational schema
//! mappings.
//!
//! The workspace is organised as four library crates, re-exported here:
//!
//! * [`algebra`] — the relational-algebra substrate: expressions over the six
//!   basic operators plus `D^r`, `∅`, Skolem pseudo-operators and
//!   user-defined operators; schemas, instances, evaluation, constraints,
//!   mappings, and the plain-text task format.
//! * [`compose`] — the composition algorithm: view unfolding, left compose,
//!   right compose (with Skolemization and deskolemization), the best-effort
//!   COMPOSE driver, the operator registry, and a bounded-model equivalence
//!   checker.
//! * [`evolution`] — the schema-evolution simulator used by the paper's
//!   experiments: Figure 1 primitives, event vectors, the schema-editing and
//!   schema-reconciliation scenarios.
//! * [`corpus`] — the 22-problem literature test suite.
//! * [`analysis`] — the static analyzer over conjunctive mappings: the
//!   position dependency graph, the weak-acyclicity decision with a
//!   polynomial chase budget on the `proven` side and a rendered existential
//!   cycle on the `unknown` side, and the rule linter with stable diagnostic
//!   codes. Surfaced as `mapcomp catalog lint` / `mapcomp client lint` and
//!   consulted automatically for chase budgets; specified in
//!   `docs/ANALYSIS.md`.
//! * [`catalog`] — the persistent catalog layer: a versioned catalog of
//!   named schemas and mappings, multi-hop path resolution over the
//!   composition graph (fewest-hops or cheapest operator-count growth), an
//!   n-ary chain driver with a content-addressed memo cache, and
//!   provenance-tracked invalidation for incremental recomposition when one
//!   link of a chain is edited.
//! * [`service`] — the transport-agnostic service API over the catalog:
//!   typed [`service::Request`]/[`service::Response`] enums with one unified
//!   [`service::ServiceError`] (stable error codes), a hand-rolled
//!   line-oriented wire codec, an in-process backend over the concurrent
//!   shared session with incremental append-only persistence, and a
//!   threaded TCP server + blocking client — the `mapcomp serve` /
//!   `mapcomp client` front ends.
//! * [`telemetry`] — the offline observability substrate: a lock-free
//!   metrics registry (counters, gauges, fixed-bucket histograms) rendered
//!   as Prometheus-style text by [`service::Request::Metrics`], structured
//!   tracing spans with wire-propagated trace IDs, and the structured-log
//!   helpers behind `mapcomp serve --log-format`. Specified in
//!   `docs/OBSERVABILITY.md`.
//!
//! The architecture documentation lives under `docs/`:
//! `docs/ARCHITECTURE.md` (crate map, data flow, concurrency model),
//! `docs/PERSISTENCE.md` (the document + sidecar on-disk grammars,
//! delta log, compaction, crash recovery) and `docs/WIRE_PROTOCOL.md`
//! (the `mapcomp-service 1` frame grammar). The two format specs are
//! executed by `tests/docs_examples.rs`, so they cannot drift from the
//! code.
//!
//! ## Quick start
//!
//! ```
//! use mapping_composition::prelude::*;
//!
//! // Parse a composition task written in the plain-text format.
//! let doc = parse_document(r"
//!     schema sigma1 { R/1; }
//!     schema sigma2 { S/1; }
//!     schema sigma3 { T/1; }
//!     mapping m12 : sigma1 -> sigma2 { R <= S; }
//!     mapping m23 : sigma2 -> sigma3 { S <= T; }
//! ").unwrap();
//! let task = doc.task("m12", "m23").unwrap();
//!
//! // Compose: eliminate the intermediate symbol S.
//! let result = compose(&task, &Registry::standard(), &ComposeConfig::default()).unwrap();
//! assert!(result.is_complete());
//! assert_eq!(result.constraints.to_string().trim(), "R <= T;");
//! ```
//!
//! ## Catalog: multi-hop chains and incremental recomposition
//!
//! The same document can be loaded into a [`catalog`] and composed by schema
//! name; the session memoises every pairwise composition and invalidates
//! exactly the affected cache entries when a mapping is edited:
//!
//! ```
//! use mapping_composition::prelude::*;
//!
//! let doc = parse_document(r"
//!     schema sigma1 { R/1; }
//!     schema sigma2 { S/1; }
//!     schema sigma3 { T/1; }
//!     mapping m12 : sigma1 -> sigma2 { R <= S; }
//!     mapping m23 : sigma2 -> sigma3 { S <= T; }
//! ").unwrap();
//!
//! let mut session = Session::new(Catalog::new());
//! session.ingest_document(&doc).unwrap();
//!
//! // Multi-hop: resolve the path sigma1 → sigma3 and fold it.
//! let cold = session.compose_path("sigma1", "sigma3").unwrap();
//! assert!(cold.is_complete());
//! assert_eq!(cold.compose_calls, 1);
//!
//! // Recomposing is free until a link changes.
//! let warm = session.compose_path("sigma1", "sigma3").unwrap();
//! assert_eq!(warm.compose_calls, 0);
//!
//! // Editing m23 invalidates only compositions that depend on it.
//! session.update_mapping("m23", parse_constraints("project[0](S) <= T").unwrap()).unwrap();
//! let after = session.compose_path("sigma1", "sigma3").unwrap();
//! assert_eq!(after.compose_calls, 1);
//! ```
//!
//! ## Service: the same catalog, local or over TCP
//!
//! The [`service`] layer wraps the catalog in a typed request/response API
//! served identically by an in-process backend and a TCP server — callers
//! hold a [`service::MapcompService`] and cannot tell which:
//!
//! ```
//! use mapping_composition::prelude::*;
//!
//! let backend = LocalService::new(Catalog::new(), 2);
//! let server = Server::bind("127.0.0.1:0").unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! std::thread::scope(|scope| {
//!     scope.spawn(|| server.run(&backend, 2).unwrap());
//!     let client = Client::connect(&addr).unwrap();
//!     client
//!         .call(Request::AddDocument {
//!             text: "schema s1 { R/1; } schema s2 { S/1; }\n\
//!                    mapping m : s1 -> s2 { R <= S; }"
//!                 .into(),
//!         })
//!         .unwrap();
//!     let reply = client
//!         .call(Request::ComposePath { from: "s1".into(), to: "s2".into() })
//!         .unwrap();
//!     let Response::Composed(payload) = reply else { panic!("unexpected reply") };
//!     assert_eq!(payload.path, vec!["m"]);
//!     client.call(Request::Shutdown).unwrap();
//! });
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use mapcomp_algebra as algebra;
pub use mapcomp_analysis as analysis;
pub use mapcomp_catalog as catalog;
pub use mapcomp_compose as compose;
pub use mapcomp_corpus as corpus;
pub use mapcomp_evolution as evolution;
pub use mapcomp_replication as replication;
pub use mapcomp_service as service;
pub use mapcomp_telemetry as telemetry;

/// Convenience re-exports covering the common workflow: parse a task,
/// configure the registry, compose, inspect the result.
pub mod prelude {
    pub use mapcomp_algebra::{
        parse_constraint, parse_constraints, parse_document, parse_expr, Constraint,
        ConstraintKind, ConstraintSet, Expr, Instance, Mapping, OperatorDef, Pred, Relation,
        Signature, Value,
    };
    pub use mapcomp_analysis::{
        analyze_exchange, analyze_mapping, AnalysisReport, Diagnostic, LintCode, Termination,
    };
    pub use mapcomp_catalog::{
        replay_editing, Catalog, CatalogError, ChainOptions, ChainResult, ContentHash, MemoCache,
        PathCost, Session, SessionConfig, SessionStats, SharedCatalog, SharedSession,
        SidecarWriter,
    };
    pub use mapcomp_compose::{
        compose, compose_constraints, eliminate, ComposeConfig, ComposeResult, EliminateStep,
        JoinOrder, Monotonicity, Registry,
    };
    pub use mapcomp_corpus::{problem, problems};
    pub use mapcomp_evolution::{
        run_editing, run_reconciliation, EventVector, PrimitiveKind, PrimitiveOptions,
        ReconcileConfig, ScenarioConfig,
    };
    pub use mapcomp_service::{
        Client, ErrorCode, LocalService, MapcompService, Request, Response, Server, ServiceError,
    };
}
