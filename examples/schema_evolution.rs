//! Schema evolution: drive the simulator through a sequence of edits and
//! compose the running mapping after every edit, as a schema editor would
//! (paper §1.1 and §4.1).
//!
//! Run with `cargo run --example schema_evolution`.

use std::collections::BTreeMap;

use mapping_composition::prelude::*;

fn main() {
    // A 12-relation database schema is edited 40 times; keys are enabled so
    // vertical partitioning is available.
    let config = ScenarioConfig {
        schema_size: 12,
        edits: 40,
        options: PrimitiveOptions::with_keys(),
        event_vector: EventVector::default_vector(),
        compose_config: ComposeConfig::default(),
        seed: 2026,
    };
    let run = run_editing(&config);

    println!("original schema : {} relations", run.original.len());
    println!("evolved schema  : {} relations", run.current.len());
    println!(
        "running mapping : {} constraints, {} operators",
        run.constraints.len(),
        run.constraints.iter().map(Constraint::op_count).sum::<usize>()
    );
    println!("pending symbols : {:?}", run.pending);
    println!("fraction of intermediate symbols eliminated: {:.2}", run.fraction_eliminated());
    println!("total composition time: {:?}", run.compose_time);

    // Per-primitive breakdown, the same view as the paper's Figure 2.
    println!("\nper-primitive elimination success:");
    let success: BTreeMap<PrimitiveKind, (usize, usize)> = run.per_primitive_success();
    for (kind, (eliminated, attempted)) in success {
        println!("  {:>4}: {eliminated}/{attempted}", kind.label());
    }

    // The final mapping relates the original schema to the evolved one; print
    // a few of its constraints.
    println!("\nfirst constraints of the composed mapping:");
    for constraint in run.constraints.iter().take(5) {
        println!("  {constraint}");
    }

    assert!(run.fraction_eliminated() > 0.0);
}
