//! Peer-to-peer data sharing: chain composition across intermediate peers
//! (paper §1.1: "When two peer databases are connected through a sequence of
//! mappings between intermediate peers, these mappings can be composed to
//! relate the peer databases directly"), including a peer whose mapping uses
//! a left outer join and one symbol that cannot be eliminated.
//!
//! Run with `cargo run --example peer_data_sharing`.

use mapping_composition::prelude::*;

fn main() {
    // Four peers; peer1 exports to peer2, peer2 to peer3, peer3 to peer4.
    // The goal is a direct mapping from peer1 to peer4.
    let document = parse_document(
        r"
        schema peer1 { Tracks/3; }                  // Tracks(id, title, artist)
        schema peer2 { Songs/3; Artists/2; }
        schema peer3 { Catalog/4; }
        schema peer4 { Library/3; Plays/2; }

        mapping p12 : peer1 -> peer2 {
            project[0,1](Tracks) <= project[0,1](Songs);
            project[0,2](Tracks) <= Artists;
        }
        mapping p23 : peer2 -> peer3 {
            // The catalog is the outer join of songs with artist info.
            Catalog = ljoin(Songs, Artists);
        }
        ",
    )
    .expect("parses");

    // Compose peer1 -> peer3 first.
    let registry = Registry::standard();
    let first = document.task("p12", "p23").expect("schemas line up");
    let step1 = compose(&first, &registry, &ComposeConfig::default()).expect("composes");
    println!("== peer1 -> peer3 ==");
    print!("{}", step1.constraints);
    println!("eliminated: {:?}, remaining: {:?}\n", step1.eliminated, step1.remaining);

    // Now compose the result with peer3 -> peer4 by hand, using the
    // lower-level driver: the constraints of step 1 plus the third mapping.
    let p34 =
        parse_constraints("project[0,1,2](Catalog) <= Library; project[0,3](Catalog) <= Plays")
            .expect("parses");
    let mut constraints = step1.constraints.clone().into_vec();
    constraints.extend(p34);

    let mut full_signature = step1.signature.clone();
    full_signature.add_relation("Library", 3);
    full_signature.add_relation("Plays", 2);
    // The symbols to eliminate are whatever peer2/peer3 symbols survive plus
    // the peer3 schema itself.
    let mut symbols: Vec<String> = step1.remaining.clone();
    symbols.push("Catalog".to_string());

    let step2 = compose_constraints(
        &full_signature,
        &symbols,
        constraints,
        &registry,
        &ComposeConfig::default(),
    );

    println!("== peer1 -> peer4 (best effort) ==");
    print!("{}", step2.constraints);
    println!("eliminated: {:?}", step2.eliminated);
    println!("remaining : {:?}", step2.remaining);
    println!("\nThe non-eliminated symbols stay in the mapping as auxiliary relations — the");
    println!("best-effort contract of the paper: a usable mapping beats no mapping at all.");

    // The chain must have removed at least the relations fully determined by
    // upstream peers.
    assert!(step2.eliminated.contains(&"Catalog".to_string()));
}
