//! Data integration: compose a GAV-style view definition with a query-like
//! mapping (paper §1.1: "In data integration, a query needs to be composed
//! with a view definition ... view unfolding is simply function composition"),
//! then use the composed mapping to check and migrate data.
//!
//! Run with `cargo run --example data_integration`.

use mapping_composition::prelude::*;

fn main() {
    // Source schema: customer orders in two base tables. The integration view
    // combines them; the application query selects the high-value rows of the
    // view. Composition removes the view layer entirely.
    let document = parse_document(
        r"
        schema source { Customers/2; Orders/3; }       // Customers(cid, name), Orders(oid, cid, amount)
        schema views  { CustOrders/4; }                // CustOrders(cid, name, oid, amount)
        schema report { BigSpenders/2; }               // BigSpenders(cid, name)

        mapping view_def : source -> views {
            // GAV view definition: an equality, so view unfolding applies.
            CustOrders = project[0,1,2,4](select[#0 = #3](Customers * Orders));
        }
        mapping query : views -> report {
            project[0,1](select[#3 >= 1000](CustOrders)) <= BigSpenders;
        }
        ",
    )
    .expect("parses");

    let task = document.task("view_def", "query").expect("schemas line up");
    let registry = Registry::standard();
    let result = compose(&task, &registry, &ComposeConfig::default()).expect("composes");

    println!("== composed source -> report mapping ==");
    print!("{}", result.constraints);
    assert!(result.is_complete(), "the view symbol must be unfolded away");

    // Use the composed mapping as a data validator: does a concrete source
    // + report instance respect it?
    let sig = task.full_signature().expect("disjoint schemas");
    let mut instance = Instance::new();
    instance.insert("Customers", vec![Value::Int(1), Value::str("ada")]);
    instance.insert("Customers", vec![Value::Int(2), Value::str("bob")]);
    instance.insert("Orders", vec![Value::Int(10), Value::Int(1), Value::Int(2500)]);
    instance.insert("Orders", vec![Value::Int(11), Value::Int(2), Value::Int(80)]);
    // Ada spent 2500 >= 1000, so she must appear in the report.
    instance.insert("BigSpenders", vec![Value::Int(1), Value::str("ada")]);

    let ok =
        result.constraints.satisfied_by(&sig, registry.operators(), &instance).expect("evaluates");
    println!("\nconsistent instance accepted: {ok}");
    assert!(ok);

    // Remove the report row: the composed mapping must now reject the pair.
    let mut broken = Instance::new();
    broken.insert("Customers", vec![Value::Int(1), Value::str("ada")]);
    broken.insert("Orders", vec![Value::Int(10), Value::Int(1), Value::Int(2500)]);
    let rejected =
        !result.constraints.satisfied_by(&sig, registry.operators(), &broken).expect("evaluates");
    println!("inconsistent instance rejected: {rejected}");
    assert!(rejected);

    // The composed mapping can also drive data migration: evaluate each
    // left-hand side over the source to obtain the tuples the target is
    // required to contain.
    println!("\nrequired report tuples derived from the source:");
    for constraint in result.constraints.iter() {
        let required = mapping_composition::algebra::eval(
            &constraint.lhs,
            &sig,
            registry.operators(),
            &instance,
        )
        .expect("evaluates");
        println!("  {} -> {}", constraint.rhs, required);
    }

    // Or, more directly, run the data-exchange engine: it chases the composed
    // mapping over the source data and materialises a canonical report
    // instance (inventing labelled nulls where the mapping leaves values
    // unspecified — none are needed here).
    use mapping_composition::compose::{exchange, ExchangeConfig};
    let mut source_only = Instance::new();
    source_only.insert("Customers", vec![Value::Int(1), Value::str("ada")]);
    source_only.insert("Customers", vec![Value::Int(2), Value::str("bob")]);
    source_only.insert("Orders", vec![Value::Int(10), Value::Int(1), Value::Int(2500)]);
    source_only.insert("Orders", vec![Value::Int(11), Value::Int(2), Value::Int(80)]);
    let report_sig = Signature::from_arities([("BigSpenders", 2)]);
    let exchanged = exchange(
        result.constraints.as_slice(),
        &sig,
        &report_sig,
        &source_only,
        &registry,
        &ExchangeConfig::default(),
    );
    println!("\nmaterialised report instance (data exchange):");
    println!("{}", exchanged.target);
    assert!(exchanged.converged);
    assert_eq!(exchanged.target.get("BigSpenders").len(), 1);
}
