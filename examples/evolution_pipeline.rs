//! A multi-version schema-evolution pipeline through the mapping catalog:
//! every edit registers a new schema version and its mapping as a catalog
//! entry, the end-to-end mapping is obtained by composing the chain
//! `v0 → vN` — and when one historical mapping is edited, recomposition is
//! incremental: only the fold steps downstream of the edit are recomputed.
//!
//! Run with `cargo run --example evolution_pipeline`.

use mapping_composition::prelude::*;

fn main() {
    // 1. Replay a 16-edit evolution scenario into a catalog: schemas
    //    v0 … v16, mappings edit1 … edit16, composed incrementally as the
    //    versions are created (one pairwise composition per edit).
    let config =
        ScenarioConfig { schema_size: 8, edits: 16, seed: 2026, ..ScenarioConfig::default() };
    let replay = replay_editing(&config).expect("replay succeeds");
    let mut session = replay.session;

    println!(
        "catalog          : {} schema versions, {} mappings",
        session.catalog().schema_count(),
        session.catalog().mapping_count()
    );
    println!(
        "replay           : {} edits, {} pairwise compositions total",
        replay.edits,
        replay.records.iter().map(|r| r.compose_calls).sum::<usize>()
    );

    let final_version = format!("v{}", replay.edits);
    let end_to_end = session.compose_path("v0", &final_version).expect("chain composes");
    println!(
        "end-to-end       : v0 -> {final_version} via {} links ({} pairwise calls — warm)",
        end_to_end.chain.path.len(),
        end_to_end.compose_calls
    );
    println!("residual symbols : {:?}", end_to_end.chain.residual.names());

    // 2. A designer goes back and amends an *old* mapping in the middle of
    //    the pipeline (here: annotating it with an extra, trivially true
    //    constraint — any real edit works the same way). Provenance-tracked
    //    invalidation drops exactly the cached segments downstream of it.
    let middle = end_to_end.chain.path[end_to_end.chain.path.len() / 2].clone();
    let entry = session.catalog().mapping(&middle).expect("middle mapping exists");
    let some_relation = session
        .catalog()
        .schema(&entry.source)
        .expect("source schema exists")
        .signature
        .names()
        .into_iter()
        .next()
        .expect("non-empty schema");
    let mut edited = entry.constraints.clone();
    edited
        .push(Constraint::containment(Expr::rel(some_relation.clone()), Expr::rel(some_relation)));
    let (version, dropped) = session.update_mapping(&middle, edited).expect("edit applies");
    println!(
        "\nedited           : {middle} (now v{version}); {dropped} cached segments invalidated"
    );

    // 3. Recompose the whole pipeline. The prefix up to the edit is served
    //    from the memo cache; only the suffix is recomposed.
    let recomposed = session.compose_path("v0", &final_version).expect("recompose succeeds");
    println!(
        "recompose        : {} pairwise calls (cold would be {}), plan {:?}",
        recomposed.compose_calls,
        recomposed.chain.path.len() - 1,
        recomposed.plan
    );
    assert!(
        recomposed.compose_calls < recomposed.chain.path.len() - 1,
        "incremental recomposition must beat a cold fold"
    );

    // 4. Catalog-wide accounting.
    let stats = session.stats();
    println!(
        "\nsession stats    : {} compositions, {} cache hits, {} misses, {} entries live",
        stats.compose_calls, stats.cache.hits, stats.cache.misses, stats.cache_entries
    );

    // 5. The whole catalog round-trips through the plain-text document
    //    format (the same format `mapcomp catalog` persists on disk).
    let text = session.catalog().to_document_string();
    let reparsed = parse_document(&text).expect("catalog text re-parses");
    assert_eq!(reparsed.schemas.len(), session.catalog().schema_count());
    println!(
        "round-trip       : catalog renders to {} bytes of document text and re-parses",
        text.len()
    );
}
