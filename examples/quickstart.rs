//! Quickstart: compose the paper's running example (Example 1).
//!
//! A movie database evolves in two steps: first only five-star movies are
//! kept (dropping the genre/theater attributes), then the resulting table is
//! split into `Names` and `Years`. The composition relates the original
//! schema directly to the final one.
//!
//! Run with `cargo run --example quickstart`.

use mapping_composition::prelude::*;

fn main() {
    let document = parse_document(
        r"
        // sigma1: the original schema.
        schema sigma1 { Movies/6; }            // (mid, name, year, rating, genre, theater)
        // sigma2: after the first edit.
        schema sigma2 { FiveStarMovies/3; }    // (mid, name, year)
        // sigma3: after the second edit.
        schema sigma3 { Names/2; Years/2; }

        mapping m12 : sigma1 -> sigma2 {
            project[0,1,2](select[#3 = 5](Movies)) <= FiveStarMovies;
        }
        mapping m23 : sigma2 -> sigma3 {
            project[0,1](FiveStarMovies) <= Names;
            project[0,2](FiveStarMovies) <= Years;
        }
        ",
    )
    .expect("the task parses");
    let task = document.task("m12", "m23").expect("mappings share the intermediate schema");

    println!("== input mapping sigma1 -> sigma2 ==");
    print!("{}", task.sigma12);
    println!("== input mapping sigma2 -> sigma3 ==");
    print!("{}", task.sigma23);

    // Compose with the standard registry (which also knows about outer joins,
    // semijoins, antijoins and transitive closure) and default configuration.
    let registry = Registry::standard();
    let result = compose(&task, &registry, &ComposeConfig::default()).expect("task is well formed");

    println!("\n== composed mapping sigma1 -> sigma3 ==");
    print!("{}", result.constraints);
    println!("\neliminated symbols : {:?}", result.eliminated);
    println!("remaining symbols  : {:?}", result.remaining);
    println!(
        "steps used         : view unfolding / left compose / right compose = {:?}",
        result.stats.eliminations_by_step()
    );
    println!("time               : {:?}", result.stats.total_time);

    // The composed mapping can be checked directly against data: build a tiny
    // instance of sigma1 ∪ sigma3 and test whether it satisfies the result.
    let mut instance = Instance::new();
    instance.insert(
        "Movies",
        vec![
            Value::Int(1),
            Value::str("Heat"),
            Value::Int(1995),
            Value::Int(5),
            Value::Int(0),
            Value::Int(0),
        ],
    );
    instance.insert("Names", vec![Value::Int(1), Value::str("Heat")]);
    instance.insert("Years", vec![Value::Int(1), Value::Int(1995)]);
    let sig = task.full_signature().expect("signatures are disjoint");
    let satisfied = result
        .constraints
        .satisfied_by(&sig, registry.operators(), &instance)
        .expect("constraints evaluate");
    println!("\nsample instance satisfies the composed mapping: {satisfied}");
    assert!(satisfied);
    assert!(result.is_complete());
}
