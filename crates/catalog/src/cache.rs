//! The memo cache: content-addressed pairwise compositions with
//! dependency-tracked invalidation and bounded capacity.
//!
//! Every pairwise composition performed by the chain driver is stored under
//! the key `(left-hash, right-hash, config-hash)`. Because hashes are
//! content hashes, an edited mapping simply never *hits* its old entries —
//! but stale entries would still accumulate without bound, and a catalog
//! serving "what depends on m?" queries needs provenance anyway. So every
//! entry also records the set of catalog mappings it was composed from
//! (its provenance, in the spirit of Grahne & Thomo's annotated rewritings),
//! and [`MemoCache::invalidate`] drops exactly the entries whose provenance
//! mentions an edited mapping, leaving unrelated prefixes warm.
//!
//! Within a long session the cache can also be given a capacity
//! ([`MemoCache::with_capacity`]): once the number of live entries would
//! exceed it, the least-recently-used entry is evicted (and counted in
//! [`CacheStats::evictions`]). Losing an entry costs one recomposition,
//! never correctness.
//!
//! Statistics are cumulative across sidecar persistence and are kept in two
//! parts: a *restored baseline* (the counters carried over from a persisted
//! sidecar) and the *live* counters of this process. [`MemoCache::stats`]
//! reports their sum; [`MemoCache::restore_stats`] replaces the baseline and
//! zeroes the live part, so replaying persisted entries — and trimming them
//! to a smaller capacity — can never double-count events the baseline
//! already includes, no matter how many restore/flush cycles one process
//! performs.
//!
//! For concurrent sessions, [`ShardedMemoCache`] stripes the same structure
//! across per-segment mutexes (segment = hash of the memo key), so parallel
//! workers composing disjoint chains rarely contend; [`ShardedMemoCache::stats`]
//! merges the per-segment counters while holding every segment lock, so the
//! merged snapshot is atomic. The chain driver reaches either shape through
//! the [`ChainCache`] shared-reference trait.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, MutexGuard, PoisonError};

use mapcomp_telemetry::metrics::{global, Counter};

use crate::chain::ComposedChain;
use crate::hash::combine;

/// Key of one memoised pairwise composition.
pub type MemoKey = (u64, u64, u64);

/// One cached pairwise composition plus its provenance.
#[derive(Debug, Clone)]
pub struct MemoEntry {
    /// The composed chain segment.
    pub chain: ComposedChain,
    /// How many times this entry has been served.
    pub hits: u64,
    /// Recency stamp (monotone per cache); larger = more recently used.
    last_used: u64,
}

/// Cache statistics (cumulative; survive sidecar persistence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Entries inserted.
    pub insertions: usize,
    /// Entries dropped by invalidation.
    pub invalidated: usize,
    /// Entries dropped by LRU capacity eviction.
    pub evictions: usize,
}

impl CacheStats {
    /// The element-wise (saturating) sum of two counter sets — the merge
    /// applied across sharded segments and between a restored baseline and
    /// the live counters of this process.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            insertions: self.insertions.saturating_add(other.insertions),
            invalidated: self.invalidated.saturating_add(other.invalidated),
            evictions: self.evictions.saturating_add(other.evictions),
        }
    }

    /// The element-wise (saturating) difference `self - earlier`: the
    /// increments observed since an earlier snapshot of the same counters.
    /// This is what the incremental persistence layer appends as a
    /// `delta stats` record instead of rewriting the absolute totals.
    pub fn delta_since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            invalidated: self.invalidated.saturating_sub(earlier.invalidated),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }

    /// Are all counters zero?
    pub fn is_zero(&self) -> bool {
        *self == CacheStats::default()
    }
}

/// One cache mutation observed since the last [`MemoCache::take_events`]
/// drain. The incremental persistence layer replays these as appended
/// sidecar records (`entry` blocks for insertions, `delta evict` lines for
/// removals) so durability stays proportional to the change. Only the *last*
/// event per key matters to a consumer — the key is either live (persist its
/// current entry) or gone (persist an eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// An entry was inserted (or replaced) under this key.
    Inserted(MemoKey),
    /// The entry under this key was dropped (eviction, invalidation, or an
    /// explicit removal).
    Removed(MemoKey),
}

/// The cache interface of the chain driver, through a shared reference so a
/// cache can be consulted concurrently (or through a [`RefCell`] when single
/// threaded). Implementations may decline to retain an insertion and may
/// drop entries at any time — the driver treats every lookup miss as "pay
/// one pairwise composition", never as an error.
pub trait ChainCache {
    /// Look up a pairwise composition, counting a hit or miss.
    fn cache_lookup(&self, key: MemoKey) -> Option<ComposedChain>;
    /// Probe without touching statistics or recency.
    fn cache_contains(&self, key: &MemoKey) -> bool;
    /// Insert a composed segment under its key.
    fn cache_insert(&self, key: MemoKey, chain: ComposedChain);
}

impl ChainCache for RefCell<MemoCache> {
    fn cache_lookup(&self, key: MemoKey) -> Option<ComposedChain> {
        self.borrow_mut().lookup(key)
    }

    fn cache_contains(&self, key: &MemoKey) -> bool {
        self.borrow().contains(key)
    }

    fn cache_insert(&self, key: MemoKey, chain: ComposedChain) {
        self.borrow_mut().insert(key, chain);
    }
}

/// Content-addressed memo cache with dependency-tracked invalidation and
/// optional LRU capacity.
#[derive(Debug, Clone, Default)]
pub struct MemoCache {
    entries: BTreeMap<MemoKey, MemoEntry>,
    /// Mapping name → keys of entries whose provenance mentions it.
    by_dependency: BTreeMap<String, BTreeSet<MemoKey>>,
    /// Recency stamp → key, for O(log n) LRU eviction.
    recency: BTreeMap<u64, MemoKey>,
    tick: u64,
    capacity: Option<usize>,
    /// Counters of events observed by this cache instance.
    stats: CacheStats,
    /// Baseline carried over from a persisted sidecar (see
    /// [`MemoCache::restore_stats`]); already includes every event the
    /// persisting process observed.
    restored: CacheStats,
    /// Mutation journal for incremental persistence (`None` = disabled, the
    /// default — a cache that is never drained must not grow a log).
    journal: Option<Vec<CacheEvent>>,
}

impl MemoCache {
    /// Create an empty, unbounded cache.
    pub fn new() -> Self {
        MemoCache::default()
    }

    /// Create an empty cache holding at most `capacity` entries (`None` for
    /// unbounded).
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        MemoCache { capacity, ..MemoCache::default() }
    }

    /// The configured capacity, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Change the capacity, evicting least-recently-used entries if the
    /// cache is over the new bound. Returns how many entries were evicted.
    pub fn set_capacity(&mut self, capacity: Option<usize>) -> usize {
        self.capacity = capacity;
        self.enforce_capacity(0)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative statistics: the restored baseline plus everything observed
    /// by this instance.
    pub fn stats(&self) -> CacheStats {
        self.restored.merged(self.stats)
    }

    /// Adopt persisted cumulative counters as the new baseline, zeroing the
    /// live counters. The baseline is *replaced*, not added: the persisted
    /// counters already include every event up to the flush that wrote them
    /// — in particular the insertions counted while replaying the sidecar's
    /// entries into this cache, and any evictions from trimming the replay
    /// to a smaller capacity — so a restore followed by a re-flush in the
    /// same process cannot double-count.
    pub fn restore_stats(&mut self, stats: CacheStats) {
        self.restored = stats;
        self.stats = CacheStats::default();
    }

    /// Start journaling mutations for incremental persistence. Until the
    /// first [`MemoCache::take_events`] drain, events accumulate; a cache
    /// whose owner never drains should leave the journal disabled.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Drain the mutation journal (empty when journaling is disabled).
    /// Events are in mutation order, so the last event per key reflects the
    /// key's current liveness.
    pub fn take_events(&mut self) -> Vec<CacheEvent> {
        match &mut self.journal {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// Put drained events back at the *front* of the journal (they are
    /// older than anything recorded since the drain), so a persister whose
    /// write failed can hand its batch back instead of losing it. No-op
    /// when journaling is disabled.
    pub fn requeue_events(&mut self, events: Vec<CacheEvent>) {
        if let Some(journal) = &mut self.journal {
            journal.splice(0..0, events);
        }
    }

    fn record(&mut self, event: CacheEvent) {
        if let Some(journal) = &mut self.journal {
            journal.push(event);
        }
    }

    fn touch(&mut self, key: MemoKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            self.recency.remove(&entry.last_used);
            entry.last_used = tick;
            self.recency.insert(tick, key);
        }
    }

    /// Evict least-recently-used entries until at most `capacity - headroom`
    /// entries remain; returns how many were evicted.
    fn enforce_capacity(&mut self, headroom: usize) -> usize {
        let Some(capacity) = self.capacity else { return 0 };
        let limit = capacity.saturating_sub(headroom);
        let mut evicted = 0;
        while self.entries.len() > limit {
            let Some((&stamp, &key)) = self.recency.iter().next() else { break };
            self.recency.remove(&stamp);
            if let Some(entry) = self.entries.remove(&key) {
                for dependency in &entry.chain.deps {
                    if let Some(set) = self.by_dependency.get_mut(dependency) {
                        set.remove(&key);
                    }
                }
                self.record(CacheEvent::Removed(key));
                evicted += 1;
            }
        }
        self.stats.evictions += evicted;
        evicted
    }

    /// Look up a pairwise composition; counts a hit or miss and refreshes
    /// the entry's recency.
    pub fn lookup(&mut self, key: MemoKey) -> Option<ComposedChain> {
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.hits += 1;
                self.stats.hits += 1;
                let chain = entry.chain.clone();
                self.touch(key);
                Some(chain)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching statistics (used by the chain driver to measure
    /// how much of a chain is already warm before choosing a fold order).
    pub fn contains(&self, key: &MemoKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Peek at an entry's chain without touching statistics or recency (used
    /// by the incremental persister to render a freshly inserted entry).
    pub fn peek(&self, key: &MemoKey) -> Option<&ComposedChain> {
        self.entries.get(key).map(|entry| &entry.chain)
    }

    /// Drop one entry by key, unindexing its provenance; returns whether it
    /// existed. Used when replaying a persisted `delta evict` record — the
    /// removal is mechanical and counts toward no statistic (the replayed
    /// `stats` records already carry the original eviction counts).
    pub fn remove(&mut self, key: &MemoKey) -> bool {
        let Some(entry) = self.entries.remove(key) else { return false };
        self.recency.remove(&entry.last_used);
        for dependency in &entry.chain.deps {
            if let Some(set) = self.by_dependency.get_mut(dependency) {
                set.remove(key);
            }
        }
        self.record(CacheEvent::Removed(*key));
        true
    }

    /// Insert a composed segment under its key, indexing its provenance.
    /// When the cache is at capacity, the least-recently-used entry is
    /// evicted first.
    pub fn insert(&mut self, key: MemoKey, chain: ComposedChain) {
        if self.capacity == Some(0) {
            return;
        }
        if let Some(previous) = self.entries.remove(&key) {
            self.recency.remove(&previous.last_used);
            for dependency in &previous.chain.deps {
                if let Some(set) = self.by_dependency.get_mut(dependency) {
                    set.remove(&key);
                }
            }
        }
        self.enforce_capacity(1);
        for dependency in &chain.deps {
            self.by_dependency.entry(dependency.clone()).or_default().insert(key);
        }
        self.tick += 1;
        self.recency.insert(self.tick, key);
        self.entries.insert(key, MemoEntry { chain, hits: 0, last_used: self.tick });
        self.stats.insertions += 1;
        self.record(CacheEvent::Inserted(key));
    }

    /// Drop every entry whose provenance mentions `mapping`; returns how many
    /// entries were dropped. Entries not depending on the mapping — e.g. the
    /// prefix of a chain upstream of an edited link — survive.
    pub fn invalidate(&mut self, mapping: &str) -> usize {
        let Some(keys) = self.by_dependency.remove(mapping) else { return 0 };
        let mut dropped = 0;
        for key in keys {
            if let Some(entry) = self.entries.remove(&key) {
                dropped += 1;
                self.recency.remove(&entry.last_used);
                // Unindex from the entry's other dependencies.
                for dependency in &entry.chain.deps {
                    if let Some(set) = self.by_dependency.get_mut(dependency) {
                        set.remove(&key);
                    }
                }
                self.record(CacheEvent::Removed(key));
            }
        }
        self.stats.invalidated += dropped;
        dropped
    }

    /// Entries whose provenance mentions `mapping` (the "what depends on m?"
    /// provenance query).
    pub fn dependents(&self, mapping: &str) -> Vec<&ComposedChain> {
        self.by_dependency
            .get(mapping)
            .map(|keys| {
                keys.iter().filter_map(|key| self.entries.get(key)).map(|e| &e.chain).collect()
            })
            .unwrap_or_default()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        let dropped = self.entries.len();
        if self.journal.is_some() {
            let keys: Vec<MemoKey> = self.entries.keys().copied().collect();
            for key in keys {
                self.record(CacheEvent::Removed(key));
            }
        }
        self.entries.clear();
        self.by_dependency.clear();
        self.recency.clear();
        self.stats.invalidated += dropped;
    }

    /// Iterate over live entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&MemoKey, &MemoEntry)> {
        self.entries.iter()
    }

    /// Iterate over live entries from least- to most-recently used. The
    /// sidecar persists entries in this order so that a restored cache
    /// re-acquires the same eviction order (re-insertion assigns recency
    /// stamps in iteration order).
    pub fn iter_lru(&self) -> impl Iterator<Item = (&MemoKey, &MemoEntry)> {
        self.recency.values().filter_map(move |key| self.entries.get_key_value(key))
    }
}

/// A memo cache striped across independently locked LRU segments, safe to
/// share by reference between concurrent sessions or batch workers.
///
/// Each memo key maps to one segment (by key hash), so two workers touching
/// different chain segments take different locks; a capacity bound is split
/// evenly across segments (each segment evicts its own LRU tail). All
/// methods take `&self`; a poisoned segment (a worker panicked while holding
/// the lock) is recovered rather than propagated — per-entry state is always
/// internally consistent, and losing cache entries only ever costs
/// recomposition.
#[derive(Debug)]
pub struct ShardedMemoCache {
    segments: Vec<Mutex<MemoCache>>,
    /// Baseline adopted at construction (e.g. the stats of the single-thread
    /// cache this was sharded from); segment live counters add onto it.
    baseline: CacheStats,
    /// Per-segment counters on the global metrics registry
    /// (`catalog_cache_*_total{segment="i"}`). Handles are shared across
    /// every sharded cache in the process, so they tally process-wide
    /// traffic per segment index.
    telemetry: Vec<SegmentTelemetry>,
}

/// The hot-path counter handles for one cache segment.
#[derive(Debug)]
struct SegmentTelemetry {
    hits: &'static Counter,
    misses: &'static Counter,
    evictions: &'static Counter,
    invalidated: &'static Counter,
}

impl SegmentTelemetry {
    fn for_segment(index: usize) -> SegmentTelemetry {
        let segment = index.to_string();
        let labels = [("segment", segment.as_str())];
        let registry = global();
        SegmentTelemetry {
            hits: registry.counter(
                "catalog_cache_hits_total",
                "Memo-cache lookups served from cache, per segment.",
                &labels,
            ),
            misses: registry.counter(
                "catalog_cache_misses_total",
                "Memo-cache lookups that found nothing, per segment.",
                &labels,
            ),
            evictions: registry.counter(
                "catalog_cache_evictions_total",
                "Memo-cache entries evicted by the capacity bound, per segment.",
                &labels,
            ),
            invalidated: registry.counter(
                "catalog_cache_invalidated_total",
                "Memo-cache entries dropped by dependency invalidation, per segment.",
                &labels,
            ),
        }
    }
}

fn lock_segment(segment: &Mutex<MemoCache>) -> MutexGuard<'_, MemoCache> {
    segment.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ShardedMemoCache {
    /// An empty sharded cache with `segments` stripes and an optional total
    /// capacity, split evenly across segments.
    pub fn new(segments: usize, capacity: Option<usize>) -> Self {
        let segments = segments.max(1);
        let per_segment = capacity.map(|total| total.div_ceil(segments));
        ShardedMemoCache {
            segments: (0..segments)
                .map(|_| Mutex::new(MemoCache::with_capacity(per_segment)))
                .collect(),
            baseline: CacheStats::default(),
            telemetry: (0..segments).map(SegmentTelemetry::for_segment).collect(),
        }
    }

    /// Shard an existing cache: its entries are distributed across segments
    /// in least-recently-used-first order (so every segment's eviction order
    /// follows the original recency) and its cumulative statistics become
    /// the baseline. The replay insertions are *not* counted on top — the
    /// baseline already includes them.
    pub fn from_cache(cache: MemoCache, segments: usize, capacity: Option<usize>) -> Self {
        let mut sharded = ShardedMemoCache::new(segments, capacity);
        sharded.baseline = cache.stats();
        for (key, entry) in cache.iter_lru() {
            let segment = sharded.segment_of(key);
            let mut guard = lock_segment(&sharded.segments[segment]);
            guard.insert(*key, entry.chain.clone());
        }
        for segment in &sharded.segments {
            lock_segment(segment).restore_stats(CacheStats::default());
        }
        sharded
    }

    fn segment_of(&self, key: &MemoKey) -> usize {
        (combine(&[key.0, key.1, key.2]) % self.segments.len() as u64) as usize
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total number of live entries across segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|segment| lock_segment(segment).len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative statistics: the baseline plus every segment's counters,
    /// summed while *all* segment locks are held so the merge is atomic with
    /// respect to concurrent workers.
    pub fn stats(&self) -> CacheStats {
        let guards: Vec<MutexGuard<'_, MemoCache>> =
            self.segments.iter().map(lock_segment).collect();
        guards.iter().fold(self.baseline, |acc, guard| acc.merged(guard.stats()))
    }

    /// Per-segment snapshots — `(entries, capacity, live stats)` for each
    /// segment in index order. The baseline is *not* folded in (it has no
    /// per-segment attribution); each tuple reflects only traffic since the
    /// sharded cache was constructed. Segments are locked one at a time, so
    /// the snapshot is per-segment-consistent, not globally atomic — fine
    /// for introspection, which is its only caller.
    pub fn segment_snapshots(&self) -> Vec<(usize, Option<usize>, CacheStats)> {
        self.segments
            .iter()
            .map(|segment| {
                let guard = lock_segment(segment);
                (guard.len(), guard.capacity(), guard.stats())
            })
            .collect()
    }

    /// Start journaling mutations on every segment (see
    /// [`MemoCache::enable_journal`]). Call this only when some owner drains
    /// the journal regularly via [`ShardedMemoCache::take_events`].
    pub fn enable_journal(&self) {
        for segment in &self.segments {
            lock_segment(segment).enable_journal();
        }
    }

    /// Drain every segment's mutation journal. A key always maps to the same
    /// segment, so per-key event order is preserved even though events from
    /// different segments interleave arbitrarily — consumers should keep the
    /// *last* event per key.
    pub fn take_events(&self) -> Vec<CacheEvent> {
        let mut events = Vec::new();
        for segment in &self.segments {
            events.append(&mut lock_segment(segment).take_events());
        }
        events
    }

    /// Peek at an entry's chain without touching statistics or recency.
    pub fn peek(&self, key: &MemoKey) -> Option<ComposedChain> {
        lock_segment(&self.segments[self.segment_of(key)]).peek(key).cloned()
    }

    /// Put drained events back (see [`MemoCache::requeue_events`]): each
    /// event returns to the front of its key's segment journal, preserving
    /// per-key order relative to events recorded since the drain.
    pub fn requeue_events(&self, events: Vec<CacheEvent>) {
        let mut by_segment: Vec<Vec<CacheEvent>> = vec![Vec::new(); self.segments.len()];
        for event in events {
            let key = match event {
                CacheEvent::Inserted(key) | CacheEvent::Removed(key) => key,
            };
            by_segment[self.segment_of(&key)].push(event);
        }
        for (segment, batch) in self.segments.iter().zip(by_segment) {
            if !batch.is_empty() {
                lock_segment(segment).requeue_events(batch);
            }
        }
    }

    /// Drop every entry (in any segment) whose provenance mentions
    /// `mapping`; returns how many entries were dropped. Each segment is
    /// invalidated atomically; a concurrent worker may insert a new
    /// dependent entry *after* its segment was swept, which is
    /// indistinguishable from that worker running after the invalidation.
    pub fn invalidate(&self, mapping: &str) -> usize {
        self.segments
            .iter()
            .zip(&self.telemetry)
            .map(|(segment, telemetry)| {
                let dropped = lock_segment(segment).invalidate(mapping);
                telemetry.invalidated.add(dropped as u64);
                dropped
            })
            .sum()
    }

    /// Drop every entry in every segment, under all segment locks at once so
    /// concurrent workers see either the full cache or the empty one.
    /// Returns how many entries were dropped. Statistics count the drops as
    /// invalidations (this *is* a whole-cache invalidation — e.g. a
    /// replication follower discarding memoised chains before adopting a
    /// leader snapshot).
    pub fn clear(&self) -> usize {
        let mut guards: Vec<MutexGuard<'_, MemoCache>> =
            self.segments.iter().map(lock_segment).collect();
        let mut dropped = 0;
        for (guard, telemetry) in guards.iter_mut().zip(&self.telemetry) {
            let in_segment = guard.len();
            guard.clear();
            telemetry.invalidated.add(in_segment as u64);
            dropped += in_segment;
        }
        dropped
    }

    /// Clone-merge every segment into a single-threaded cache (used to
    /// persist a snapshot while workers may still be running). Entries are
    /// merged segment by segment in LRU order; cumulative statistics carry
    /// over exactly.
    pub fn collect(&self) -> MemoCache {
        let mut merged = MemoCache::new();
        let guards: Vec<MutexGuard<'_, MemoCache>> =
            self.segments.iter().map(lock_segment).collect();
        let mut stats = self.baseline;
        for guard in &guards {
            stats = stats.merged(guard.stats());
            for (key, entry) in guard.iter_lru() {
                merged.insert(*key, entry.chain.clone());
            }
        }
        merged.restore_stats(stats);
        merged
    }

    /// Merge the segments back into a single-threaded cache with the given
    /// capacity, consuming the sharded cache. Per-segment recency orders are
    /// preserved within each segment; cumulative statistics carry over
    /// exactly (the merge replays are not re-counted).
    pub fn into_cache(self, capacity: Option<usize>) -> MemoCache {
        let stats = self.stats();
        let mut merged = MemoCache::with_capacity(capacity);
        for segment in &self.segments {
            let guard = lock_segment(segment);
            for (key, entry) in guard.iter_lru() {
                merged.insert(*key, entry.chain.clone());
            }
        }
        merged.restore_stats(stats);
        merged
    }
}

impl ChainCache for ShardedMemoCache {
    fn cache_lookup(&self, key: MemoKey) -> Option<ComposedChain> {
        let segment = self.segment_of(&key);
        let found = lock_segment(&self.segments[segment]).lookup(key);
        let telemetry = &self.telemetry[segment];
        match found {
            Some(_) => telemetry.hits.incr(),
            None => telemetry.misses.incr(),
        }
        found
    }

    fn cache_contains(&self, key: &MemoKey) -> bool {
        lock_segment(&self.segments[self.segment_of(key)]).contains(key)
    }

    fn cache_insert(&self, key: MemoKey, chain: ComposedChain) {
        let segment = self.segment_of(&key);
        let mut guard = lock_segment(&self.segments[segment]);
        let evictions_before = guard.stats().evictions;
        guard.insert(key, chain);
        let evicted = guard.stats().evictions - evictions_before;
        drop(guard);
        self.telemetry[segment].evictions.add(evicted as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{Mapping, Signature};

    fn segment(name: &str, deps: &[&str], hash: u64) -> ComposedChain {
        ComposedChain {
            source: "a".into(),
            target: "b".into(),
            path: vec![name.to_string()],
            mapping: Mapping::default(),
            residual: Signature::new(),
            hash,
            deps: deps.iter().map(std::string::ToString::to_string).collect(),
        }
    }

    #[test]
    fn lookup_hits_and_misses_are_counted() {
        let mut cache = MemoCache::new();
        assert!(cache.lookup((1, 2, 3)).is_none());
        cache.insert((1, 2, 3), segment("m1", &["m1"], 9));
        assert!(cache.lookup((1, 2, 3)).is_some());
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 1, misses: 1, insertions: 1, invalidated: 0, evictions: 0 }
        );
    }

    #[test]
    fn invalidation_drops_exactly_dependents() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1", "m2"], 12));
        cache.insert((12, 3, 0), segment("p2", &["m1", "m2", "m3"], 123));
        cache.insert((7, 8, 0), segment("q", &["k1"], 78));
        assert_eq!(cache.len(), 3);
        // Editing m3 drops only the segment that includes it.
        assert_eq!(cache.invalidate("m3"), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&(1, 2, 0)));
        assert!(cache.contains(&(7, 8, 0)));
        // Editing m1 drops the remaining chain segment but not `q`.
        assert_eq!(cache.invalidate("m1"), 1);
        assert_eq!(cache.len(), 1);
        // Unknown mapping: nothing to drop.
        assert_eq!(cache.invalidate("zzz"), 0);
    }

    #[test]
    fn dependents_reports_provenance() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1", "m2"], 12));
        cache.insert((12, 3, 0), segment("p2", &["m1", "m2", "m3"], 123));
        assert_eq!(cache.dependents("m1").len(), 2);
        assert_eq!(cache.dependents("m3").len(), 1);
        assert!(cache.dependents("nope").is_empty());
    }

    #[test]
    fn clear_counts_as_invalidation() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1"], 12));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = MemoCache::with_capacity(Some(2));
        cache.insert((1, 0, 0), segment("a", &["a"], 1));
        cache.insert((2, 0, 0), segment("b", &["b"], 2));
        // Touch `a` so `b` becomes the LRU entry.
        assert!(cache.lookup((1, 0, 0)).is_some());
        cache.insert((3, 0, 0), segment("c", &["c"], 3));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&(1, 0, 0)));
        assert!(!cache.contains(&(2, 0, 0)), "LRU entry must be evicted");
        assert!(cache.contains(&(3, 0, 0)));
        assert_eq!(cache.stats().evictions, 1);
        // Eviction also unindexes provenance.
        assert!(cache.dependents("b").is_empty());
        // Re-inserting an existing key does not evict anything.
        cache.insert((3, 0, 0), segment("c", &["c"], 3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = MemoCache::with_capacity(Some(0));
        cache.insert((1, 0, 0), segment("a", &["a"], 1));
        assert!(cache.is_empty());
        assert!(cache.lookup((1, 0, 0)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let mut cache = MemoCache::new();
        for i in 0..5u64 {
            cache.insert((i, 0, 0), segment(&format!("m{i}"), &["m"], i));
        }
        assert_eq!(cache.set_capacity(Some(2)), 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 3);
        // The two most recently inserted entries survive.
        assert!(cache.contains(&(3, 0, 0)));
        assert!(cache.contains(&(4, 0, 0)));
    }

    #[test]
    fn restored_stats_accumulate() {
        let mut cache = MemoCache::new();
        cache.restore_stats(CacheStats {
            hits: 10,
            misses: 5,
            insertions: 7,
            invalidated: 2,
            evictions: 1,
        });
        cache.insert((1, 0, 0), segment("a", &["a"], 1));
        assert!(cache.lookup((1, 0, 0)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 11);
        assert_eq!(stats.insertions, 8);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn restore_replaces_the_baseline_instead_of_compounding() {
        // Replaying persisted entries and re-adopting the persisted counters
        // must leave the stats exactly at the persisted values, however many
        // restore cycles happen in one process.
        let persisted =
            CacheStats { hits: 3, misses: 4, insertions: 6, invalidated: 1, evictions: 2 };
        let mut cache = MemoCache::new();
        for round in 0..3 {
            for i in 0..4u64 {
                cache.insert((i, 0, 0), segment(&format!("m{i}"), &["m"], i));
            }
            cache.restore_stats(persisted);
            assert_eq!(cache.stats(), persisted, "round {round}: baseline must not compound");
        }
    }

    #[test]
    fn journal_records_mutations_and_requeue_restores_order() {
        let mut cache = MemoCache::with_capacity(Some(1));
        cache.enable_journal();
        cache.insert((1, 0, 0), segment("a", &["a"], 1));
        cache.insert((2, 0, 0), segment("b", &["b"], 2)); // evicts (1,0,0)
        cache.invalidate("b");
        let drained = cache.take_events();
        assert_eq!(
            drained,
            vec![
                CacheEvent::Inserted((1, 0, 0)),
                CacheEvent::Removed((1, 0, 0)),
                CacheEvent::Inserted((2, 0, 0)),
                CacheEvent::Removed((2, 0, 0)),
            ]
        );
        assert!(cache.take_events().is_empty(), "drain is destructive");
        // A failed persist hands its batch back; newer events stay behind.
        cache.insert((3, 0, 0), segment("c", &["c"], 3));
        cache.requeue_events(drained.clone());
        let mut expected = drained;
        expected.push(CacheEvent::Inserted((3, 0, 0)));
        assert_eq!(cache.take_events(), expected, "requeued events come back first");
    }

    #[test]
    fn sharded_requeue_round_trips_through_segments() {
        let sharded = ShardedMemoCache::new(4, None);
        sharded.enable_journal();
        for i in 0..8u64 {
            sharded.cache_insert((i, 0, 0), segment(&format!("m{i}"), &["m"], i));
        }
        let drained = sharded.take_events();
        assert_eq!(drained.len(), 8);
        sharded.requeue_events(drained);
        assert_eq!(sharded.take_events().len(), 8, "requeued events drain again");
        assert!(sharded.take_events().is_empty());
    }

    #[test]
    fn sharded_cache_round_trips_entries_and_stats() {
        let mut cache = MemoCache::new();
        for i in 0..6u64 {
            cache.insert((i, 0, 0), segment(&format!("m{i}"), &[&format!("m{i}")], i));
        }
        assert!(cache.lookup((0, 0, 0)).is_some());
        let before = cache.stats();
        let sharded = ShardedMemoCache::from_cache(cache, 4, None);
        assert_eq!(sharded.segment_count(), 4);
        assert_eq!(sharded.len(), 6);
        assert_eq!(sharded.stats(), before, "sharding must not re-count replayed insertions");
        // Traffic through the trait surface is counted on top of the baseline.
        assert!(sharded.cache_lookup((0, 0, 0)).is_some());
        assert!(sharded.cache_lookup((99, 0, 0)).is_none());
        assert_eq!(sharded.stats().hits, before.hits + 1);
        assert_eq!(sharded.stats().misses, before.misses + 1);
        let merged = sharded.into_cache(None);
        assert_eq!(merged.len(), 6);
        assert_eq!(merged.stats().hits, before.hits + 1);
        assert!(merged.contains(&(5, 0, 0)));
    }

    #[test]
    fn sharded_invalidation_spans_segments() {
        let sharded = ShardedMemoCache::new(3, None);
        for i in 0..9u64 {
            sharded.cache_insert((i, 0, 0), segment(&format!("p{i}"), &["shared", "other"], i));
        }
        sharded.cache_insert((100, 0, 0), segment("q", &["solo"], 100));
        assert_eq!(sharded.invalidate("shared"), 9, "dependents dropped from every segment");
        assert_eq!(sharded.len(), 1);
        assert_eq!(sharded.stats().invalidated, 9);
        assert!(sharded.cache_contains(&(100, 0, 0)));
    }

    #[test]
    fn sharded_capacity_is_split_across_segments() {
        let sharded = ShardedMemoCache::new(2, Some(4));
        for i in 0..40u64 {
            sharded.cache_insert((i, 0, 0), segment(&format!("m{i}"), &["m"], i));
        }
        assert!(sharded.len() <= 4, "total live entries bounded by the split capacity");
        assert!(sharded.stats().evictions >= 36);
    }

    #[test]
    fn concurrent_segment_traffic_keeps_counters_consistent() {
        let sharded = ShardedMemoCache::new(4, None);
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let key = (worker * 1000 + i, 0, 0);
                        sharded.cache_insert(key, segment(&format!("w{worker}"), &["m"], i));
                        assert!(sharded.cache_lookup(key).is_some());
                    }
                });
            }
        });
        let stats = sharded.stats();
        assert_eq!(stats.insertions, 200);
        assert_eq!(stats.hits, 200);
        assert_eq!(sharded.len(), 200);
    }
}
