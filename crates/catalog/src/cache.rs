//! The memo cache: content-addressed pairwise compositions with
//! dependency-tracked invalidation and bounded capacity.
//!
//! Every pairwise composition performed by the chain driver is stored under
//! the key `(left-hash, right-hash, config-hash)`. Because hashes are
//! content hashes, an edited mapping simply never *hits* its old entries —
//! but stale entries would still accumulate without bound, and a catalog
//! serving "what depends on m?" queries needs provenance anyway. So every
//! entry also records the set of catalog mappings it was composed from
//! (its provenance, in the spirit of Grahne & Thomo's annotated rewritings),
//! and [`MemoCache::invalidate`] drops exactly the entries whose provenance
//! mentions an edited mapping, leaving unrelated prefixes warm.
//!
//! Within a long session the cache can also be given a capacity
//! ([`MemoCache::with_capacity`]): once the number of live entries would
//! exceed it, the least-recently-used entry is evicted (and counted in
//! [`CacheStats::evictions`]). Losing an entry costs one recomposition,
//! never correctness.

use std::collections::{BTreeMap, BTreeSet};

use crate::chain::ComposedChain;

/// Key of one memoised pairwise composition.
pub type MemoKey = (u64, u64, u64);

/// One cached pairwise composition plus its provenance.
#[derive(Debug, Clone)]
pub struct MemoEntry {
    /// The composed chain segment.
    pub chain: ComposedChain,
    /// How many times this entry has been served.
    pub hits: u64,
    /// Recency stamp (monotone per cache); larger = more recently used.
    last_used: u64,
}

/// Cache statistics (cumulative; survive sidecar persistence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Entries inserted.
    pub insertions: usize,
    /// Entries dropped by invalidation.
    pub invalidated: usize,
    /// Entries dropped by LRU capacity eviction.
    pub evictions: usize,
}

/// Content-addressed memo cache with dependency-tracked invalidation and
/// optional LRU capacity.
#[derive(Debug, Clone, Default)]
pub struct MemoCache {
    entries: BTreeMap<MemoKey, MemoEntry>,
    /// Mapping name → keys of entries whose provenance mentions it.
    by_dependency: BTreeMap<String, BTreeSet<MemoKey>>,
    /// Recency stamp → key, for O(log n) LRU eviction.
    recency: BTreeMap<u64, MemoKey>,
    tick: u64,
    capacity: Option<usize>,
    stats: CacheStats,
}

impl MemoCache {
    /// Create an empty, unbounded cache.
    pub fn new() -> Self {
        MemoCache::default()
    }

    /// Create an empty cache holding at most `capacity` entries (`None` for
    /// unbounded).
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        MemoCache { capacity, ..MemoCache::default() }
    }

    /// The configured capacity, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Change the capacity, evicting least-recently-used entries if the
    /// cache is over the new bound. Returns how many entries were evicted.
    pub fn set_capacity(&mut self, capacity: Option<usize>) -> usize {
        self.capacity = capacity;
        self.enforce_capacity(0)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Overwrite the cumulative statistics (used when restoring a persisted
    /// cache, so lifetime counters survive across CLI invocations).
    pub fn restore_stats(&mut self, stats: CacheStats) {
        self.stats = stats;
    }

    fn touch(&mut self, key: MemoKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            self.recency.remove(&entry.last_used);
            entry.last_used = tick;
            self.recency.insert(tick, key);
        }
    }

    /// Evict least-recently-used entries until at most `capacity - headroom`
    /// entries remain; returns how many were evicted.
    fn enforce_capacity(&mut self, headroom: usize) -> usize {
        let Some(capacity) = self.capacity else { return 0 };
        let limit = capacity.saturating_sub(headroom);
        let mut evicted = 0;
        while self.entries.len() > limit {
            let Some((&stamp, &key)) = self.recency.iter().next() else { break };
            self.recency.remove(&stamp);
            if let Some(entry) = self.entries.remove(&key) {
                for dependency in &entry.chain.deps {
                    if let Some(set) = self.by_dependency.get_mut(dependency) {
                        set.remove(&key);
                    }
                }
                evicted += 1;
            }
        }
        self.stats.evictions += evicted;
        evicted
    }

    /// Look up a pairwise composition; counts a hit or miss and refreshes
    /// the entry's recency.
    pub fn lookup(&mut self, key: MemoKey) -> Option<ComposedChain> {
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.hits += 1;
                self.stats.hits += 1;
                let chain = entry.chain.clone();
                self.touch(key);
                Some(chain)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching statistics (used by the chain driver to measure
    /// how much of a chain is already warm before choosing a fold order).
    pub fn contains(&self, key: &MemoKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Insert a composed segment under its key, indexing its provenance.
    /// When the cache is at capacity, the least-recently-used entry is
    /// evicted first.
    pub fn insert(&mut self, key: MemoKey, chain: ComposedChain) {
        if self.capacity == Some(0) {
            return;
        }
        if let Some(previous) = self.entries.remove(&key) {
            self.recency.remove(&previous.last_used);
            for dependency in &previous.chain.deps {
                if let Some(set) = self.by_dependency.get_mut(dependency) {
                    set.remove(&key);
                }
            }
        }
        self.enforce_capacity(1);
        for dependency in &chain.deps {
            self.by_dependency.entry(dependency.clone()).or_default().insert(key);
        }
        self.tick += 1;
        self.recency.insert(self.tick, key);
        self.entries.insert(key, MemoEntry { chain, hits: 0, last_used: self.tick });
        self.stats.insertions += 1;
    }

    /// Drop every entry whose provenance mentions `mapping`; returns how many
    /// entries were dropped. Entries not depending on the mapping — e.g. the
    /// prefix of a chain upstream of an edited link — survive.
    pub fn invalidate(&mut self, mapping: &str) -> usize {
        let Some(keys) = self.by_dependency.remove(mapping) else { return 0 };
        let mut dropped = 0;
        for key in keys {
            if let Some(entry) = self.entries.remove(&key) {
                dropped += 1;
                self.recency.remove(&entry.last_used);
                // Unindex from the entry's other dependencies.
                for dependency in &entry.chain.deps {
                    if let Some(set) = self.by_dependency.get_mut(dependency) {
                        set.remove(&key);
                    }
                }
            }
        }
        self.stats.invalidated += dropped;
        dropped
    }

    /// Entries whose provenance mentions `mapping` (the "what depends on m?"
    /// provenance query).
    pub fn dependents(&self, mapping: &str) -> Vec<&ComposedChain> {
        self.by_dependency
            .get(mapping)
            .map(|keys| {
                keys.iter().filter_map(|key| self.entries.get(key)).map(|e| &e.chain).collect()
            })
            .unwrap_or_default()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        let dropped = self.entries.len();
        self.entries.clear();
        self.by_dependency.clear();
        self.recency.clear();
        self.stats.invalidated += dropped;
    }

    /// Iterate over live entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&MemoKey, &MemoEntry)> {
        self.entries.iter()
    }

    /// Iterate over live entries from least- to most-recently used. The
    /// sidecar persists entries in this order so that a restored cache
    /// re-acquires the same eviction order (re-insertion assigns recency
    /// stamps in iteration order).
    pub fn iter_lru(&self) -> impl Iterator<Item = (&MemoKey, &MemoEntry)> {
        self.recency.values().filter_map(move |key| self.entries.get_key_value(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{Mapping, Signature};

    fn segment(name: &str, deps: &[&str], hash: u64) -> ComposedChain {
        ComposedChain {
            source: "a".into(),
            target: "b".into(),
            path: vec![name.to_string()],
            mapping: Mapping::default(),
            residual: Signature::new(),
            hash,
            deps: deps.iter().map(|d| d.to_string()).collect(),
        }
    }

    #[test]
    fn lookup_hits_and_misses_are_counted() {
        let mut cache = MemoCache::new();
        assert!(cache.lookup((1, 2, 3)).is_none());
        cache.insert((1, 2, 3), segment("m1", &["m1"], 9));
        assert!(cache.lookup((1, 2, 3)).is_some());
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 1, misses: 1, insertions: 1, invalidated: 0, evictions: 0 }
        );
    }

    #[test]
    fn invalidation_drops_exactly_dependents() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1", "m2"], 12));
        cache.insert((12, 3, 0), segment("p2", &["m1", "m2", "m3"], 123));
        cache.insert((7, 8, 0), segment("q", &["k1"], 78));
        assert_eq!(cache.len(), 3);
        // Editing m3 drops only the segment that includes it.
        assert_eq!(cache.invalidate("m3"), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&(1, 2, 0)));
        assert!(cache.contains(&(7, 8, 0)));
        // Editing m1 drops the remaining chain segment but not `q`.
        assert_eq!(cache.invalidate("m1"), 1);
        assert_eq!(cache.len(), 1);
        // Unknown mapping: nothing to drop.
        assert_eq!(cache.invalidate("zzz"), 0);
    }

    #[test]
    fn dependents_reports_provenance() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1", "m2"], 12));
        cache.insert((12, 3, 0), segment("p2", &["m1", "m2", "m3"], 123));
        assert_eq!(cache.dependents("m1").len(), 2);
        assert_eq!(cache.dependents("m3").len(), 1);
        assert!(cache.dependents("nope").is_empty());
    }

    #[test]
    fn clear_counts_as_invalidation() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1"], 12));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = MemoCache::with_capacity(Some(2));
        cache.insert((1, 0, 0), segment("a", &["a"], 1));
        cache.insert((2, 0, 0), segment("b", &["b"], 2));
        // Touch `a` so `b` becomes the LRU entry.
        assert!(cache.lookup((1, 0, 0)).is_some());
        cache.insert((3, 0, 0), segment("c", &["c"], 3));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&(1, 0, 0)));
        assert!(!cache.contains(&(2, 0, 0)), "LRU entry must be evicted");
        assert!(cache.contains(&(3, 0, 0)));
        assert_eq!(cache.stats().evictions, 1);
        // Eviction also unindexes provenance.
        assert!(cache.dependents("b").is_empty());
        // Re-inserting an existing key does not evict anything.
        cache.insert((3, 0, 0), segment("c", &["c"], 3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = MemoCache::with_capacity(Some(0));
        cache.insert((1, 0, 0), segment("a", &["a"], 1));
        assert!(cache.is_empty());
        assert!(cache.lookup((1, 0, 0)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let mut cache = MemoCache::new();
        for i in 0..5u64 {
            cache.insert((i, 0, 0), segment(&format!("m{i}"), &["m"], i));
        }
        assert_eq!(cache.set_capacity(Some(2)), 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 3);
        // The two most recently inserted entries survive.
        assert!(cache.contains(&(3, 0, 0)));
        assert!(cache.contains(&(4, 0, 0)));
    }

    #[test]
    fn restored_stats_accumulate() {
        let mut cache = MemoCache::new();
        cache.restore_stats(CacheStats {
            hits: 10,
            misses: 5,
            insertions: 7,
            invalidated: 2,
            evictions: 1,
        });
        cache.insert((1, 0, 0), segment("a", &["a"], 1));
        assert!(cache.lookup((1, 0, 0)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 11);
        assert_eq!(stats.insertions, 8);
        assert_eq!(stats.evictions, 1);
    }
}
