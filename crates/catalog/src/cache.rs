//! The memo cache: content-addressed pairwise compositions with
//! dependency-tracked invalidation.
//!
//! Every pairwise composition performed by the chain driver is stored under
//! the key `(left-hash, right-hash, config-hash)`. Because hashes are
//! content hashes, an edited mapping simply never *hits* its old entries —
//! but stale entries would still accumulate without bound, and a catalog
//! serving "what depends on m?" queries needs provenance anyway. So every
//! entry also records the set of catalog mappings it was composed from
//! (its provenance, in the spirit of Grahne & Thomo's annotated rewritings),
//! and [`MemoCache::invalidate`] drops exactly the entries whose provenance
//! mentions an edited mapping, leaving unrelated prefixes warm.

use std::collections::{BTreeMap, BTreeSet};

use crate::chain::ComposedChain;

/// Key of one memoised pairwise composition.
pub type MemoKey = (u64, u64, u64);

/// One cached pairwise composition plus its provenance.
#[derive(Debug, Clone)]
pub struct MemoEntry {
    /// The composed chain segment.
    pub chain: ComposedChain,
    /// How many times this entry has been served.
    pub hits: u64,
}

/// Cache statistics (cumulative since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Entries inserted.
    pub insertions: usize,
    /// Entries dropped by invalidation.
    pub invalidated: usize,
}

/// Content-addressed memo cache with dependency-tracked invalidation.
#[derive(Debug, Clone, Default)]
pub struct MemoCache {
    entries: BTreeMap<MemoKey, MemoEntry>,
    /// Mapping name → keys of entries whose provenance mentions it.
    by_dependency: BTreeMap<String, BTreeSet<MemoKey>>,
    stats: CacheStats,
}

impl MemoCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        MemoCache::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up a pairwise composition; counts a hit or miss.
    pub fn lookup(&mut self, key: MemoKey) -> Option<ComposedChain> {
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.hits += 1;
                self.stats.hits += 1;
                Some(entry.chain.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching statistics (used by the chain driver to measure
    /// how much of a chain is already warm before choosing a fold order).
    pub fn contains(&self, key: &MemoKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Insert a composed segment under its key, indexing its provenance.
    pub fn insert(&mut self, key: MemoKey, chain: ComposedChain) {
        for dependency in &chain.deps {
            self.by_dependency.entry(dependency.clone()).or_default().insert(key);
        }
        self.entries.insert(key, MemoEntry { chain, hits: 0 });
        self.stats.insertions += 1;
    }

    /// Drop every entry whose provenance mentions `mapping`; returns how many
    /// entries were dropped. Entries not depending on the mapping — e.g. the
    /// prefix of a chain upstream of an edited link — survive.
    pub fn invalidate(&mut self, mapping: &str) -> usize {
        let Some(keys) = self.by_dependency.remove(mapping) else { return 0 };
        let mut dropped = 0;
        for key in keys {
            if let Some(entry) = self.entries.remove(&key) {
                dropped += 1;
                // Unindex from the entry's other dependencies.
                for dependency in &entry.chain.deps {
                    if let Some(set) = self.by_dependency.get_mut(dependency) {
                        set.remove(&key);
                    }
                }
            }
        }
        self.stats.invalidated += dropped;
        dropped
    }

    /// Entries whose provenance mentions `mapping` (the "what depends on m?"
    /// provenance query).
    pub fn dependents(&self, mapping: &str) -> Vec<&ComposedChain> {
        self.by_dependency
            .get(mapping)
            .map(|keys| {
                keys.iter().filter_map(|key| self.entries.get(key)).map(|e| &e.chain).collect()
            })
            .unwrap_or_default()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        let dropped = self.entries.len();
        self.entries.clear();
        self.by_dependency.clear();
        self.stats.invalidated += dropped;
    }

    /// Iterate over live entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&MemoKey, &MemoEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{Mapping, Signature};

    fn segment(name: &str, deps: &[&str], hash: u64) -> ComposedChain {
        ComposedChain {
            source: "a".into(),
            target: "b".into(),
            path: vec![name.to_string()],
            mapping: Mapping::default(),
            residual: Signature::new(),
            hash,
            deps: deps.iter().map(|d| d.to_string()).collect(),
        }
    }

    #[test]
    fn lookup_hits_and_misses_are_counted() {
        let mut cache = MemoCache::new();
        assert!(cache.lookup((1, 2, 3)).is_none());
        cache.insert((1, 2, 3), segment("m1", &["m1"], 9));
        assert!(cache.lookup((1, 2, 3)).is_some());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, insertions: 1, invalidated: 0 });
    }

    #[test]
    fn invalidation_drops_exactly_dependents() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1", "m2"], 12));
        cache.insert((12, 3, 0), segment("p2", &["m1", "m2", "m3"], 123));
        cache.insert((7, 8, 0), segment("q", &["k1"], 78));
        assert_eq!(cache.len(), 3);
        // Editing m3 drops only the segment that includes it.
        assert_eq!(cache.invalidate("m3"), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&(1, 2, 0)));
        assert!(cache.contains(&(7, 8, 0)));
        // Editing m1 drops the remaining chain segment but not `q`.
        assert_eq!(cache.invalidate("m1"), 1);
        assert_eq!(cache.len(), 1);
        // Unknown mapping: nothing to drop.
        assert_eq!(cache.invalidate("zzz"), 0);
    }

    #[test]
    fn dependents_reports_provenance() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1", "m2"], 12));
        cache.insert((12, 3, 0), segment("p2", &["m1", "m2", "m3"], 123));
        assert_eq!(cache.dependents("m1").len(), 2);
        assert_eq!(cache.dependents("m3").len(), 1);
        assert!(cache.dependents("nope").is_empty());
    }

    #[test]
    fn clear_counts_as_invalidation() {
        let mut cache = MemoCache::new();
        cache.insert((1, 2, 0), segment("p1", &["m1"], 12));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 1);
    }
}
