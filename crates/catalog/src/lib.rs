//! # mapcomp-catalog
//!
//! A persistent mapping catalog and incremental composition-chain engine on
//! top of the pairwise best-effort composition of *"Implementing Mapping
//! Composition"* (VLDB 2006).
//!
//! The paper's headline scenarios — schema evolution and peer data sharing —
//! are about *chains* of mappings `m12 ∘ m23 ∘ … ∘ m(n-1)n` that get
//! re-composed every time one link changes. This crate provides the service
//! layer those scenarios need:
//!
//! * [`store`] — a versioned [`Catalog`] of named schemas and mappings with
//!   content hashing; round-trips through the plain-text document format.
//! * [`graph`] — the composition graph (schemas = nodes, mappings = directed
//!   edges) with deterministic fewest-hops path resolution, so callers ask
//!   "compose σ1 → σ5" by name.
//! * [`chain`] — the n-ary chain driver folding a path through pairwise
//!   `compose()`, choosing the fold association that reuses the most
//!   memoised partial results, and carrying uneliminated symbols along as
//!   residuals that later steps retry.
//! * [`cache`] — the content-addressed memo cache keyed by
//!   `(left-hash, right-hash, config-hash)`, with provenance-tracked
//!   invalidation: editing one mapping drops exactly the cached segments
//!   that depend on it.
//! * [`session`] — the batch/session API tying the pieces together, with the
//!   instrumented pairwise-composition counter.
//! * [`replay`] — the schema-evolution simulator hooked into the catalog:
//!   the Figure-2-style editing scenario re-expressed as incremental
//!   recomposition (one pairwise composition per edit, not a full re-fold).
//! * [`shared`] — concurrent sessions over one catalog: the lock-striped
//!   [`SharedCatalog`] and the [`SharedSession`] parallel batch API.
//!
//! An architecture overview of the whole workspace (crate map, data flow,
//! diagrams) lives in `docs/ARCHITECTURE.md`; the complete on-disk grammar
//! of the document + sidecar formats — including the incremental
//! `delta …` records appended by the service layer — is specified in
//! `docs/PERSISTENCE.md` and kept in lockstep with [`persist`] by
//! `tests/docs_examples.rs`.
//!
//! ## Concurrency model
//!
//! Concurrent sessions share three structures, each with its own locking
//! discipline (details in the [`shared`] module docs):
//!
//! * the **store** is striped into `RwLock` shards keyed by the content hash
//!   of the entry name — the compose read path (path resolution, chain
//!   materialisation) takes only read locks and never serialises readers;
//!   multi-shard writers acquire locks in ascending shard order, so
//!   deadlock is impossible;
//! * the **memo cache** is striped into per-segment mutex-guarded LRU
//!   segments keyed by memo-key hash ([`cache::ShardedMemoCache`]), with
//!   cumulative statistics merged atomically across segments;
//! * the **sidecar** is written by a single-writer append protocol with a
//!   mutex-guarded flush ([`persist::SidecarWriter`]); readers never block,
//!   and the last-wins line grammar — snapshot lines plus incremental
//!   [`persist::DeltaRecord`] lines replayed in file order — makes appended
//!   updates supersede older ones without rewriting the file.
//!
//! ## Quick start
//!
//! ```
//! use mapcomp_algebra::{parse_constraints, Signature};
//! use mapcomp_catalog::{Catalog, Session};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_schema("s1", Signature::from_arities([("R", 1)]));
//! catalog.add_schema("s2", Signature::from_arities([("S", 1)]));
//! catalog.add_schema("s3", Signature::from_arities([("T", 1)]));
//! catalog.add_mapping("m12", "s1", "s2", parse_constraints("R <= S").unwrap()).unwrap();
//! catalog.add_mapping("m23", "s2", "s3", parse_constraints("S <= T").unwrap()).unwrap();
//!
//! let mut session = Session::new(catalog);
//! let result = session.compose_path("s1", "s3").unwrap();
//! assert!(result.is_complete());
//! assert_eq!(result.compose_calls, 1);
//! assert_eq!(result.chain.mapping.constraints.to_string().trim(), "R <= T;");
//!
//! // Composing again is free: the segment is memoised.
//! let warm = session.compose_path("s1", "s3").unwrap();
//! assert_eq!(warm.compose_calls, 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod chain;
pub mod error;
pub mod graph;
pub mod hash;
pub mod lock;
pub mod persist;
pub mod replay;
pub mod session;
pub mod shared;
pub mod store;

pub use cache::{
    CacheEvent, CacheStats, ChainCache, MemoCache, MemoEntry, MemoKey, ShardedMemoCache,
};
pub use chain::{
    compose_chain, compose_chain_with, compose_pair, ChainOptions, ChainResult, ComposedChain,
    LinkSource,
};
pub use error::CatalogError;
pub use graph::{
    edge_cost, reachable, resolve_path, resolve_path_costed_in, resolve_path_in, resolve_path_with,
    PathCost,
};
pub use hash::{hash_config, hash_mapping, hash_signature, ContentHash};
pub use lock::{pid_alive, FileLock, FileLockGuard};
pub use persist::{
    escape_field, load_cache, load_sidecar, load_state, load_versions, parse_chain_document,
    parse_delta, parse_positioned_delta, render_cache_entry, render_chain_document, render_delta,
    render_generation_marker, render_mapping_decl, render_migration_snapshot,
    render_positioned_delta, render_schema_decl, save_cache, save_state, save_versions,
    strip_torn_tail, unescape_field, DeltaRecord, Position, SidecarState, SidecarWriter,
    VersionManifest,
};
pub use replay::{replay_editing, CatalogReplay, ReplayRecord};
pub use session::{analysis_counts, render_analysis_text, Session, SessionConfig, SessionStats};
pub use shared::{SharedCatalog, SharedSession};
pub use store::{Catalog, MappingEntry, SchemaEntry};
