//! Plain-text persistence of the memo cache.
//!
//! The catalog itself round-trips through the document format
//! ([`crate::store::Catalog::to_document_string`]); this module does the same
//! for the memo cache so a command-line session can keep its warm segments
//! across invocations. Each entry is a small header (the memo key, the
//! segment hash, endpoints, path, provenance) followed by an embedded
//! document holding the composed mapping and the residual signature:
//!
//! ```text
//! entry <left> <right> <config> <hash>
//! endpoints <source> -> <target>
//! path <m1> <m2> …
//! deps <m1> <m2> …
//! begin-document
//! schema __in { … }
//! schema __out { … }
//! schema __residual { … }
//! mapping __seg : __in -> __out { … }
//! end-document
//! ```
//!
//! Unknown or corrupted entries are skipped on load (a memo cache is only an
//! accelerator; losing an entry costs one recomposition, never correctness).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use mapcomp_algebra::{parse_document, Mapping, Signature};

use crate::cache::MemoCache;
use crate::chain::ComposedChain;

fn write_schema(out: &mut String, name: &str, sig: &Signature) {
    let _ = write!(out, "schema {name} {{ ");
    for (rel, info) in sig.iter() {
        let _ = write!(out, "{rel}/{}", info.arity);
        if let Some(key) = &info.key {
            let cols: Vec<String> = key.iter().map(usize::to_string).collect();
            let _ = write!(out, " key({})", cols.join(","));
        }
        let _ = write!(out, "; ");
    }
    let _ = writeln!(out, "}}");
}

/// Render the cache in the sidecar format.
pub fn save_cache(cache: &MemoCache) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// mapcomp memo cache: {} entries", cache.len());
    for ((left, right, config), entry) in cache.iter() {
        let chain = &entry.chain;
        let _ = writeln!(out, "entry {left:016x} {right:016x} {config:016x} {:016x}", chain.hash);
        let _ = writeln!(out, "endpoints {} -> {}", chain.source, chain.target);
        let _ = writeln!(out, "path {}", chain.path.join(" "));
        let deps: Vec<&str> = chain.deps.iter().map(String::as_str).collect();
        let _ = writeln!(out, "deps {}", deps.join(" "));
        let _ = writeln!(out, "begin-document");
        write_schema(&mut out, "__in", &chain.mapping.input);
        write_schema(&mut out, "__out", &chain.mapping.output);
        write_schema(&mut out, "__residual", &chain.residual);
        let _ = writeln!(out, "mapping __seg : __in -> __out {{");
        for constraint in chain.mapping.constraints.iter() {
            let _ = writeln!(out, "    {constraint};");
        }
        let _ = writeln!(out, "}}");
        let _ = writeln!(out, "end-document");
    }
    out
}

/// Parse a sidecar rendering back into a cache. Malformed entries are
/// silently dropped; the count of restored entries is implicit in the
/// result's `len()`.
pub fn load_cache(text: &str) -> MemoCache {
    let mut cache = MemoCache::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("entry ") else { continue };
        let mut key_parts = rest.split_whitespace();
        let (Some(left), Some(right), Some(config), Some(hash)) = (
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
        ) else {
            continue;
        };

        let mut source = None;
        let mut target = None;
        let mut path: Vec<String> = Vec::new();
        let mut deps: BTreeSet<String> = BTreeSet::new();
        let mut document_text = String::new();
        let mut in_document = false;
        let mut complete = false;
        for line in lines.by_ref() {
            let trimmed = line.trim();
            if trimmed == "begin-document" {
                in_document = true;
            } else if trimmed == "end-document" {
                complete = true;
                break;
            } else if in_document {
                document_text.push_str(line);
                document_text.push('\n');
            } else if let Some(rest) = trimmed.strip_prefix("endpoints ") {
                let mut ends = rest.split(" -> ");
                source = ends.next().map(str::to_string);
                target = ends.next().map(str::to_string);
            } else if let Some(rest) = trimmed.strip_prefix("path ") {
                path = rest.split_whitespace().map(str::to_string).collect();
            } else if let Some(rest) = trimmed.strip_prefix("deps ") {
                deps = rest.split_whitespace().map(str::to_string).collect();
            }
        }
        let (Some(source), Some(target)) = (source, target) else { continue };
        if !complete {
            continue;
        }
        let Ok(document) = parse_document(&document_text) else { continue };
        let (Ok(input), Ok(output), Ok(residual)) =
            (document.schema("__in"), document.schema("__out"), document.schema("__residual"))
        else {
            continue;
        };
        let Some((_, _, constraints)) = document.mappings.get("__seg") else { continue };
        let chain = ComposedChain {
            source,
            target,
            path,
            mapping: Mapping::new(input.clone(), output.clone(), constraints.clone()),
            residual: residual.clone(),
            hash,
            deps,
        };
        cache.insert((left, right, config), chain);
    }
    cache
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::store::Catalog;
    use mapcomp_algebra::parse_constraints;

    fn warm_session() -> Session {
        let mut catalog = Catalog::new();
        for i in 0..4 {
            catalog.add_schema(format!("s{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..3 {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("s{i}"),
                    &format!("s{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        let mut session = Session::new(catalog);
        session.compose_path("s0", "s3").unwrap();
        session
    }

    #[test]
    fn cache_round_trips_through_the_sidecar_format() {
        let session = warm_session();
        let rendered = save_cache(session.cache());
        let restored = load_cache(&rendered);
        assert_eq!(restored.len(), session.cache().len());
        for (key, entry) in session.cache().iter() {
            let loaded = restored
                .dependents(entry.chain.deps.iter().next().unwrap())
                .into_iter()
                .find(|c| c.hash == entry.chain.hash)
                .expect("entry restored");
            assert_eq!(loaded.path, entry.chain.path);
            assert_eq!(loaded.source, entry.chain.source);
            assert_eq!(
                loaded.mapping.constraints.to_string(),
                entry.chain.mapping.constraints.to_string()
            );
            assert!(restored.contains(key));
        }
    }

    #[test]
    fn restored_cache_serves_hits() {
        let session = warm_session();
        let calls_cold = session.stats().compose_calls;
        assert!(calls_cold > 0);
        let rendered = save_cache(session.cache());

        // A brand-new session over the same catalog, warmed from the sidecar.
        let catalog = session.catalog().clone();
        let mut fresh = Session::new(catalog);
        fresh.restore_cache(load_cache(&rendered));
        let result = fresh.compose_path("s0", "s3").unwrap();
        assert_eq!(result.compose_calls, 0, "sidecar-restored cache must serve the chain");
    }

    #[test]
    fn malformed_entries_are_skipped() {
        let restored = load_cache("entry zzzz\ngarbage\nentry 1 2 3\n");
        assert!(restored.is_empty());
        let restored = load_cache("");
        assert!(restored.is_empty());
    }
}
