//! Plain-text persistence of the sidecar session state: the memo cache,
//! cumulative cache statistics, and catalog version counters.
//!
//! The catalog itself round-trips through the document format
//! ([`crate::store::Catalog::to_document_string`]); that format carries
//! *content* only. Everything else a command-line session wants to keep
//! across invocations lives in the sidecar rendered here:
//!
//! * **Versions** — `version schema <name> <v> <hash>` and
//!   `version mapping <name> <v> <v:hash> …` lines record each entry's
//!   version counter and hash history, so versions no longer reset per CLI
//!   invocation ([`Catalog::restore_versions`] re-applies them, advancing
//!   the counter when the on-disk content was edited out of session).
//! * **Statistics** — one `stats …` line with the cumulative
//!   [`crate::cache::CacheStats`] counters (hits, misses, insertions,
//!   invalidations, evictions).
//! * **Memo entries** — a small header (the memo key, the segment hash,
//!   endpoints, path, provenance) followed by an embedded document holding
//!   the composed mapping and the residual signature:
//!
//! ```text
//! entry <left> <right> <config> <hash>
//! endpoints <source> -> <target>
//! path <m1> <m2> …
//! deps <m1> <m2> …
//! begin-document
//! schema __in { … }
//! schema __out { … }
//! schema __residual { … }
//! mapping __seg : __in -> __out { … }
//! end-document
//! ```
//!
//! Unknown or corrupted lines are skipped on load (the sidecar is only an
//! accelerator plus bookkeeping; losing an entry costs one recomposition,
//! never correctness).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use mapcomp_algebra::{parse_document, Mapping, Signature};

use crate::cache::{CacheStats, MemoCache};
use crate::chain::ComposedChain;
use crate::lock::FileLock;
use crate::store::Catalog;

/// How long a sidecar write waits for the cross-process `.lock` file before
/// giving up. Writers hold the lock for one append or rewrite only, so a
/// live contender releases it in milliseconds; a dead one is broken by the
/// PID-liveness probe on the first retry.
const LOCK_TIMEOUT: Duration = Duration::from_secs(5);

/// Persisted version counters and hash history for catalog entries,
/// decoupled from the content-only document format.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionManifest {
    /// Schema name → (version, content hash at that version).
    pub schemas: BTreeMap<String, (u64, u64)>,
    /// Mapping name → (version, hash history oldest-first).
    pub mappings: BTreeMap<String, (u64, Vec<(u64, u64)>)>,
}

impl VersionManifest {
    /// Capture the current versions and history of a catalog.
    pub fn of(catalog: &Catalog) -> Self {
        let mut manifest = VersionManifest::default();
        for entry in catalog.schemas() {
            manifest.schemas.insert(entry.name.clone(), (entry.version, entry.hash.0));
        }
        for entry in catalog.mappings() {
            let history = entry.history.iter().map(|&(v, h)| (v, h.0)).collect();
            manifest.mappings.insert(entry.name.clone(), (entry.version, history));
        }
        manifest
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty() && self.mappings.is_empty()
    }

    /// Capture a single mapping entry (e.g. for appending one writer's
    /// update to a shared sidecar without rendering the whole catalog).
    pub fn of_mapping(entry: &crate::store::MappingEntry) -> Self {
        let mut manifest = VersionManifest::default();
        let history = entry.history.iter().map(|&(v, h)| (v, h.0)).collect();
        manifest.mappings.insert(entry.name.clone(), (entry.version, history));
        manifest
    }

    /// Render the manifest as sidecar `version …` lines. Loading keeps the
    /// *last* line per entry, so appending a newer rendering supersedes
    /// older ones without rewriting the file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, (version, hash)) in &self.schemas {
            let _ = writeln!(out, "version schema {name} {version} {hash:016x}");
        }
        for (name, (version, history)) in &self.mappings {
            let rendered: Vec<String> =
                history.iter().map(|(v, h)| format!("{v}:{h:016x}")).collect();
            let _ = writeln!(out, "version mapping {name} {version} {}", rendered.join(" "));
        }
        out
    }
}

/// Render the version manifest of a catalog as sidecar lines.
pub fn save_versions(catalog: &Catalog) -> String {
    VersionManifest::of(catalog).render()
}

/// Parse `version …` lines out of a sidecar rendering; malformed lines are
/// skipped.
pub fn load_versions(text: &str) -> VersionManifest {
    let mut manifest = VersionManifest::default();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("version ") else { continue };
        let mut parts = rest.split_whitespace();
        let (Some(kind), Some(name), Some(version)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(version) = version.parse::<u64>() else { continue };
        match kind {
            "schema" => {
                let Some(hash) = parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()) else {
                    continue;
                };
                manifest.schemas.insert(name.to_string(), (version, hash));
            }
            "mapping" => {
                let mut history = Vec::new();
                let mut valid = true;
                for part in parts {
                    let Some((v, h)) = part.split_once(':') else {
                        valid = false;
                        break;
                    };
                    let (Ok(v), Ok(h)) = (v.parse::<u64>(), u64::from_str_radix(h, 16)) else {
                        valid = false;
                        break;
                    };
                    history.push((v, h));
                }
                if valid && !history.is_empty() {
                    manifest.mappings.insert(name.to_string(), (version, history));
                }
            }
            _ => {}
        }
    }
    manifest
}

/// Render the whole sidecar: versions, statistics, memo entries.
pub fn save_state(catalog: &Catalog, cache: &MemoCache) -> String {
    let mut out = save_versions(catalog);
    out.push_str(&save_cache(cache));
    out
}

/// Parse a sidecar into its version manifest and cache (with restored
/// statistics). Apply the manifest via [`Catalog::restore_versions`].
pub fn load_state(text: &str) -> (VersionManifest, MemoCache) {
    (load_versions(text), load_cache(text))
}

/// Render a composed chain's *content* as a self-contained embeddable
/// document: the `__in`/`__out`/`__residual` schemas plus the `__seg`
/// mapping. This is the exact byte format the sidecar embeds per memo entry,
/// reused by the service layer's wire payloads so a chain composed remotely
/// renders identically to one composed in process.
pub fn render_chain_document(chain: &ComposedChain) -> String {
    let mut out = String::new();
    write_schema(&mut out, "__in", &chain.mapping.input);
    write_schema(&mut out, "__out", &chain.mapping.output);
    write_schema(&mut out, "__residual", &chain.residual);
    let _ = writeln!(out, "mapping __seg : __in -> __out {{");
    for constraint in chain.mapping.constraints.iter() {
        let _ = writeln!(out, "    {constraint};");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Parse a [`render_chain_document`] rendering back into the composed
/// mapping and the residual signature. Returns `None` for malformed text.
pub fn parse_chain_document(text: &str) -> Option<(Mapping, Signature)> {
    let document = parse_document(text).ok()?;
    let input = document.schema("__in").ok()?;
    let output = document.schema("__out").ok()?;
    let residual = document.schema("__residual").ok()?;
    let (_, _, constraints) = document.mappings.get("__seg")?;
    Some((Mapping::new(input.clone(), output.clone(), constraints.clone()), residual.clone()))
}

fn write_schema(out: &mut String, name: &str, sig: &Signature) {
    let _ = write!(out, "schema {name} {{ ");
    for (rel, info) in sig.iter() {
        let _ = write!(out, "{rel}/{}", info.arity);
        if let Some(key) = &info.key {
            let cols: Vec<String> = key.iter().map(usize::to_string).collect();
            let _ = write!(out, " key({})", cols.join(","));
        }
        let _ = write!(out, "; ");
    }
    let _ = writeln!(out, "}}");
}

/// Render the cache in the sidecar format.
pub fn save_cache(cache: &MemoCache) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// mapcomp memo cache: {} entries", cache.len());
    let stats = cache.stats();
    let _ = writeln!(
        out,
        "stats {} {} {} {} {}",
        stats.hits, stats.misses, stats.insertions, stats.invalidated, stats.evictions
    );
    // Least-recently-used first, so a capacity-bounded session restoring
    // this sidecar evicts in the same order the saving session would have.
    for ((left, right, config), entry) in cache.iter_lru() {
        let chain = &entry.chain;
        let _ = writeln!(out, "entry {left:016x} {right:016x} {config:016x} {:016x}", chain.hash);
        let _ = writeln!(out, "endpoints {} -> {}", chain.source, chain.target);
        let _ = writeln!(out, "path {}", chain.path.join(" "));
        let deps: Vec<&str> = chain.deps.iter().map(String::as_str).collect();
        let _ = writeln!(out, "deps {}", deps.join(" "));
        let _ = writeln!(out, "begin-document");
        out.push_str(&render_chain_document(chain));
        let _ = writeln!(out, "end-document");
    }
    out
}

/// Parse a sidecar rendering back into a cache. Malformed entries are
/// silently dropped; the count of restored entries is implicit in the
/// result's `len()`.
pub fn load_cache(text: &str) -> MemoCache {
    let mut cache = MemoCache::new();
    let mut persisted_stats: Option<CacheStats> = None;
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("stats ") {
            // Strict parse: any malformed token rejects the whole line
            // (skipping a corrupt token would shift the remaining numbers
            // into the wrong counters).
            let numbers: Result<Vec<usize>, _> = rest.split_whitespace().map(str::parse).collect();
            if let Ok([hits, misses, insertions, invalidated, evictions]) = numbers.as_deref() {
                persisted_stats = Some(CacheStats {
                    hits: *hits,
                    misses: *misses,
                    insertions: *insertions,
                    invalidated: *invalidated,
                    evictions: *evictions,
                });
            }
            continue;
        }
        let Some(rest) = line.strip_prefix("entry ") else { continue };
        let mut key_parts = rest.split_whitespace();
        let (Some(left), Some(right), Some(config), Some(hash)) = (
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
        ) else {
            continue;
        };

        let mut source = None;
        let mut target = None;
        let mut path: Vec<String> = Vec::new();
        let mut deps: BTreeSet<String> = BTreeSet::new();
        let mut document_text = String::new();
        let mut in_document = false;
        let mut complete = false;
        for line in lines.by_ref() {
            let trimmed = line.trim();
            if trimmed == "begin-document" {
                in_document = true;
            } else if trimmed == "end-document" {
                complete = true;
                break;
            } else if in_document {
                document_text.push_str(line);
                document_text.push('\n');
            } else if let Some(rest) = trimmed.strip_prefix("endpoints ") {
                let mut ends = rest.split(" -> ");
                source = ends.next().map(str::to_string);
                target = ends.next().map(str::to_string);
            } else if let Some(rest) = trimmed.strip_prefix("path ") {
                path = rest.split_whitespace().map(str::to_string).collect();
            } else if let Some(rest) = trimmed.strip_prefix("deps ") {
                deps = rest.split_whitespace().map(str::to_string).collect();
            }
        }
        let (Some(source), Some(target)) = (source, target) else { continue };
        if !complete {
            continue;
        }
        let Some((mapping, residual)) = parse_chain_document(&document_text) else { continue };
        let chain = ComposedChain { source, target, path, mapping, residual, hash, deps };
        cache.insert((left, right, config), chain);
    }
    // The persisted counters already include the insertions replayed above;
    // restoring last keeps them cumulative rather than double-counted.
    if let Some(stats) = persisted_stats {
        cache.restore_stats(stats);
    }
    cache
}

/// Single-writer sidecar file shared by concurrent sessions — in one
/// process and across processes.
///
/// All writes are serialised twice over: by an internal mutex (threads of
/// this process) and by an advisory cross-process [`FileLock`] on the
/// sibling `<sidecar>.lock` file (other CLI invocations or servers; stale
/// locks from dead holders are broken by a PID-liveness probe). Readers
/// never take either — they read the file directly, which is safe because
/// the file only ever changes by appending whole writes
/// ([`SidecarWriter::append`]) or by an atomic rename
/// ([`SidecarWriter::rewrite`]). The sidecar grammar is last-wins per entry
/// (later `version`/`stats`/`entry` lines supersede earlier ones on load)
/// and loaders skip malformed lines, so even a reader racing an in-flight
/// append sees a consistent prefix.
///
/// Appends accumulate; call [`SidecarWriter::rewrite`] with a full
/// [`save_state`] rendering to compact the file (typically once, at session
/// end).
#[derive(Debug)]
pub struct SidecarWriter {
    path: PathBuf,
    guard: Mutex<()>,
    lock: FileLock,
}

impl SidecarWriter {
    /// A writer for the sidecar at `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let path: PathBuf = path.into();
        let lock = FileLock::for_file(&path);
        SidecarWriter { path, guard: Mutex::new(()), lock }
    }

    /// The sidecar path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a chunk of sidecar lines and flush, under the writer mutex and
    /// the cross-process lock file. Concurrent appenders are serialised, so
    /// no writer's lines can be torn or lost; within one append the chunk
    /// lands contiguously.
    pub fn append(&self, lines: &str) -> std::io::Result<()> {
        let _guard = self.guard.lock().unwrap_or_else(PoisonError::into_inner);
        let _file_lock = self.lock.acquire(LOCK_TIMEOUT)?;
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        let mut chunk = lines.to_string();
        if !chunk.ends_with('\n') {
            chunk.push('\n');
        }
        file.write_all(chunk.as_bytes())?;
        file.flush()
    }

    /// Replace the whole sidecar with `content` atomically: the new content
    /// is written to a temporary sibling and renamed over the file (under
    /// the writer mutex and the cross-process lock file), so a concurrent
    /// reader sees either the old or the new sidecar, never a mixture.
    pub fn rewrite(&self, content: &str) -> std::io::Result<()> {
        let _guard = self.guard.lock().unwrap_or_else(PoisonError::into_inner);
        let _file_lock = self.lock.acquire(LOCK_TIMEOUT)?;
        self.rename_over(&self.path, content)
    }

    /// Atomically replace both the catalog document at `document_path` and
    /// the sidecar in one critical section: the writer mutex and the
    /// cross-process lock are held across `render` *and* both tmp-write +
    /// rename pairs. Taking the state snapshot inside the critical section
    /// (the `render` closure) is what makes snapshot order equal write
    /// order — without it, a writer holding an older snapshot could clobber
    /// a newer, already-acknowledged state — and holding the lock across
    /// both renames means a concurrent writer cannot interleave (one
    /// writer's document paired with another's sidecar) and a lock-free
    /// reader never sees a truncated file.
    pub fn rewrite_with_document(
        &self,
        document_path: &Path,
        render: impl FnOnce() -> (String, String),
    ) -> std::io::Result<()> {
        let _guard = self.guard.lock().unwrap_or_else(PoisonError::into_inner);
        let _file_lock = self.lock.acquire(LOCK_TIMEOUT)?;
        let (document, sidecar) = render();
        self.rename_over(document_path, &document)?;
        self.rename_over(&self.path, &sidecar)
    }

    /// Write `content` to a `.tmp` sibling of `target` and rename it over
    /// `target`. Callers hold the writer mutex and the file lock.
    fn rename_over(&self, target: &Path, content: &str) -> std::io::Result<()> {
        let mut name = target.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        let tmp = target.with_file_name(name);
        std::fs::write(&tmp, content)?;
        std::fs::rename(&tmp, target)
    }

    /// Read the sidecar into a version manifest and cache (the counterpart
    /// of [`load_state`]); a missing file is an empty sidecar.
    pub fn load(&self) -> (VersionManifest, MemoCache) {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => load_state(&text),
            Err(_) => (VersionManifest::default(), MemoCache::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::store::Catalog;
    use mapcomp_algebra::parse_constraints;

    fn warm_session() -> Session {
        let mut catalog = Catalog::new();
        for i in 0..4 {
            catalog.add_schema(format!("s{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..3 {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("s{i}"),
                    &format!("s{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        let mut session = Session::new(catalog);
        session.compose_path("s0", "s3").unwrap();
        session
    }

    #[test]
    fn cache_round_trips_through_the_sidecar_format() {
        let session = warm_session();
        let rendered = save_cache(session.cache());
        let restored = load_cache(&rendered);
        assert_eq!(restored.len(), session.cache().len());
        for (key, entry) in session.cache().iter() {
            let loaded = restored
                .dependents(entry.chain.deps.iter().next().unwrap())
                .into_iter()
                .find(|c| c.hash == entry.chain.hash)
                .expect("entry restored");
            assert_eq!(loaded.path, entry.chain.path);
            assert_eq!(loaded.source, entry.chain.source);
            assert_eq!(
                loaded.mapping.constraints.to_string(),
                entry.chain.mapping.constraints.to_string()
            );
            assert!(restored.contains(key));
        }
    }

    #[test]
    fn restored_cache_serves_hits() {
        let session = warm_session();
        let calls_cold = session.stats().compose_calls;
        assert!(calls_cold > 0);
        let rendered = save_cache(session.cache());

        // A brand-new session over the same catalog, warmed from the sidecar.
        let catalog = session.catalog().clone();
        let mut fresh = Session::new(catalog);
        fresh.restore_cache(load_cache(&rendered));
        let result = fresh.compose_path("s0", "s3").unwrap();
        assert_eq!(result.compose_calls, 0, "sidecar-restored cache must serve the chain");
    }

    #[test]
    fn malformed_entries_are_skipped() {
        let restored = load_cache("entry zzzz\ngarbage\nentry 1 2 3\n");
        assert!(restored.is_empty());
        let restored = load_cache("");
        assert!(restored.is_empty());
        let manifest = load_versions("version schema\nversion mapping m zz\nversion bogus x 1 2");
        assert!(manifest.is_empty());
        // A corrupt token must reject the whole stats line, not shift the
        // remaining counters into the wrong fields.
        let restored = load_cache("stats 10 x5 3 2 1 0\n");
        assert_eq!(restored.stats(), CacheStats::default());
    }

    #[test]
    fn restored_cache_preserves_eviction_order() {
        let mut session = warm_session();
        // Touch the chain's first pairwise segment so it becomes the most
        // recently used entry despite its key order.
        let refreshed: Vec<_> = session.cache().iter().map(|(key, _)| *key).collect();
        let hot = refreshed[0];
        let mut cache = load_cache(&save_cache(session.cache()));
        assert!(cache.lookup(hot).is_some());
        let rendered = save_cache(&cache);
        let mut restored = load_cache(&rendered);
        // Shrinking to one entry must keep the most recently used one.
        restored.set_capacity(Some(1));
        assert_eq!(restored.len(), 1);
        assert!(restored.contains(&hot), "restored eviction order must follow recency");
        session.restore_cache(restored);
    }

    #[test]
    fn cache_stats_survive_the_sidecar() {
        let session = warm_session();
        let before = session.cache().stats();
        assert!(before.insertions > 0);
        let restored = load_cache(&save_cache(session.cache()));
        assert_eq!(restored.stats(), before, "lifetime counters persist, not double-counted");
    }

    #[test]
    fn versions_and_history_round_trip_through_the_sidecar() {
        let mut session = warm_session();
        // Edit one mapping twice: version 3, three-entry history.
        for constraints in ["project[0](R1) <= R2", "R1 <= project[0](R2)"] {
            session.update_mapping("m1", parse_constraints(constraints).unwrap()).unwrap();
        }
        let catalog = session.catalog();
        assert_eq!(catalog.mapping("m1").unwrap().version, 3);
        let sidecar = save_state(catalog, session.cache());

        // Simulate a fresh CLI invocation: rebuild the catalog from its
        // content-only document, then re-apply the persisted versions.
        let document = mapcomp_algebra::parse_document(&catalog.to_document_string()).unwrap();
        let mut rebuilt = Catalog::new();
        rebuilt.from_document(&document).unwrap();
        assert_eq!(rebuilt.mapping("m1").unwrap().version, 1, "document carries content only");
        let (manifest, _) = load_state(&sidecar);
        let adopted = rebuilt.restore_versions(&manifest);
        assert!(adopted >= 5);
        assert_eq!(rebuilt.mapping("m1").unwrap().version, 3);
        assert_eq!(rebuilt.mapping("m1").unwrap().history.len(), 3);
        assert_eq!(rebuilt.mapping("m0").unwrap().version, 1);
        assert_eq!(rebuilt.schema("s0").unwrap().version, 1);
        assert_eq!(rebuilt.mapping("m1").unwrap().hash, catalog.mapping("m1").unwrap().hash);
    }

    fn temp_sidecar(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("mapcomp_persist_{}_{tag}.memo", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn appended_version_lines_supersede_earlier_ones() {
        let mut session = warm_session();
        let writer = SidecarWriter::new(temp_sidecar("append"));
        writer.append(&save_versions(session.catalog())).unwrap();
        session.update_mapping("m1", parse_constraints("project[0](R1) <= R2").unwrap()).unwrap();
        let entry = session.catalog().mapping("m1").unwrap().clone();
        writer.append(&VersionManifest::of_mapping(&entry).render()).unwrap();
        let (manifest, _) = writer.load();
        assert_eq!(manifest.mappings["m1"].0, 2, "last appended line wins");
        assert_eq!(manifest.mappings["m0"].0, 1, "earlier entries survive the append");
        let _ = std::fs::remove_file(writer.path());
    }

    #[test]
    fn concurrent_appends_lose_no_updates() {
        let writer = SidecarWriter::new(temp_sidecar("race"));
        let session = warm_session();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let writer = &writer;
                let catalog = session.catalog();
                scope.spawn(move || {
                    for round in 1..=5u64 {
                        let mut entry = catalog.mapping("m1").unwrap().clone();
                        entry.name = format!("w{worker}");
                        entry.version = round;
                        writer.append(&VersionManifest::of_mapping(&entry).render()).unwrap();
                    }
                });
            }
        });
        let (manifest, _) = writer.load();
        for worker in 0..4u64 {
            let (version, _) = &manifest.mappings[&format!("w{worker}")];
            assert_eq!(*version, 5, "worker {worker}'s final append must not be lost");
        }
        let _ = std::fs::remove_file(writer.path());
    }

    #[test]
    fn sidecar_writes_break_stale_cross_process_locks() {
        let writer = SidecarWriter::new(temp_sidecar("lockbreak"));
        let lock_path = FileLock::for_file(writer.path()).path().to_path_buf();
        // A crashed process left its lock behind; the PID can never be live.
        std::fs::write(&lock_path, "pid 999999999\n").unwrap();
        writer.append("version mapping m 1 1:00000000000000aa\n").unwrap();
        assert!(!lock_path.exists(), "append must break the stale lock and release its own");
        let (manifest, _) = writer.load();
        assert_eq!(manifest.mappings["m"].0, 1);
        let _ = std::fs::remove_file(writer.path());
    }

    #[test]
    fn rewrite_compacts_appended_state() {
        let session = warm_session();
        let writer = SidecarWriter::new(temp_sidecar("compact"));
        for _ in 0..3 {
            writer.append(&save_state(session.catalog(), session.cache())).unwrap();
        }
        let appended_len = std::fs::read_to_string(writer.path()).unwrap().len();
        writer.rewrite(&save_state(session.catalog(), session.cache())).unwrap();
        let compacted = std::fs::read_to_string(writer.path()).unwrap();
        assert!(compacted.len() < appended_len, "rewrite must compact the sidecar");
        let (manifest, cache) = writer.load();
        assert!(!manifest.is_empty());
        assert_eq!(cache.len(), session.cache().len());
        assert_eq!(cache.stats(), session.cache().stats());
        let _ = std::fs::remove_file(writer.path());
    }

    #[test]
    fn out_of_session_edits_advance_the_restored_version() {
        let session = warm_session();
        let sidecar = save_state(session.catalog(), session.cache());
        // The document is edited by hand between invocations: m1 has new
        // content, so its recorded hash no longer matches.
        let mut rebuilt = session.catalog().clone();
        rebuilt.update_mapping("m1", parse_constraints("project[0](R1) <= R2").unwrap()).unwrap();
        let document = mapcomp_algebra::parse_document(&rebuilt.to_document_string()).unwrap();
        let mut fresh = Catalog::new();
        fresh.from_document(&document).unwrap();
        let (manifest, _) = load_state(&sidecar);
        fresh.restore_versions(&manifest);
        // Recorded version 1 + one out-of-session edit = version 2, with the
        // new hash appended to the history.
        let entry = fresh.mapping("m1").unwrap();
        assert_eq!(entry.version, 2);
        assert_eq!(entry.history.len(), 2);
        assert_eq!(entry.history.last().unwrap().1, entry.hash);
    }
}
