//! Plain-text persistence of the sidecar session state: the memo cache,
//! cumulative cache statistics, and catalog version counters.
//!
//! The catalog itself round-trips through the document format
//! ([`crate::store::Catalog::to_document_string`]); that format carries
//! *content* only. Everything else a command-line session wants to keep
//! across invocations lives in the sidecar rendered here:
//!
//! * **Versions** — `version schema <name> <v> <hash>` and
//!   `version mapping <name> <v> <v:hash> …` lines record each entry's
//!   version counter and hash history, so versions no longer reset per CLI
//!   invocation ([`Catalog::restore_versions`] re-applies them, advancing
//!   the counter when the on-disk content was edited out of session).
//! * **Statistics** — one `stats …` line with the cumulative
//!   [`crate::cache::CacheStats`] counters (hits, misses, insertions,
//!   invalidations, evictions).
//! * **Memo entries** — a small header (the memo key, the segment hash,
//!   endpoints, path, provenance) followed by an embedded document holding
//!   the composed mapping and the residual signature:
//!
//! ```text
//! entry <left> <right> <config> <hash>
//! endpoints <source> -> <target>
//! path <m1> <m2> …
//! deps <m1> <m2> …
//! begin-document
//! schema __in { … }
//! schema __out { … }
//! schema __residual { … }
//! mapping __seg : __in -> __out { … }
//! end-document
//! ```
//!
//! * **Delta records** — single `delta …` lines appended by the incremental
//!   persistence path, so a long-running server's durability cost is
//!   proportional to the change rather than to the catalog
//!   ([`DeltaRecord`]): `delta schema`/`delta mapping` carry one escaped
//!   document declaration (catalog content added or edited out of the
//!   snapshot), `delta invalidate` drops cached compositions depending on a
//!   mapping, `delta evict` drops one memo entry by key, and `delta stats`
//!   adds increments onto the last absolute `stats` line. Replay applies
//!   them in file order over the snapshot ([`load_sidecar`]); compaction
//!   ([`SidecarWriter::rewrite`] with a fresh [`save_state`] rendering)
//!   folds the log back into snapshot form.
//!
//! * **Log positions** — a `generation <g> <seq>` header written by every
//!   compaction, plus an optional `(generation, seq)` position on each
//!   `delta` record (`delta <g> <seq> <kind> …`). Together they give every
//!   appended record a totally ordered [`Position`] that survives
//!   compaction: rewriting the log bumps the generation instead of silently
//!   reusing sequence numbers, so a replication subscriber resuming from a
//!   stale position is *detected* (and falls back to a snapshot) rather
//!   than replayed wrong bytes.
//!
//! Unknown or corrupted lines are skipped on load (the sidecar is only an
//! accelerator plus bookkeeping; losing an entry costs one recomposition,
//! never correctness), and a torn final line — a crash mid-append — is
//! dropped before parsing ([`strip_torn_tail`]). The complete on-disk
//! grammar, with examples that are round-tripped by
//! `tests/docs_examples.rs`, is specified in `docs/PERSISTENCE.md`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use mapcomp_algebra::{parse_document, ConstraintSet, Document, Mapping, Signature};

use crate::cache::{CacheStats, MemoCache, MemoKey};
use crate::chain::ComposedChain;
use crate::lock::FileLock;
use crate::store::Catalog;

/// How long a sidecar write waits for the cross-process `.lock` file before
/// giving up. Writers hold the lock for one append or rewrite only, so a
/// live contender releases it in milliseconds; a dead one is broken by the
/// PID-liveness probe on the first retry.
const LOCK_TIMEOUT: Duration = Duration::from_secs(5);

/// Persisted version counters and hash history for catalog entries,
/// decoupled from the content-only document format.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionManifest {
    /// Schema name → (version, content hash at that version).
    pub schemas: BTreeMap<String, (u64, u64)>,
    /// Mapping name → (version, hash history oldest-first).
    pub mappings: BTreeMap<String, (u64, Vec<(u64, u64)>)>,
}

impl VersionManifest {
    /// Capture the current versions and history of a catalog.
    pub fn of(catalog: &Catalog) -> Self {
        let mut manifest = VersionManifest::default();
        for entry in catalog.schemas() {
            manifest.schemas.insert(entry.name.clone(), (entry.version, entry.hash.0));
        }
        for entry in catalog.mappings() {
            let history = entry.history.iter().map(|&(v, h)| (v, h.0)).collect();
            manifest.mappings.insert(entry.name.clone(), (entry.version, history));
        }
        manifest
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty() && self.mappings.is_empty()
    }

    /// Capture a single mapping entry (e.g. for appending one writer's
    /// update to a shared sidecar without rendering the whole catalog).
    pub fn of_mapping(entry: &crate::store::MappingEntry) -> Self {
        let mut manifest = VersionManifest::default();
        let history = entry.history.iter().map(|&(v, h)| (v, h.0)).collect();
        manifest.mappings.insert(entry.name.clone(), (entry.version, history));
        manifest
    }

    /// Capture a single schema entry (the schema-side counterpart of
    /// [`VersionManifest::of_mapping`]).
    pub fn of_schema(entry: &crate::store::SchemaEntry) -> Self {
        let mut manifest = VersionManifest::default();
        manifest.schemas.insert(entry.name.clone(), (entry.version, entry.hash.0));
        manifest
    }

    /// Absorb every entry of `other`, superseding entries with the same
    /// names (the in-memory analogue of appending `other.render()` after
    /// this manifest's lines).
    pub fn absorb(&mut self, other: VersionManifest) {
        self.schemas.extend(other.schemas);
        self.mappings.extend(other.mappings);
    }

    /// Render the manifest as sidecar `version …` lines. Loading keeps the
    /// *last* line per entry, so appending a newer rendering supersedes
    /// older ones without rewriting the file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, (version, hash)) in &self.schemas {
            let _ = writeln!(out, "version schema {name} {version} {hash:016x}");
        }
        for (name, (version, history)) in &self.mappings {
            let rendered: Vec<String> =
                history.iter().map(|(v, h)| format!("{v}:{h:016x}")).collect();
            let _ = writeln!(out, "version mapping {name} {version} {}", rendered.join(" "));
        }
        out
    }
}

/// Render the version manifest of a catalog as sidecar lines.
pub fn save_versions(catalog: &Catalog) -> String {
    VersionManifest::of(catalog).render()
}

/// Parse `version …` lines out of a sidecar rendering; malformed lines are
/// skipped.
pub fn load_versions(text: &str) -> VersionManifest {
    let mut manifest = VersionManifest::default();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("version ") else { continue };
        absorb_version_line(&mut manifest, rest);
    }
    manifest
}

/// Absorb the remainder of one `version …` line (everything after the
/// keyword) into a manifest; malformed lines are ignored.
fn absorb_version_line(manifest: &mut VersionManifest, rest: &str) {
    let mut parts = rest.split_whitespace();
    let (Some(kind), Some(name), Some(version)) = (parts.next(), parts.next(), parts.next()) else {
        return;
    };
    let Ok(version) = version.parse::<u64>() else { return };
    match kind {
        "schema" => {
            let Some(hash) = parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()) else {
                return;
            };
            manifest.schemas.insert(name.to_string(), (version, hash));
        }
        "mapping" => {
            let mut history = Vec::new();
            for part in parts {
                let Some((v, h)) = part.split_once(':') else { return };
                let (Ok(v), Ok(h)) = (v.parse::<u64>(), u64::from_str_radix(h, 16)) else {
                    return;
                };
                history.push((v, h));
            }
            if !history.is_empty() {
                manifest.mappings.insert(name.to_string(), (version, history));
            }
        }
        _ => {}
    }
}

/// Render the whole sidecar: versions, statistics, memo entries.
pub fn save_state(catalog: &Catalog, cache: &MemoCache) -> String {
    let mut out = save_versions(catalog);
    out.push_str(&save_cache(cache));
    out
}

/// Parse a sidecar into its version manifest and cache (with restored
/// statistics). Apply the manifest via [`Catalog::restore_versions`].
pub fn load_state(text: &str) -> (VersionManifest, MemoCache) {
    let state = load_sidecar(text);
    (state.manifest, state.cache)
}

// ---------------------------------------------------------------------------
// Field escaping
// ---------------------------------------------------------------------------

/// Escape an arbitrary string into a single whitespace-free token for a
/// sidecar delta line: `%` and every whitespace or control character become
/// `%XX` byte escapes of their UTF-8 encoding; the empty string becomes the
/// marker `%e` (which no non-empty escape ever produces, since a literal `%`
/// escapes to `%25`).
pub fn escape_field(text: &str) -> String {
    if text.is_empty() {
        return "%e".to_string();
    }
    let mut out = String::with_capacity(text.len());
    let mut buf = [0u8; 4];
    for ch in text.chars() {
        if ch == '%' || ch.is_whitespace() || ch.is_control() {
            for byte in ch.encode_utf8(&mut buf).bytes() {
                let _ = write!(out, "%{byte:02X}");
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// Undo [`escape_field`]. Returns `None` on truncated or non-hex escapes
/// and on invalid UTF-8 (the caller skips the malformed line).
pub fn unescape_field(token: &str) -> Option<String> {
    if token == "%e" {
        return Some(String::new());
    }
    let bytes = token.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut index = 0;
    while index < bytes.len() {
        if bytes[index] == b'%' {
            let hex = bytes
                .get(index + 1..index + 3)
                .and_then(|pair| std::str::from_utf8(pair).ok())
                .and_then(|pair| u8::from_str_radix(pair, 16).ok())?;
            out.push(hex);
            index += 3;
        } else {
            out.push(bytes[index]);
            index += 1;
        }
    }
    String::from_utf8(out).ok()
}

// ---------------------------------------------------------------------------
// Log positions
// ---------------------------------------------------------------------------

/// A totally ordered position in the sidecar delta log: the compaction
/// `generation` the record belongs to and its `seq` number within that
/// generation. Compaction folds the log into a snapshot and bumps the
/// generation (recorded by a `generation <g> <seq>` header line), so
/// positions from before a compaction are *detectably* stale — they compare
/// less than every post-compaction position and never alias a new record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Compaction generation (bumped by every snapshot rewrite).
    pub generation: u64,
    /// Record sequence number within the generation (0-based).
    pub seq: u64,
}

impl Position {
    /// The origin position: generation 0, sequence 0.
    pub const ZERO: Position = Position { generation: 0, seq: 0 };

    /// Construct a position.
    pub fn new(generation: u64, seq: u64) -> Position {
        Position { generation, seq }
    }

    /// The position immediately after this one within the same generation.
    pub fn next(self) -> Position {
        Position { generation: self.generation, seq: self.seq.saturating_add(1) }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.generation, self.seq)
    }
}

/// Render the `generation <g> <seq>` header line (with trailing newline):
/// "records after this line start at position `(generation, seq)`". Written
/// by every compaction; appended by followers when the leader's log crosses
/// a generation boundary. Loading keeps the last one.
pub fn render_generation_marker(position: Position) -> String {
    format!("generation {} {}\n", position.generation, position.seq)
}

// ---------------------------------------------------------------------------
// Delta records
// ---------------------------------------------------------------------------

/// One incremental sidecar record: a single appended line describing one
/// catalog or cache mutation, so durability for a state-changing request
/// costs I/O proportional to the change instead of a full
/// snapshot-and-rewrite. Replay ([`load_sidecar`]) applies deltas in file
/// order over the snapshot lines that precede them; compaction folds the
/// accumulated log back into snapshot form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaRecord {
    /// `delta schema <escaped-decl>` — register or update one schema. The
    /// payload is a complete `schema <name> { … }` declaration in the
    /// document grammar, escaped into one token.
    Schema {
        /// The schema declaration text.
        decl: String,
    },
    /// `delta mapping <escaped-decl>` — register or update one mapping. The
    /// payload is a complete `mapping <name> : <src> -> <tgt> { … }`
    /// declaration in the document grammar, escaped into one token.
    Mapping {
        /// The mapping declaration text.
        decl: String,
    },
    /// `delta invalidate <name>` — drop every cached composition whose
    /// provenance mentions the mapping (the persisted form of
    /// [`MemoCache::invalidate`]).
    Invalidate {
        /// The mapping name (escaped on disk).
        mapping: String,
    },
    /// `delta evict <left> <right> <config>` — drop one memo entry by its
    /// key (three 16-digit hex hashes), the persisted form of an LRU
    /// eviction.
    Evict {
        /// The memo key of the dropped entry.
        key: MemoKey,
    },
    /// `delta stats <hits> <misses> <insertions> <invalidated> <evictions>`
    /// — *increments* added onto the running totals established by the last
    /// absolute `stats` line (and any `delta stats` lines since).
    Stats(CacheStats),
    /// `delta migrate <from> <to> <update>…` — one applied batch of signed
    /// source updates (`+rel(…)`/`-rel(…)` tokens, escaped) for the live
    /// migration session keyed by its schema endpoints. Replay appends the
    /// batch onto the session's accumulated update history; compaction
    /// folds the history into one absolute `migrate` snapshot line.
    Migrate {
        /// Source schema of the migration session.
        from: String,
        /// Target schema of the migration session.
        to: String,
        /// The batch's update tokens, in application order.
        updates: Vec<String>,
    },
}

/// The keyword-and-payload body of a delta line (everything after `delta `
/// and the optional position).
fn render_delta_body(delta: &DeltaRecord) -> String {
    match delta {
        DeltaRecord::Schema { decl } => format!("schema {}", escape_field(decl)),
        DeltaRecord::Mapping { decl } => format!("mapping {}", escape_field(decl)),
        DeltaRecord::Invalidate { mapping } => {
            format!("invalidate {}", escape_field(mapping))
        }
        DeltaRecord::Evict { key: (left, right, config) } => {
            format!("evict {left:016x} {right:016x} {config:016x}")
        }
        DeltaRecord::Stats(stats) => format!(
            "stats {} {} {} {} {}",
            stats.hits, stats.misses, stats.insertions, stats.invalidated, stats.evictions
        ),
        DeltaRecord::Migrate { from, to, updates } => {
            let mut out = format!("migrate {} {}", escape_field(from), escape_field(to));
            for update in updates {
                let _ = write!(out, " {}", escape_field(update));
            }
            out
        }
    }
}

/// Render a delta record as its single sidecar line (no trailing newline),
/// without a log position — the pre-replication form, still accepted on
/// load.
pub fn render_delta(delta: &DeltaRecord) -> String {
    format!("delta {}", render_delta_body(delta))
}

/// Render a delta record with its `(generation, seq)` log position:
/// `delta <g> <seq> <kind> …` (no trailing newline). This is the form the
/// service layer appends, so every record carries a resume position for
/// replication subscribers.
pub fn render_positioned_delta(position: Position, delta: &DeltaRecord) -> String {
    format!("delta {} {} {}", position.generation, position.seq, render_delta_body(delta))
}

/// Parse one `delta …` line, positioned or not; `None` for malformed lines
/// (the loader skips them). The position is `None` for the legacy
/// `delta <kind> …` form — unambiguous because no record keyword parses as
/// a decimal number.
pub fn parse_positioned_delta(line: &str) -> Option<(Option<Position>, DeltaRecord)> {
    let rest = line.trim().strip_prefix("delta ")?;
    let (first, tail) = rest.split_once(' ')?;
    if let Ok(generation) = first.parse::<u64>() {
        let (second, tail) = tail.trim_start().split_once(' ')?;
        let seq = second.parse::<u64>().ok()?;
        return Some((Some(Position { generation, seq }), parse_delta_body(tail)?));
    }
    Some((None, parse_delta_body(rest)?))
}

/// Parse one `delta …` line into its record, discarding any position.
pub fn parse_delta(line: &str) -> Option<DeltaRecord> {
    parse_positioned_delta(line).map(|(_, delta)| delta)
}

/// Parse the keyword-and-payload body of a delta line.
fn parse_delta_body(body: &str) -> Option<DeltaRecord> {
    let (kind, rest) = body.split_once(' ')?;
    let rest = rest.trim();
    match kind {
        "schema" if !rest.contains(' ') => {
            Some(DeltaRecord::Schema { decl: unescape_field(rest)? })
        }
        "mapping" if !rest.contains(' ') => {
            Some(DeltaRecord::Mapping { decl: unescape_field(rest)? })
        }
        "invalidate" if !rest.contains(' ') => {
            Some(DeltaRecord::Invalidate { mapping: unescape_field(rest)? })
        }
        "evict" => {
            let hashes: Option<Vec<u64>> =
                rest.split_whitespace().map(|token| u64::from_str_radix(token, 16).ok()).collect();
            match hashes?.as_slice() {
                &[left, right, config] => Some(DeltaRecord::Evict { key: (left, right, config) }),
                _ => None,
            }
        }
        "stats" => {
            let numbers: Option<Vec<usize>> =
                rest.split_whitespace().map(|token| token.parse().ok()).collect();
            match numbers?.as_slice() {
                &[hits, misses, insertions, invalidated, evictions] => {
                    Some(DeltaRecord::Stats(CacheStats {
                        hits,
                        misses,
                        insertions,
                        invalidated,
                        evictions,
                    }))
                }
                _ => None,
            }
        }
        "migrate" => parse_migration_tokens(rest)
            .map(|((from, to), updates)| DeltaRecord::Migrate { from, to, updates }),
        _ => None,
    }
}

/// Parse the `<from> <to> <update>…` token tail shared by `delta migrate`
/// records and absolute `migrate` snapshot lines.
fn parse_migration_tokens(rest: &str) -> Option<((String, String), Vec<String>)> {
    let mut tokens = rest.split_whitespace();
    let from = unescape_field(tokens.next()?)?;
    let to = unescape_field(tokens.next()?)?;
    let updates: Option<Vec<String>> = tokens.map(unescape_field).collect();
    Some(((from, to), updates?))
}

/// Render the absolute snapshot form of a migration session: one
/// `migrate <from> <to> <update>…` line (no `delta ` prefix, no trailing
/// newline) carrying the full accumulated update history. On replay it
/// *replaces* the session's history, whereas `delta migrate` records
/// append — the same snapshot-vs-delta split every other sidecar record
/// obeys.
pub fn render_migration_snapshot(from: &str, to: &str, updates: &[String]) -> String {
    let mut out = format!("migrate {} {}", escape_field(from), escape_field(to));
    for update in updates {
        let _ = write!(out, " {}", escape_field(update));
    }
    out
}

/// Render a single schema declaration in the document grammar (the payload
/// of [`DeltaRecord::Schema`]).
pub fn render_schema_decl(name: &str, signature: &Signature) -> String {
    let mut out = String::new();
    write_schema(&mut out, name, signature);
    out
}

/// Render a single mapping declaration in the document grammar (the payload
/// of [`DeltaRecord::Mapping`]).
pub fn render_mapping_decl(
    name: &str,
    source: &str,
    target: &str,
    constraints: &ConstraintSet,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mapping {name} : {source} -> {target} {{");
    for constraint in constraints.iter() {
        let _ = writeln!(out, "    {constraint};");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Everything a sidecar carries: the last-wins version manifest, the memo
/// cache with delta records replayed in file order, and the parsed
/// catalog-content deltas (to be applied over the document snapshot via
/// [`Catalog::from_document`], in order).
#[derive(Debug, Default)]
pub struct SidecarState {
    /// Persisted version counters and hash history (last line per entry
    /// wins).
    pub manifest: VersionManifest,
    /// The memo cache: `entry` blocks inserted, `delta evict` /
    /// `delta invalidate` removals applied, statistics restored from the
    /// last absolute `stats` line plus subsequent `delta stats` increments.
    pub cache: MemoCache,
    /// Parsed `delta schema` / `delta mapping` payloads, in file order.
    pub doc_deltas: Vec<Document>,
    /// Live migration sessions keyed `(from, to)`: the accumulated signed
    /// source-update history, absolute `migrate` snapshot lines replacing
    /// and `delta migrate` records appending, in file order. The service
    /// replays each history through a fresh differential chase on restart.
    pub migrations: BTreeMap<(String, String), Vec<String>>,
    /// Compaction generation from the last `generation` header line (0 when
    /// the sidecar predates generation counters or has never compacted).
    pub generation: u64,
    /// Sequence number the next appended delta record should carry: the
    /// header's seq advanced past every positioned record seen since.
    pub next_seq: u64,
}

impl SidecarState {
    /// The position the next appended record should carry — the resume
    /// position a replication subscriber would hand to `Subscribe`.
    pub fn next_position(&self) -> Position {
        Position { generation: self.generation, seq: self.next_seq }
    }
}

/// Does the file end without a newline (a crash-torn final line)? A missing
/// or empty file is not torn.
fn tail_is_torn(path: &Path) -> std::io::Result<bool> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    let mut file = match std::fs::File::open(path) {
        Ok(file) => file,
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(error) => return Err(error),
    };
    if file.metadata()?.len() == 0 {
        return Ok(false);
    }
    file.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    file.read_exact(&mut last)?;
    Ok(last[0] != b'\n')
}

/// Drop a torn final line: everything after the last `\n`. Appends always
/// end with a newline, so a file whose tail lacks one was cut by a crash
/// mid-append; the torn fragment could otherwise parse as a *valid but
/// wrong* shorter line (e.g. a truncated version history).
pub fn strip_torn_tail(text: &str) -> &str {
    match text.rfind('\n') {
        Some(index) => &text[..=index],
        None => "",
    }
}

/// Parse a complete sidecar rendering — snapshot lines *and* appended delta
/// records — in one sequential pass. Malformed lines are skipped; deltas
/// whose payloads fail to parse are skipped; everything else applies in
/// file order, so later records supersede earlier ones exactly as the
/// append order on disk implies.
pub fn load_sidecar(text: &str) -> SidecarState {
    let mut state = SidecarState::default();
    let mut stats_acc: Option<CacheStats> = None;
    let mut lines = text.lines();
    // A line handed back by an abandoned entry block (see below), to be
    // re-dispatched as a top-level record before pulling the next one.
    let mut pending: Option<&str> = None;
    while let Some(line) = pending.take().or_else(|| lines.next()) {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("version ") {
            absorb_version_line(&mut state.manifest, rest);
            continue;
        }
        if let Some(rest) = line.strip_prefix("stats ") {
            // Strict parse: any malformed token rejects the whole line
            // (skipping a corrupt token would shift the remaining numbers
            // into the wrong counters).
            let numbers: Result<Vec<usize>, _> = rest.split_whitespace().map(str::parse).collect();
            if let Ok([hits, misses, insertions, invalidated, evictions]) = numbers.as_deref() {
                stats_acc = Some(CacheStats {
                    hits: *hits,
                    misses: *misses,
                    insertions: *insertions,
                    invalidated: *invalidated,
                    evictions: *evictions,
                });
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("generation ") {
            // `generation <g> <seq>`: records after this line start at that
            // position. Last header wins (a follower appends one whenever
            // the leader's log crosses a compaction boundary).
            let mut parts = rest.split_whitespace();
            let (Some(generation), Some(seq), None) = (
                parts.next().and_then(|p| p.parse::<u64>().ok()),
                parts.next().and_then(|p| p.parse::<u64>().ok()),
                parts.next(),
            ) else {
                continue;
            };
            state.generation = generation;
            state.next_seq = seq;
            continue;
        }
        if line.starts_with("delta ") {
            let parsed = parse_positioned_delta(line);
            if let Some((Some(position), _)) = parsed {
                if position.generation > state.generation
                    || (position.generation == state.generation && position.seq >= state.next_seq)
                {
                    state.generation = position.generation;
                    state.next_seq = position.seq + 1;
                }
            }
            match parsed {
                Some((_, DeltaRecord::Schema { decl } | DeltaRecord::Mapping { decl })) => {
                    if let Ok(document) = parse_document(&decl) {
                        state.doc_deltas.push(document);
                    }
                }
                Some((_, DeltaRecord::Invalidate { mapping })) => {
                    state.cache.invalidate(&mapping);
                }
                Some((_, DeltaRecord::Evict { key })) => {
                    state.cache.remove(&key);
                }
                Some((_, DeltaRecord::Stats(delta))) => {
                    stats_acc = Some(stats_acc.unwrap_or_default().merged(delta));
                }
                Some((_, DeltaRecord::Migrate { from, to, updates })) => {
                    state.migrations.entry((from, to)).or_default().extend(updates);
                }
                None => {}
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("migrate ") {
            // Absolute snapshot line: replaces the session history (deltas
            // that follow in file order append onto it).
            if let Some((key, updates)) = parse_migration_tokens(rest) {
                state.migrations.insert(key, updates);
            }
            continue;
        }
        let Some(rest) = line.strip_prefix("entry ") else { continue };
        let mut key_parts = rest.split_whitespace();
        let (Some(left), Some(right), Some(config), Some(hash)) = (
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
            key_parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()),
        ) else {
            continue;
        };

        let mut source = None;
        let mut target = None;
        let mut path: Vec<String> = Vec::new();
        let mut deps: BTreeSet<String> = BTreeSet::new();
        let mut document_text = String::new();
        let mut in_document = false;
        let mut complete = false;
        for line in lines.by_ref() {
            let trimmed = line.trim();
            // A top-level record starting mid-block means this block was
            // torn by a crash (its `end-document` never made it to disk)
            // and later sessions appended after it: abandon the block and
            // re-dispatch the record, or every acknowledged delta that
            // follows would be swallowed as block content. The bias is
            // deliberate — a legitimate embedded constraint over a
            // relation named `delta`/`version`/`stats`/`entry` can trip
            // this and drop the one cache entry (one recomposition, never
            // a correctness loss), whereas the converse mistake loses
            // catalog edits.
            if trimmed.starts_with("entry ")
                || trimmed.starts_with("delta ")
                || trimmed.starts_with("version ")
                || trimmed.starts_with("stats ")
                || trimmed.starts_with("generation ")
                || trimmed.starts_with("migrate ")
            {
                pending = Some(line);
                break;
            }
            if trimmed == "begin-document" {
                in_document = true;
            } else if trimmed == "end-document" {
                complete = true;
                break;
            } else if in_document {
                document_text.push_str(line);
                document_text.push('\n');
            } else if let Some(rest) = trimmed.strip_prefix("endpoints ") {
                let mut ends = rest.split(" -> ");
                source = ends.next().map(str::to_string);
                target = ends.next().map(str::to_string);
            } else if let Some(rest) = trimmed.strip_prefix("path ") {
                path = rest.split_whitespace().map(str::to_string).collect();
            } else if let Some(rest) = trimmed.strip_prefix("deps ") {
                deps = rest.split_whitespace().map(str::to_string).collect();
            }
        }
        let (Some(source), Some(target)) = (source, target) else { continue };
        if !complete {
            continue;
        }
        let Some((mapping, residual)) = parse_chain_document(&document_text) else { continue };
        let chain = ComposedChain { source, target, path, mapping, residual, hash, deps };
        state.cache.insert((left, right, config), chain);
    }
    // The accumulated counters already include the insertions replayed
    // above; restoring last keeps them cumulative rather than
    // double-counted.
    if let Some(stats) = stats_acc {
        state.cache.restore_stats(stats);
    }
    state
}

/// Render a composed chain's *content* as a self-contained embeddable
/// document: the `__in`/`__out`/`__residual` schemas plus the `__seg`
/// mapping. This is the exact byte format the sidecar embeds per memo entry,
/// reused by the service layer's wire payloads so a chain composed remotely
/// renders identically to one composed in process.
pub fn render_chain_document(chain: &ComposedChain) -> String {
    let mut out = String::new();
    write_schema(&mut out, "__in", &chain.mapping.input);
    write_schema(&mut out, "__out", &chain.mapping.output);
    write_schema(&mut out, "__residual", &chain.residual);
    let _ = writeln!(out, "mapping __seg : __in -> __out {{");
    for constraint in chain.mapping.constraints.iter() {
        let _ = writeln!(out, "    {constraint};");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Parse a [`render_chain_document`] rendering back into the composed
/// mapping and the residual signature. Returns `None` for malformed text.
pub fn parse_chain_document(text: &str) -> Option<(Mapping, Signature)> {
    let document = parse_document(text).ok()?;
    let input = document.schema("__in").ok()?;
    let output = document.schema("__out").ok()?;
    let residual = document.schema("__residual").ok()?;
    let (_, _, constraints) = document.mappings.get("__seg")?;
    Some((Mapping::new(input.clone(), output.clone(), constraints.clone()), residual.clone()))
}

fn write_schema(out: &mut String, name: &str, sig: &Signature) {
    let _ = write!(out, "schema {name} {{ ");
    for (rel, info) in sig.iter() {
        let _ = write!(out, "{rel}/{}", info.arity);
        if let Some(key) = &info.key {
            let cols: Vec<String> = key.iter().map(usize::to_string).collect();
            let _ = write!(out, " key({})", cols.join(","));
        }
        let _ = write!(out, "; ");
    }
    let _ = writeln!(out, "}}");
}

/// Render one memo entry as its sidecar `entry` block (header, endpoints,
/// path, provenance, embedded document). Appending this block inserts —
/// or, last-wins, refreshes — the entry on replay.
pub fn render_cache_entry(key: &MemoKey, chain: &ComposedChain) -> String {
    let (left, right, config) = key;
    let mut out = String::new();
    let _ = writeln!(out, "entry {left:016x} {right:016x} {config:016x} {:016x}", chain.hash);
    let _ = writeln!(out, "endpoints {} -> {}", chain.source, chain.target);
    let _ = writeln!(out, "path {}", chain.path.join(" "));
    let deps: Vec<&str> = chain.deps.iter().map(String::as_str).collect();
    let _ = writeln!(out, "deps {}", deps.join(" "));
    let _ = writeln!(out, "begin-document");
    out.push_str(&render_chain_document(chain));
    let _ = writeln!(out, "end-document");
    out
}

/// Render the cache in the sidecar format.
pub fn save_cache(cache: &MemoCache) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// mapcomp memo cache: {} entries", cache.len());
    let stats = cache.stats();
    let _ = writeln!(
        out,
        "stats {} {} {} {} {}",
        stats.hits, stats.misses, stats.insertions, stats.invalidated, stats.evictions
    );
    // Least-recently-used first, so a capacity-bounded session restoring
    // this sidecar evicts in the same order the saving session would have.
    for (key, entry) in cache.iter_lru() {
        out.push_str(&render_cache_entry(key, &entry.chain));
    }
    out
}

/// Parse a sidecar rendering back into a cache. Malformed entries are
/// silently dropped; delta records (evictions, invalidations, statistics
/// increments) are replayed in file order.
pub fn load_cache(text: &str) -> MemoCache {
    load_sidecar(text).cache
}

/// Single-writer sidecar file shared by concurrent sessions — in one
/// process and across processes.
///
/// All writes are serialised twice over: by an internal mutex (threads of
/// this process) and by an advisory cross-process [`FileLock`] on the
/// sibling `<sidecar>.lock` file (other CLI invocations or servers; stale
/// locks from dead holders are broken by a PID-liveness probe). Readers
/// never take either — they read the file directly, which is safe because
/// the file only ever changes by appending whole writes
/// ([`SidecarWriter::append`]) or by an atomic rename
/// ([`SidecarWriter::rewrite`]). The sidecar grammar is last-wins per entry
/// (later `version`/`stats`/`entry` lines supersede earlier ones on load)
/// and loaders skip malformed lines, so even a reader racing an in-flight
/// append sees a consistent prefix.
///
/// Appends accumulate; call [`SidecarWriter::rewrite`] with a full
/// [`save_state`] rendering to compact the file (typically once, at session
/// end).
#[derive(Debug)]
pub struct SidecarWriter {
    path: PathBuf,
    guard: Mutex<()>,
    lock: FileLock,
    telemetry: PersistTelemetry,
}

/// Global-registry counters for sidecar durability traffic
/// (`persist_*` in `docs/OBSERVABILITY.md`).
#[derive(Debug)]
struct PersistTelemetry {
    appends: &'static mapcomp_telemetry::metrics::Counter,
    append_bytes: &'static mapcomp_telemetry::metrics::Counter,
    compactions: &'static mapcomp_telemetry::metrics::Counter,
    compaction_bytes: &'static mapcomp_telemetry::metrics::Counter,
    fsyncs: &'static mapcomp_telemetry::metrics::Counter,
}

impl PersistTelemetry {
    fn new() -> PersistTelemetry {
        let registry = mapcomp_telemetry::metrics::global();
        PersistTelemetry {
            appends: registry.counter(
                "persist_appends_total",
                "Delta chunks appended to sidecar files.",
                &[],
            ),
            append_bytes: registry.counter(
                "persist_append_bytes_total",
                "Bytes appended to sidecar files (including torn-tail healing).",
                &[],
            ),
            compactions: registry.counter(
                "persist_compactions_total",
                "Atomic snapshot rewrites of sidecar/document files.",
                &[],
            ),
            compaction_bytes: registry.counter(
                "persist_compaction_bytes_total",
                "Bytes written by snapshot rewrites (documents and sidecars).",
                &[],
            ),
            fsyncs: registry.counter(
                "persist_fsyncs_total",
                "File syncs issued before atomic renames.",
                &[],
            ),
        }
    }
}

impl SidecarWriter {
    /// A writer for the sidecar at `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let path: PathBuf = path.into();
        let lock = FileLock::for_file(&path);
        SidecarWriter { path, guard: Mutex::new(()), lock, telemetry: PersistTelemetry::new() }
    }

    /// The sidecar path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a chunk of sidecar lines and flush, under the writer mutex and
    /// the cross-process lock file. Concurrent appenders are serialised, so
    /// no writer's lines can be torn or lost; within one append the chunk
    /// lands contiguously. A crash-torn tail left by a previous process (a
    /// final line with no terminating newline) is *healed first* by writing
    /// the missing newline, so the fragment stays an isolated malformed
    /// line the loader skips — without this, the new chunk's first line
    /// would glue onto the fragment and be silently lost on every later
    /// load.
    pub fn append(&self, lines: &str) -> std::io::Result<()> {
        let _guard = self.guard.lock().unwrap_or_else(PoisonError::into_inner);
        let _file_lock = self.lock.acquire(LOCK_TIMEOUT)?;
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        let mut chunk = lines.to_string();
        if !chunk.ends_with('\n') {
            chunk.push('\n');
        }
        if tail_is_torn(&self.path)? {
            chunk.insert(0, '\n');
        }
        file.write_all(chunk.as_bytes())?;
        file.flush()?;
        self.telemetry.appends.incr();
        self.telemetry.append_bytes.add(chunk.len() as u64);
        Ok(())
    }

    /// Replace the whole sidecar with `content` atomically: the new content
    /// is written to a temporary sibling and renamed over the file (under
    /// the writer mutex and the cross-process lock file), so a concurrent
    /// reader sees either the old or the new sidecar, never a mixture.
    ///
    /// (The torn-tail healing in [`SidecarWriter::append`] is unnecessary
    /// here — a rewrite replaces the file wholesale.)
    pub fn rewrite(&self, content: &str) -> std::io::Result<()> {
        let _guard = self.guard.lock().unwrap_or_else(PoisonError::into_inner);
        let _file_lock = self.lock.acquire(LOCK_TIMEOUT)?;
        self.rename_over(&self.path, content)?;
        self.telemetry.compactions.incr();
        self.telemetry.compaction_bytes.add(content.len() as u64);
        Ok(())
    }

    /// Atomically replace both the catalog document at `document_path` and
    /// the sidecar in one critical section: the writer mutex and the
    /// cross-process lock are held across `render` *and* both tmp-write +
    /// rename pairs. Taking the state snapshot inside the critical section
    /// (the `render` closure) is what makes snapshot order equal write
    /// order — without it, a writer holding an older snapshot could clobber
    /// a newer, already-acknowledged state — and holding the lock across
    /// both renames means a concurrent writer cannot interleave (one
    /// writer's document paired with another's sidecar) and a lock-free
    /// reader never sees a truncated file.
    pub fn rewrite_with_document(
        &self,
        document_path: &Path,
        render: impl FnOnce() -> (String, String),
    ) -> std::io::Result<()> {
        let _guard = self.guard.lock().unwrap_or_else(PoisonError::into_inner);
        let _file_lock = self.lock.acquire(LOCK_TIMEOUT)?;
        let (document, sidecar) = render();
        self.rename_over(document_path, &document)?;
        self.rename_over(&self.path, &sidecar)?;
        self.telemetry.compactions.incr();
        self.telemetry.compaction_bytes.add((document.len() + sidecar.len()) as u64);
        Ok(())
    }

    /// Write `content` to a `.tmp` sibling of `target`, sync it to stable
    /// storage, and rename it over `target`. The sync before the rename is
    /// what makes the replacement crash-safe: without it the filesystem may
    /// persist the rename before the data, leaving an empty or truncated
    /// file after a power loss. Callers hold the writer mutex and the file
    /// lock. (Appends deliberately do *not* sync — the delta log's torn-tail
    /// handling already tolerates a lost tail, and an fsync per append would
    /// dominate the serve hot path; see fig12.)
    fn rename_over(&self, target: &Path, content: &str) -> std::io::Result<()> {
        let mut name = target.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        let tmp = target.with_file_name(name);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(content.as_bytes())?;
        file.sync_data()?;
        self.telemetry.fsyncs.incr();
        drop(file);
        std::fs::rename(&tmp, target)
    }

    /// Read the sidecar into a version manifest and cache (the counterpart
    /// of [`load_state`]); a missing file is an empty sidecar.
    pub fn load(&self) -> (VersionManifest, MemoCache) {
        let state = self.load_full();
        (state.manifest, state.cache)
    }

    /// Read the complete sidecar state — manifest, cache, and the parsed
    /// catalog-content deltas awaiting application over the document
    /// snapshot. A missing file is an empty sidecar; a torn final line (a
    /// crash mid-append) is dropped before parsing.
    pub fn load_full(&self) -> SidecarState {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => load_sidecar(strip_torn_tail(&text)),
            Err(_) => SidecarState::default(),
        }
    }

    /// Current size of the sidecar file in bytes (0 when missing) — the
    /// input to byte-threshold compaction decisions.
    pub fn file_len(&self) -> u64 {
        std::fs::metadata(&self.path).map_or(0, |meta| meta.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::store::Catalog;
    use mapcomp_algebra::parse_constraints;

    fn warm_session() -> Session {
        let mut catalog = Catalog::new();
        for i in 0..4 {
            catalog.add_schema(format!("s{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..3 {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("s{i}"),
                    &format!("s{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        let mut session = Session::new(catalog);
        session.compose_path("s0", "s3").unwrap();
        session
    }

    #[test]
    fn cache_round_trips_through_the_sidecar_format() {
        let session = warm_session();
        let rendered = save_cache(session.cache());
        let restored = load_cache(&rendered);
        assert_eq!(restored.len(), session.cache().len());
        for (key, entry) in session.cache().iter() {
            let loaded = restored
                .dependents(entry.chain.deps.iter().next().unwrap())
                .into_iter()
                .find(|c| c.hash == entry.chain.hash)
                .expect("entry restored");
            assert_eq!(loaded.path, entry.chain.path);
            assert_eq!(loaded.source, entry.chain.source);
            assert_eq!(
                loaded.mapping.constraints.to_string(),
                entry.chain.mapping.constraints.to_string()
            );
            assert!(restored.contains(key));
        }
    }

    #[test]
    fn restored_cache_serves_hits() {
        let session = warm_session();
        let calls_cold = session.stats().compose_calls;
        assert!(calls_cold > 0);
        let rendered = save_cache(session.cache());

        // A brand-new session over the same catalog, warmed from the sidecar.
        let catalog = session.catalog().clone();
        let mut fresh = Session::new(catalog);
        fresh.restore_cache(load_cache(&rendered));
        let result = fresh.compose_path("s0", "s3").unwrap();
        assert_eq!(result.compose_calls, 0, "sidecar-restored cache must serve the chain");
    }

    #[test]
    fn malformed_entries_are_skipped() {
        let restored = load_cache("entry zzzz\ngarbage\nentry 1 2 3\n");
        assert!(restored.is_empty());
        let restored = load_cache("");
        assert!(restored.is_empty());
        let manifest = load_versions("version schema\nversion mapping m zz\nversion bogus x 1 2");
        assert!(manifest.is_empty());
        // A corrupt token must reject the whole stats line, not shift the
        // remaining counters into the wrong fields.
        let restored = load_cache("stats 10 x5 3 2 1 0\n");
        assert_eq!(restored.stats(), CacheStats::default());
    }

    #[test]
    fn restored_cache_preserves_eviction_order() {
        let mut session = warm_session();
        // Touch the chain's first pairwise segment so it becomes the most
        // recently used entry despite its key order.
        let refreshed: Vec<_> = session.cache().iter().map(|(key, _)| *key).collect();
        let hot = refreshed[0];
        let mut cache = load_cache(&save_cache(session.cache()));
        assert!(cache.lookup(hot).is_some());
        let rendered = save_cache(&cache);
        let mut restored = load_cache(&rendered);
        // Shrinking to one entry must keep the most recently used one.
        restored.set_capacity(Some(1));
        assert_eq!(restored.len(), 1);
        assert!(restored.contains(&hot), "restored eviction order must follow recency");
        session.restore_cache(restored);
    }

    #[test]
    fn cache_stats_survive_the_sidecar() {
        let session = warm_session();
        let before = session.cache().stats();
        assert!(before.insertions > 0);
        let restored = load_cache(&save_cache(session.cache()));
        assert_eq!(restored.stats(), before, "lifetime counters persist, not double-counted");
    }

    #[test]
    fn versions_and_history_round_trip_through_the_sidecar() {
        let mut session = warm_session();
        // Edit one mapping twice: version 3, three-entry history.
        for constraints in ["project[0](R1) <= R2", "R1 <= project[0](R2)"] {
            session.update_mapping("m1", parse_constraints(constraints).unwrap()).unwrap();
        }
        let catalog = session.catalog();
        assert_eq!(catalog.mapping("m1").unwrap().version, 3);
        let sidecar = save_state(catalog, session.cache());

        // Simulate a fresh CLI invocation: rebuild the catalog from its
        // content-only document, then re-apply the persisted versions.
        let document = mapcomp_algebra::parse_document(&catalog.to_document_string()).unwrap();
        let mut rebuilt = Catalog::new();
        rebuilt.from_document(&document).unwrap();
        assert_eq!(rebuilt.mapping("m1").unwrap().version, 1, "document carries content only");
        let (manifest, _) = load_state(&sidecar);
        let adopted = rebuilt.restore_versions(&manifest);
        assert!(adopted >= 5);
        assert_eq!(rebuilt.mapping("m1").unwrap().version, 3);
        assert_eq!(rebuilt.mapping("m1").unwrap().history.len(), 3);
        assert_eq!(rebuilt.mapping("m0").unwrap().version, 1);
        assert_eq!(rebuilt.schema("s0").unwrap().version, 1);
        assert_eq!(rebuilt.mapping("m1").unwrap().hash, catalog.mapping("m1").unwrap().hash);
    }

    fn temp_sidecar(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("mapcomp_persist_{}_{tag}.memo", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn appended_version_lines_supersede_earlier_ones() {
        let mut session = warm_session();
        let writer = SidecarWriter::new(temp_sidecar("append"));
        writer.append(&save_versions(session.catalog())).unwrap();
        session.update_mapping("m1", parse_constraints("project[0](R1) <= R2").unwrap()).unwrap();
        let entry = session.catalog().mapping("m1").unwrap().clone();
        writer.append(&VersionManifest::of_mapping(&entry).render()).unwrap();
        let (manifest, _) = writer.load();
        assert_eq!(manifest.mappings["m1"].0, 2, "last appended line wins");
        assert_eq!(manifest.mappings["m0"].0, 1, "earlier entries survive the append");
        let _ = std::fs::remove_file(writer.path());
    }

    #[test]
    fn concurrent_appends_lose_no_updates() {
        let writer = SidecarWriter::new(temp_sidecar("race"));
        let session = warm_session();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let writer = &writer;
                let catalog = session.catalog();
                scope.spawn(move || {
                    for round in 1..=5u64 {
                        let mut entry = catalog.mapping("m1").unwrap().clone();
                        entry.name = format!("w{worker}");
                        entry.version = round;
                        writer.append(&VersionManifest::of_mapping(&entry).render()).unwrap();
                    }
                });
            }
        });
        let (manifest, _) = writer.load();
        for worker in 0..4u64 {
            let (version, _) = &manifest.mappings[&format!("w{worker}")];
            assert_eq!(*version, 5, "worker {worker}'s final append must not be lost");
        }
        let _ = std::fs::remove_file(writer.path());
    }

    #[test]
    fn sidecar_writes_break_stale_cross_process_locks() {
        let writer = SidecarWriter::new(temp_sidecar("lockbreak"));
        let lock_path = FileLock::for_file(writer.path()).path().to_path_buf();
        // A crashed process left its lock behind; the PID can never be live.
        std::fs::write(&lock_path, "pid 999999999\n").unwrap();
        writer.append("version mapping m 1 1:00000000000000aa\n").unwrap();
        assert!(!lock_path.exists(), "append must break the stale lock and release its own");
        let (manifest, _) = writer.load();
        assert_eq!(manifest.mappings["m"].0, 1);
        let _ = std::fs::remove_file(writer.path());
    }

    #[test]
    fn rewrite_compacts_appended_state() {
        let session = warm_session();
        let writer = SidecarWriter::new(temp_sidecar("compact"));
        for _ in 0..3 {
            writer.append(&save_state(session.catalog(), session.cache())).unwrap();
        }
        let appended_len = std::fs::read_to_string(writer.path()).unwrap().len();
        writer.rewrite(&save_state(session.catalog(), session.cache())).unwrap();
        let compacted = std::fs::read_to_string(writer.path()).unwrap();
        assert!(compacted.len() < appended_len, "rewrite must compact the sidecar");
        let (manifest, cache) = writer.load();
        assert!(!manifest.is_empty());
        assert_eq!(cache.len(), session.cache().len());
        assert_eq!(cache.stats(), session.cache().stats());
        let _ = std::fs::remove_file(writer.path());
    }

    #[test]
    fn positioned_deltas_round_trip_with_and_without_positions() {
        let delta = DeltaRecord::Invalidate { mapping: "m one".to_string() };
        let legacy = render_delta(&delta);
        assert_eq!(parse_positioned_delta(&legacy), Some((None, delta.clone())));
        let position = Position::new(3, 41);
        let positioned = render_positioned_delta(position, &delta);
        assert_eq!(positioned, "delta 3 41 invalidate m%20one");
        assert_eq!(parse_positioned_delta(&positioned), Some((Some(position), delta.clone())));
        assert_eq!(parse_delta(&positioned), Some(delta));
        // Every record kind carries a position the same way.
        for record in [
            DeltaRecord::Schema { decl: "schema s { R/1; }".to_string() },
            DeltaRecord::Mapping { decl: "mapping m : a -> b { R <= S; }".to_string() },
            DeltaRecord::Evict { key: (1, 2, 3) },
            DeltaRecord::Stats(CacheStats { hits: 1, ..CacheStats::default() }),
        ] {
            let line = render_positioned_delta(position, &record);
            assert_eq!(parse_positioned_delta(&line), Some((Some(position), record)));
        }
    }

    #[test]
    fn generation_header_and_positions_drive_the_resume_position() {
        // No header, no positions: origin.
        assert_eq!(load_sidecar("").next_position(), Position::ZERO);
        // A header alone sets the resume position.
        let text = render_generation_marker(Position::new(4, 0));
        assert_eq!(load_sidecar(&text).next_position(), Position::new(4, 0));
        // Positioned records advance it past the header.
        let mut text = render_generation_marker(Position::new(4, 0));
        for seq in 0..3 {
            let delta = DeltaRecord::Invalidate { mapping: format!("m{seq}") };
            text.push_str(&render_positioned_delta(Position::new(4, seq), &delta));
            text.push('\n');
        }
        let state = load_sidecar(&text);
        assert_eq!(state.next_position(), Position::new(4, 3));
        // A later header (generation boundary) supersedes earlier positions.
        text.push_str(&render_generation_marker(Position::new(5, 0)));
        assert_eq!(load_sidecar(&text).next_position(), Position::new(5, 0));
        // Positions order generation-first.
        assert!(Position::new(4, 9) < Position::new(5, 0));
        assert_eq!(Position::new(4, 1).next(), Position::new(4, 2));
    }

    #[test]
    fn positioned_deltas_apply_like_legacy_ones() {
        let session = warm_session();
        let mut legacy = save_cache(session.cache());
        let mut positioned = legacy.clone();
        let key = *session.cache().iter().next().unwrap().0;
        let evict = DeltaRecord::Evict { key };
        legacy.push_str(&render_delta(&evict));
        legacy.push('\n');
        positioned.push_str(&render_positioned_delta(Position::new(1, 0), &evict));
        positioned.push('\n');
        let legacy_state = load_sidecar(&legacy);
        let positioned_state = load_sidecar(&positioned);
        assert!(!legacy_state.cache.contains(&key));
        assert!(!positioned_state.cache.contains(&key));
        assert_eq!(legacy_state.cache.len(), positioned_state.cache.len());
        assert_eq!(legacy_state.next_position(), Position::ZERO);
        assert_eq!(positioned_state.next_position(), Position::new(1, 1));
    }

    #[test]
    fn out_of_session_edits_advance_the_restored_version() {
        let session = warm_session();
        let sidecar = save_state(session.catalog(), session.cache());
        // The document is edited by hand between invocations: m1 has new
        // content, so its recorded hash no longer matches.
        let mut rebuilt = session.catalog().clone();
        rebuilt.update_mapping("m1", parse_constraints("project[0](R1) <= R2").unwrap()).unwrap();
        let document = mapcomp_algebra::parse_document(&rebuilt.to_document_string()).unwrap();
        let mut fresh = Catalog::new();
        fresh.from_document(&document).unwrap();
        let (manifest, _) = load_state(&sidecar);
        fresh.restore_versions(&manifest);
        // Recorded version 1 + one out-of-session edit = version 2, with the
        // new hash appended to the history.
        let entry = fresh.mapping("m1").unwrap();
        assert_eq!(entry.version, 2);
        assert_eq!(entry.history.len(), 2);
        assert_eq!(entry.history.last().unwrap().1, entry.hash);
    }
}
