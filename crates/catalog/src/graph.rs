//! The composition graph: schemas are nodes, mappings are directed edges.
//!
//! Path resolution answers "compose σ_from → σ_to" by finding a directed
//! path of mappings between the two schemas. Breadth-first search returns a
//! fewest-hops path (fewer pairwise compositions is both faster and less
//! likely to hit a best-effort failure); ties are broken deterministically by
//! mapping-name order, so the same catalog always resolves the same path.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::CatalogError;
use crate::store::Catalog;

/// Resolve a fewest-hops path of mapping names from `from` to `to`.
///
/// Returns [`CatalogError::EmptyPath`] when `from == to` (there is nothing to
/// compose) and [`CatalogError::NoPath`] when the target is unreachable.
/// Borrows straight out of the catalog — no per-call snapshot allocation on
/// this hot path.
pub fn resolve_path(catalog: &Catalog, from: &str, to: &str) -> Result<Vec<String>, CatalogError> {
    catalog.schema(from)?;
    catalog.schema(to)?;
    // Adjacency: source schema → [(mapping name, target schema)], name-sorted
    // (BTreeMap iteration order) for deterministic tie-breaking.
    let mut adjacency: BTreeMap<&str, Vec<(&str, &str)>> = BTreeMap::new();
    for entry in catalog.mappings() {
        if entry.source == entry.target {
            continue; // self-loops never shorten a path
        }
        adjacency.entry(&entry.source).or_default().push((&entry.name, &entry.target));
    }
    bfs(&adjacency, from, to)
}

/// Resolve a fewest-hops path over an explicit edge snapshot — the form the
/// concurrent shared catalog uses, where the graph is captured once under
/// the shard read locks and then searched without holding any lock.
///
/// `schemas` must list every registered schema name (for existence checks);
/// `edges` holds `(mapping, source schema, target schema)` triples in any
/// order (ties are broken by mapping name, as in [`resolve_path`]).
pub fn resolve_path_in(
    schemas: &BTreeSet<String>,
    edges: &[(String, String, String)],
    from: &str,
    to: &str,
) -> Result<Vec<String>, CatalogError> {
    for name in [from, to] {
        if !schemas.contains(name) {
            return Err(CatalogError::UnknownSchema(name.to_string()));
        }
    }
    let mut adjacency: BTreeMap<&str, Vec<(&str, &str)>> = BTreeMap::new();
    for (name, source, target) in edges {
        if source == target {
            continue; // self-loops never shorten a path
        }
        adjacency.entry(source.as_str()).or_default().push((name.as_str(), target.as_str()));
    }
    for targets in adjacency.values_mut() {
        targets.sort();
    }
    bfs(&adjacency, from, to)
}

/// Breadth-first fewest-hops search over a prebuilt adjacency map whose edge
/// lists are sorted by mapping name (deterministic tie-breaking).
fn bfs(
    adjacency: &BTreeMap<&str, Vec<(&str, &str)>>,
    from: &str,
    to: &str,
) -> Result<Vec<String>, CatalogError> {
    if from == to {
        return Err(CatalogError::EmptyPath { schema: from.to_string() });
    }
    let mut predecessor: BTreeMap<&str, (&str, &str)> = BTreeMap::new(); // schema → (via mapping, from schema)
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        if node == to {
            break;
        }
        let Some(edges) = adjacency.get(node) else { continue };
        for (mapping, next) in edges {
            if *next == from || predecessor.contains_key(next) {
                continue;
            }
            predecessor.insert(next, (mapping, node));
            queue.push_back(next);
        }
    }

    if !predecessor.contains_key(to) {
        return Err(CatalogError::NoPath { from: from.to_string(), to: to.to_string() });
    }
    let mut path = Vec::new();
    let mut node = to;
    while node != from {
        let (mapping, previous) = predecessor[node];
        path.push(mapping.to_string());
        node = previous;
    }
    path.reverse();
    Ok(path)
}

/// All schemas reachable from `from` (excluding `from` itself), with the
/// fewest-hops distance — the catalog's "what can I compose to?" query.
pub fn reachable(catalog: &Catalog, from: &str) -> Result<BTreeMap<String, usize>, CatalogError> {
    catalog.schema(from)?;
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for entry in catalog.mappings() {
        adjacency.entry(&entry.source).or_default().push(&entry.target);
    }
    let mut distance: BTreeMap<String, usize> = BTreeMap::new();
    let mut queue: VecDeque<(&str, usize)> = VecDeque::new();
    queue.push_back((from, 0));
    while let Some((node, hops)) = queue.pop_front() {
        let Some(edges) = adjacency.get(node) else { continue };
        for next in edges {
            if *next == from || distance.contains_key(*next) {
                continue;
            }
            distance.insert(next.to_string(), hops + 1);
            queue.push_back((next, hops + 1));
        }
    }
    Ok(distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::ConstraintSet;
    use mapcomp_algebra::Signature;

    fn chain_catalog(n: usize) -> Catalog {
        let mut catalog = Catalog::new();
        for i in 0..n {
            catalog.add_schema(format!("s{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..n - 1 {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("s{i}"),
                    &format!("s{}", i + 1),
                    ConstraintSet::new(),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn resolves_multi_hop_paths() {
        let catalog = chain_catalog(5);
        let path = resolve_path(&catalog, "s0", "s4").unwrap();
        assert_eq!(path, vec!["m0", "m1", "m2", "m3"]);
        let path = resolve_path(&catalog, "s1", "s3").unwrap();
        assert_eq!(path, vec!["m1", "m2"]);
    }

    #[test]
    fn prefers_fewest_hops_and_breaks_ties_by_name() {
        let mut catalog = chain_catalog(3);
        // Direct shortcut s0 → s2.
        catalog.add_mapping("zshort", "s0", "s2", ConstraintSet::new()).unwrap();
        assert_eq!(resolve_path(&catalog, "s0", "s2").unwrap(), vec!["zshort"]);
        // A second direct edge with an earlier name wins the tie.
        catalog.add_mapping("ashort", "s0", "s2", ConstraintSet::new()).unwrap();
        assert_eq!(resolve_path(&catalog, "s0", "s2").unwrap(), vec!["ashort"]);
    }

    #[test]
    fn unreachable_and_trivial_paths_error() {
        let catalog = chain_catalog(3);
        // Directed: no backwards path.
        assert!(matches!(resolve_path(&catalog, "s2", "s0"), Err(CatalogError::NoPath { .. })));
        assert!(matches!(resolve_path(&catalog, "s1", "s1"), Err(CatalogError::EmptyPath { .. })));
        assert!(matches!(
            resolve_path(&catalog, "s0", "nope"),
            Err(CatalogError::UnknownSchema(_))
        ));
    }

    #[test]
    fn reachability_reports_distances() {
        let catalog = chain_catalog(4);
        let reach = reachable(&catalog, "s0").unwrap();
        assert_eq!(reach.get("s1"), Some(&1));
        assert_eq!(reach.get("s3"), Some(&3));
        assert_eq!(reach.get("s0"), None);
        assert!(reachable(&catalog, "s3").unwrap().is_empty());
    }
}
