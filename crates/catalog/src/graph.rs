//! The composition graph: schemas are nodes, mappings are directed edges.
//!
//! Path resolution answers "compose σ_from → σ_to" by finding a directed
//! path of mappings between the two schemas. Under the default
//! [`PathCost::Hops`] a breadth-first search returns a fewest-hops path
//! (fewer pairwise compositions is both faster and less likely to hit a
//! best-effort failure). Under [`PathCost::OpCount`] a Dijkstra search
//! instead minimises the estimated operator-count growth of the fold — the
//! sum of each traversed mapping's constraint operator count — so a longer
//! path of cheap copy mappings beats a short path through operator-heavy
//! mappings. Ties are broken deterministically (fewest hops, then
//! mapping-name order), so the same catalog always resolves the same path.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mapcomp_algebra::ConstraintSet;

use crate::error::CatalogError;
use crate::store::Catalog;

/// How path resolution scores candidate paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PathCost {
    /// Fewest hops: every mapping costs 1 (breadth-first search).
    #[default]
    Hops,
    /// Cheapest estimated operator-count growth: every mapping costs
    /// `1 + op_count(constraints)`, so composing through an operator-heavy
    /// mapping is penalised even when it shortens the path.
    OpCount,
}

/// The edge weight of a mapping under [`PathCost::OpCount`]: one (the hop
/// itself) plus the operator count of its constraints, a proxy for how much
/// the pairwise composition through it grows the chain.
pub fn edge_cost(constraints: &ConstraintSet) -> u64 {
    1 + constraints.op_count() as u64
}

/// A weighted composition-graph edge: `(mapping, source schema, target
/// schema, weight)` — the snapshot form consumed by
/// [`resolve_path_costed_in`].
pub type WeightedEdge = (String, String, String, u64);

/// Resolve a fewest-hops path of mapping names from `from` to `to`.
///
/// Returns [`CatalogError::EmptyPath`] when `from == to` (there is nothing to
/// compose) and [`CatalogError::NoPath`] when the target is unreachable.
/// Borrows straight out of the catalog — no per-call snapshot allocation on
/// this hot path.
pub fn resolve_path(catalog: &Catalog, from: &str, to: &str) -> Result<Vec<String>, CatalogError> {
    catalog.schema(from)?;
    catalog.schema(to)?;
    // Adjacency: source schema → [(mapping name, target schema)], name-sorted
    // (BTreeMap iteration order) for deterministic tie-breaking.
    let mut adjacency: BTreeMap<&str, Vec<(&str, &str)>> = BTreeMap::new();
    for entry in catalog.mappings() {
        if entry.source == entry.target {
            continue; // self-loops never shorten a path
        }
        adjacency.entry(&entry.source).or_default().push((&entry.name, &entry.target));
    }
    bfs(&adjacency, from, to)
}

/// Resolve a fewest-hops path over an explicit edge snapshot — the form the
/// concurrent shared catalog uses, where the graph is captured once under
/// the shard read locks and then searched without holding any lock.
///
/// `schemas` must list every registered schema name (for existence checks);
/// `edges` holds `(mapping, source schema, target schema)` triples in any
/// order (ties are broken by mapping name, as in [`resolve_path`]).
pub fn resolve_path_in(
    schemas: &BTreeSet<String>,
    edges: &[(String, String, String)],
    from: &str,
    to: &str,
) -> Result<Vec<String>, CatalogError> {
    for name in [from, to] {
        if !schemas.contains(name) {
            return Err(CatalogError::UnknownSchema(name.to_string()));
        }
    }
    let mut adjacency: BTreeMap<&str, Vec<(&str, &str)>> = BTreeMap::new();
    for (name, source, target) in edges {
        if source == target {
            continue; // self-loops never shorten a path
        }
        adjacency.entry(source.as_str()).or_default().push((name.as_str(), target.as_str()));
    }
    for targets in adjacency.values_mut() {
        targets.sort();
    }
    bfs(&adjacency, from, to)
}

/// Resolve a path under an explicit cost model: [`PathCost::Hops`] delegates
/// to [`resolve_path`]; [`PathCost::OpCount`] runs a deterministic Dijkstra
/// search weighted by [`edge_cost`].
pub fn resolve_path_with(
    catalog: &Catalog,
    from: &str,
    to: &str,
    cost: PathCost,
) -> Result<Vec<String>, CatalogError> {
    match cost {
        PathCost::Hops => resolve_path(catalog, from, to),
        PathCost::OpCount => {
            catalog.schema(from)?;
            catalog.schema(to)?;
            let mut adjacency: BTreeMap<&str, Vec<(&str, &str, u64)>> = BTreeMap::new();
            for entry in catalog.mappings() {
                if entry.source == entry.target {
                    continue; // self-loops never cheapen a path
                }
                adjacency.entry(&entry.source).or_default().push((
                    &entry.name,
                    &entry.target,
                    edge_cost(&entry.constraints),
                ));
            }
            dijkstra(&adjacency, from, to)
        }
    }
}

/// Resolve a cheapest path over an explicit weighted edge snapshot — the
/// form the concurrent shared catalog uses for [`PathCost::OpCount`].
/// `edges` holds `(mapping, source schema, target schema, weight)` tuples in
/// any order; ties are broken by fewest hops, then mapping name.
pub fn resolve_path_costed_in(
    schemas: &BTreeSet<String>,
    edges: &[WeightedEdge],
    from: &str,
    to: &str,
) -> Result<Vec<String>, CatalogError> {
    for name in [from, to] {
        if !schemas.contains(name) {
            return Err(CatalogError::UnknownSchema(name.to_string()));
        }
    }
    let mut adjacency: BTreeMap<&str, Vec<(&str, &str, u64)>> = BTreeMap::new();
    for (name, source, target, weight) in edges {
        if source == target {
            continue; // self-loops never cheapen a path
        }
        adjacency.entry(source.as_str()).or_default().push((
            name.as_str(),
            target.as_str(),
            *weight,
        ));
    }
    for targets in adjacency.values_mut() {
        targets.sort();
    }
    dijkstra(&adjacency, from, to)
}

/// Deterministic Dijkstra over a weighted adjacency map: the frontier is a
/// `BTreeSet` keyed `(cost, hops, node)`, and an equal-cost relaxation only
/// replaces a recorded predecessor when its `(hops, mapping, previous)`
/// tuple is lexicographically smaller, so resolution never depends on edge
/// insertion order.
fn dijkstra(
    adjacency: &BTreeMap<&str, Vec<(&str, &str, u64)>>,
    from: &str,
    to: &str,
) -> Result<Vec<String>, CatalogError> {
    if from == to {
        return Err(CatalogError::EmptyPath { schema: from.to_string() });
    }
    // node → (cost, hops, via mapping, previous node)
    let mut best: BTreeMap<&str, (u64, usize, &str, &str)> = BTreeMap::new();
    let mut frontier: BTreeSet<(u64, usize, &str)> = BTreeSet::new();
    let mut settled: BTreeSet<&str> = BTreeSet::new();
    frontier.insert((0, 0, from));
    while let Some(&(cost, hops, node)) = frontier.iter().next() {
        frontier.remove(&(cost, hops, node));
        if !settled.insert(node) {
            continue;
        }
        if node == to {
            break;
        }
        let Some(edges) = adjacency.get(node) else { continue };
        for &(mapping, next, weight) in edges {
            if next == from || settled.contains(next) {
                continue;
            }
            let candidate = (cost + weight, hops + 1, mapping, node);
            let improves = match best.get(next) {
                None => true,
                Some(recorded) => candidate < *recorded,
            };
            if improves {
                if let Some(&(old_cost, old_hops, _, _)) = best.get(next) {
                    frontier.remove(&(old_cost, old_hops, next));
                }
                best.insert(next, candidate);
                frontier.insert((candidate.0, candidate.1, next));
            }
        }
    }
    if !settled.contains(to) {
        return Err(CatalogError::NoPath { from: from.to_string(), to: to.to_string() });
    }
    let mut path = Vec::new();
    let mut node = to;
    while node != from {
        let (_, _, mapping, previous) = best[node];
        path.push(mapping.to_string());
        node = previous;
    }
    path.reverse();
    Ok(path)
}

/// Breadth-first fewest-hops search over a prebuilt adjacency map whose edge
/// lists are sorted by mapping name (deterministic tie-breaking).
fn bfs(
    adjacency: &BTreeMap<&str, Vec<(&str, &str)>>,
    from: &str,
    to: &str,
) -> Result<Vec<String>, CatalogError> {
    if from == to {
        return Err(CatalogError::EmptyPath { schema: from.to_string() });
    }
    let mut predecessor: BTreeMap<&str, (&str, &str)> = BTreeMap::new(); // schema → (via mapping, from schema)
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        if node == to {
            break;
        }
        let Some(edges) = adjacency.get(node) else { continue };
        for (mapping, next) in edges {
            if *next == from || predecessor.contains_key(next) {
                continue;
            }
            predecessor.insert(next, (mapping, node));
            queue.push_back(next);
        }
    }

    if !predecessor.contains_key(to) {
        return Err(CatalogError::NoPath { from: from.to_string(), to: to.to_string() });
    }
    let mut path = Vec::new();
    let mut node = to;
    while node != from {
        let (mapping, previous) = predecessor[node];
        path.push(mapping.to_string());
        node = previous;
    }
    path.reverse();
    Ok(path)
}

/// All schemas reachable from `from` (excluding `from` itself), with the
/// fewest-hops distance — the catalog's "what can I compose to?" query.
pub fn reachable(catalog: &Catalog, from: &str) -> Result<BTreeMap<String, usize>, CatalogError> {
    catalog.schema(from)?;
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for entry in catalog.mappings() {
        adjacency.entry(&entry.source).or_default().push(&entry.target);
    }
    let mut distance: BTreeMap<String, usize> = BTreeMap::new();
    let mut queue: VecDeque<(&str, usize)> = VecDeque::new();
    queue.push_back((from, 0));
    while let Some((node, hops)) = queue.pop_front() {
        let Some(edges) = adjacency.get(node) else { continue };
        for next in edges {
            if *next == from || distance.contains_key(*next) {
                continue;
            }
            distance.insert(next.to_string(), hops + 1);
            queue.push_back((next, hops + 1));
        }
    }
    Ok(distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::ConstraintSet;
    use mapcomp_algebra::Signature;

    fn chain_catalog(n: usize) -> Catalog {
        let mut catalog = Catalog::new();
        for i in 0..n {
            catalog.add_schema(format!("s{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..n - 1 {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("s{i}"),
                    &format!("s{}", i + 1),
                    ConstraintSet::new(),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn resolves_multi_hop_paths() {
        let catalog = chain_catalog(5);
        let path = resolve_path(&catalog, "s0", "s4").unwrap();
        assert_eq!(path, vec!["m0", "m1", "m2", "m3"]);
        let path = resolve_path(&catalog, "s1", "s3").unwrap();
        assert_eq!(path, vec!["m1", "m2"]);
    }

    #[test]
    fn prefers_fewest_hops_and_breaks_ties_by_name() {
        let mut catalog = chain_catalog(3);
        // Direct shortcut s0 → s2.
        catalog.add_mapping("zshort", "s0", "s2", ConstraintSet::new()).unwrap();
        assert_eq!(resolve_path(&catalog, "s0", "s2").unwrap(), vec!["zshort"]);
        // A second direct edge with an earlier name wins the tie.
        catalog.add_mapping("ashort", "s0", "s2", ConstraintSet::new()).unwrap();
        assert_eq!(resolve_path(&catalog, "s0", "s2").unwrap(), vec!["ashort"]);
    }

    #[test]
    fn unreachable_and_trivial_paths_error() {
        let catalog = chain_catalog(3);
        // Directed: no backwards path.
        assert!(matches!(resolve_path(&catalog, "s2", "s0"), Err(CatalogError::NoPath { .. })));
        assert!(matches!(resolve_path(&catalog, "s1", "s1"), Err(CatalogError::EmptyPath { .. })));
        assert!(matches!(
            resolve_path(&catalog, "s0", "nope"),
            Err(CatalogError::UnknownSchema(_))
        ));
    }

    /// Two routes s0 → s3: a 2-hop path through an operator-heavy mapping
    /// and a 3-hop path of plain copies.
    fn costed_catalog() -> Catalog {
        use mapcomp_algebra::parse_constraints;
        let mut catalog = Catalog::new();
        for i in 0..4 {
            catalog.add_schema(format!("s{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        // Cheap 3-hop chain: plain copies, edge cost 1 + 0 each.
        for i in 0..3 {
            catalog
                .add_mapping(
                    format!("copy{i}"),
                    &format!("s{i}"),
                    &format!("s{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        // Expensive 2-hop shortcut through s9: heavy operator trees.
        catalog.add_schema("s9", Signature::from_arities([("R9", 1)]));
        catalog
            .add_mapping(
                "heavy1",
                "s0",
                "s9",
                parse_constraints("project[0](select[#0 = #1](R0 * R0)) <= R9").unwrap(),
            )
            .unwrap();
        catalog
            .add_mapping(
                "heavy2",
                "s9",
                "s3",
                parse_constraints("project[0](select[#0 = #1](R9 * R9)) <= R3").unwrap(),
            )
            .unwrap();
        catalog
    }

    #[test]
    fn op_count_cost_prefers_cheap_three_hops_over_expensive_two() {
        let catalog = costed_catalog();
        // Hop count alone picks the 2-hop shortcut.
        assert_eq!(
            resolve_path_with(&catalog, "s0", "s3", PathCost::Hops).unwrap(),
            vec!["heavy1", "heavy2"]
        );
        // Operator-count cost picks the cheaper 3-hop copy chain: the copies
        // cost 1 each (no operators) while each heavy edge carries a
        // product + selection + projection tree.
        assert_eq!(
            resolve_path_with(&catalog, "s0", "s3", PathCost::OpCount).unwrap(),
            vec!["copy0", "copy1", "copy2"]
        );
    }

    #[test]
    fn costed_resolution_matches_bfs_on_uniform_weights() {
        let catalog = chain_catalog(5);
        let schemas: BTreeSet<String> = catalog.schemas().map(|entry| entry.name.clone()).collect();
        let edges: Vec<(String, String, String, u64)> = catalog
            .mappings()
            .map(|entry| (entry.name.clone(), entry.source.clone(), entry.target.clone(), 1))
            .collect();
        assert_eq!(
            resolve_path_costed_in(&schemas, &edges, "s0", "s4").unwrap(),
            resolve_path(&catalog, "s0", "s4").unwrap()
        );
        assert!(matches!(
            resolve_path_costed_in(&schemas, &edges, "s4", "s0"),
            Err(CatalogError::NoPath { .. })
        ));
        assert!(matches!(
            resolve_path_costed_in(&schemas, &edges, "s1", "s1"),
            Err(CatalogError::EmptyPath { .. })
        ));
        assert!(matches!(
            resolve_path_costed_in(&schemas, &edges, "s0", "nope"),
            Err(CatalogError::UnknownSchema(_))
        ));
    }

    #[test]
    fn costed_ties_break_by_hops_then_name() {
        let mut catalog = chain_catalog(3);
        // A direct edge whose weight equals the 2-hop chain's total: fewer
        // hops wins the tie.
        catalog.add_mapping("direct", "s0", "s2", ConstraintSet::new()).unwrap();
        let schemas: BTreeSet<String> = catalog.schemas().map(|entry| entry.name.clone()).collect();
        let mut edges: Vec<(String, String, String, u64)> = catalog
            .mappings()
            .map(|entry| (entry.name.clone(), entry.source.clone(), entry.target.clone(), 1))
            .collect();
        for edge in &mut edges {
            if edge.0 == "direct" {
                edge.3 = 2;
            }
        }
        assert_eq!(resolve_path_costed_in(&schemas, &edges, "s0", "s2").unwrap(), vec!["direct"]);
        // An equal-cost, equal-hops alternative with an earlier name wins.
        edges.push(("adirect".to_string(), "s0".to_string(), "s2".to_string(), 2));
        assert_eq!(resolve_path_costed_in(&schemas, &edges, "s0", "s2").unwrap(), vec!["adirect"]);
    }

    #[test]
    fn reachability_reports_distances() {
        let catalog = chain_catalog(4);
        let reach = reachable(&catalog, "s0").unwrap();
        assert_eq!(reach.get("s1"), Some(&1));
        assert_eq!(reach.get("s3"), Some(&3));
        assert_eq!(reach.get("s0"), None);
        assert!(reachable(&catalog, "s3").unwrap().is_empty());
    }
}
