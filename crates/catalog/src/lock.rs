//! Cross-process sidecar locking: an advisory `.lock` file with
//! create-exclusive semantics and PID-liveness stale-lock detection.
//!
//! [`crate::persist::SidecarWriter`]'s internal mutex serialises writers
//! *within one process*; two CLI invocations (or a server and a CLI) racing
//! on the same sidecar would still interleave their rewrites. The
//! [`FileLock`] here closes that gap: every append/rewrite first stages a
//! `pid <id>` holder line in a per-acquirer sibling and `hard_link`s it to
//! the sibling `<sidecar>.lock` path — an atomic create-exclusive that
//! never exposes a partially-written lock file — and removes it when done.
//!
//! A process that dies while holding the lock would otherwise block every
//! later writer forever, so contenders probe the recorded PID for liveness
//! (`/proc/<pid>` on Linux; elsewhere the probe conservatively reports
//! "alive") and break the lock when the holder is gone. Breaking is
//! serialised by an atomic *rename* to a per-process sibling — exactly one
//! contender wins the steal, the stolen file's PID is re-checked, and a
//! lock that turns out to be freshly re-acquired is handed back via
//! `hard_link` (which refuses to clobber a newer lock) — so two breakers
//! cannot both unlink and then race each other's rewrites. If the hand-back
//! loses a further race (a third contender grabbed the empty slot first),
//! exclusivity is briefly shared; guards bound the damage by removing the
//! lock file at drop time only when it still records *their own* PID, so a
//! stolen holder never deletes a successor's lock.
//!
//! PID recycling — a crashed holder's PID handed to an unrelated live
//! process — is closed by recording the holder's *start time* next to the
//! PID (`pid <id> start <ticks>`, the kernel's clock-tick stamp from
//! `/proc/<pid>/stat`): a contender breaks the lock unless a live process
//! with the *same* PID **and** the *same* start time exists, and two
//! processes can never share both. Lock files written by older builds
//! (bare `pid <id>` lines) fall back to the PID-liveness probe alone.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// An advisory cross-process lock backed by a create-exclusive `.lock` file.
#[derive(Debug)]
pub struct FileLock {
    path: PathBuf,
}

/// Holding proof for a [`FileLock`]; removes the lock file on drop.
#[derive(Debug)]
pub struct FileLockGuard {
    path: PathBuf,
}

impl Drop for FileLockGuard {
    fn drop(&mut self) {
        // Remove only a lock file this process still owns: if a breaker
        // mistakenly stole and recycled the slot while we held it, the file
        // on disk now records another holder's PID — deleting it would
        // admit yet another writer behind that holder's back.
        let ours = match std::fs::read_to_string(&self.path) {
            Ok(text) => parse_pid(&text) == Some(std::process::id()),
            Err(_) => false,
        };
        if ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl FileLock {
    /// The lock guarding `file`: its sibling `<file>.lock`.
    pub fn for_file(file: &Path) -> Self {
        let mut name = file.file_name().unwrap_or_default().to_os_string();
        name.push(".lock");
        FileLock { path: file.with_file_name(name) }
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Try to take the lock once: stage a file holding this process's
    /// holder line and `hard_link` it into place — an atomic
    /// create-exclusive *with content*. (Creating the lock file directly
    /// and writing the line afterwards leaves a window where contenders
    /// read an *empty* lock file, parse it as a torn write, and break a
    /// live holder's lock.) Returns `None` when another holder exists
    /// (after breaking it if its recorded PID is no longer alive — the next
    /// attempt can then succeed).
    pub fn try_acquire(&self) -> io::Result<Option<FileLockGuard>> {
        static STAGE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let pid = std::process::id();
        let mut name = self.path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(
            ".stage{pid}.{}",
            STAGE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let stage = self.path.with_file_name(name);
        let mut file = std::fs::OpenOptions::new().write(true).create_new(true).open(&stage)?;
        let write_result = match process_start_time(pid) {
            Some(start) => writeln!(file, "pid {pid} start {start}"),
            None => writeln!(file, "pid {pid}"),
        }
        .and_then(|()| file.flush());
        drop(file);
        let linked = write_result.map(|()| std::fs::hard_link(&stage, &self.path));
        let _ = std::fs::remove_file(&stage);
        match linked? {
            Ok(()) => Ok(Some(FileLockGuard { path: self.path.clone() })),
            Err(error) if error.kind() == io::ErrorKind::AlreadyExists => {
                if self.holder_is_stale() {
                    self.break_stale();
                }
                Ok(None)
            }
            Err(error) => Err(error),
        }
    }

    /// Break a (probed-stale) lock atomically: *rename* it to a per-process
    /// sibling first — exactly one contender's rename succeeds, so two
    /// breakers can never both unlink and then race each other's fresh
    /// locks. The stolen file's PID is re-checked after the rename; a lock
    /// that turns out to belong to a holder who acquired between the probe
    /// and the rename is handed back via `hard_link`, which (unlike rename)
    /// refuses to clobber a newer lock.
    fn break_stale(&self) {
        // Re-probe immediately before the steal: another contender may have
        // broken the stale lock and acquired a fresh one since our caller's
        // probe, and stealing a live holder's lock — even with the hand-back
        // below — briefly weakens exclusivity.
        if !self.holder_is_stale() {
            return;
        }
        let mut name = self.path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".break{}", std::process::id()));
        let hijack = self.path.with_file_name(name);
        if std::fs::rename(&self.path, &hijack).is_err() {
            return; // released, or another contender won the break
        }
        let still_stale = match std::fs::read_to_string(&hijack) {
            Ok(text) => match parse_holder(&text) {
                Some((pid, start)) => !holder_alive(pid, start),
                None => true,
            },
            Err(_) => true,
        };
        if !still_stale {
            let _ = std::fs::hard_link(&hijack, &self.path);
        }
        let _ = std::fs::remove_file(&hijack);
    }

    /// Acquire the lock, retrying (and breaking stale holders) until
    /// `timeout` elapses. Fails with [`io::ErrorKind::TimedOut`] when a live
    /// holder keeps the lock the whole time.
    pub fn acquire(&self, timeout: Duration) -> io::Result<FileLockGuard> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(guard) = self.try_acquire()? {
                return Ok(guard);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("lock file {} is held by a live process", self.path.display()),
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Is the current holder provably dead (or provably a PID-recycled
    /// impostor)? Unreadable-but-present lock files report *not* stale (the
    /// holder may be mid-write); a readable file whose `pid` line is missing
    /// or malformed is treated as stale (a torn write from a crashed
    /// holder).
    fn holder_is_stale(&self) -> bool {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => match parse_holder(&text) {
                Some((pid, start)) => !holder_alive(pid, start),
                None => true,
            },
            Err(_) => false,
        }
    }
}

/// Parse the holder line of a lock file: `pid <id>` (older builds) or
/// `pid <id> start <ticks>`. Returns the PID and the recorded start time,
/// if any.
fn parse_holder(text: &str) -> Option<(u32, Option<u64>)> {
    let rest = text.lines().next()?.trim().strip_prefix("pid ")?;
    let mut tokens = rest.split_whitespace();
    let pid: u32 = tokens.next()?.parse().ok()?;
    let start = match tokens.next() {
        Some("start") => tokens.next().and_then(|ticks| ticks.parse().ok()),
        _ => None,
    };
    Some((pid, start))
}

/// Parse the PID off a lock file's holder line (either format).
fn parse_pid(text: &str) -> Option<u32> {
    parse_holder(text).map(|(pid, _)| pid)
}

/// Is the recorded holder still the *same process*? Liveness of the PID is
/// necessary; when both the lock file and `/proc` provide a start time they
/// must also match — a live process reusing a dead holder's PID has a
/// different start stamp and must not keep the lock alive. Old-format lock
/// files (no recorded start) and platforms without `/proc` fall back to the
/// PID probe alone.
fn holder_alive(pid: u32, recorded_start: Option<u64>) -> bool {
    if !pid_alive(pid) {
        return false;
    }
    match (recorded_start, process_start_time(pid)) {
        (Some(recorded), Some(current)) => recorded == current,
        _ => true,
    }
}

/// The kernel's start-time stamp for `pid` (field 22 of `/proc/<pid>/stat`,
/// in clock ticks since boot), or `None` where unavailable (non-Linux
/// platforms, dead or unreadable process). The process name field can
/// contain spaces and parentheses, so fields are counted from after the
/// *last* `)`.
pub fn process_start_time(pid: u32) -> Option<u64> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let rest = &stat[stat.rfind(')')? + 1..];
    // `rest` begins at field 3 (process state); starttime is field 22.
    rest.split_whitespace().nth(19)?.parse().ok()
}

/// Liveness probe for a recorded lock-holder PID. On platforms with a
/// `/proc` filesystem this checks `/proc/<pid>`; elsewhere it conservatively
/// reports alive (a lock is then only released by its holder, never broken).
pub fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.is_dir() {
        proc_root.join(pid.to_string()).exists()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_target(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("mapcomp_lock_{}_{tag}.memo", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(FileLock::for_file(&path).path());
        path
    }

    #[test]
    fn lock_is_exclusive_and_released_on_drop() {
        let target = temp_target("exclusive");
        let lock = FileLock::for_file(&target);
        let guard = lock.try_acquire().unwrap().expect("first acquire succeeds");
        assert!(lock.path().exists());
        assert!(lock.try_acquire().unwrap().is_none(), "held lock must not be re-acquired");
        drop(guard);
        assert!(!lock.path().exists(), "guard drop removes the lock file");
        let again = lock.try_acquire().unwrap();
        assert!(again.is_some(), "released lock can be taken again");
    }

    #[test]
    fn stale_lock_from_a_dead_pid_is_broken() {
        let target = temp_target("stale");
        let lock = FileLock::for_file(&target);
        // PIDs above the kernel's default pid_max (4194304) never exist.
        std::fs::write(lock.path(), "pid 999999999\n").unwrap();
        let guard = lock.acquire(Duration::from_secs(2)).expect("stale lock must be broken");
        drop(guard);
    }

    #[test]
    fn malformed_lock_files_are_treated_as_stale() {
        let target = temp_target("garbage");
        let lock = FileLock::for_file(&target);
        std::fs::write(lock.path(), "not a pid line").unwrap();
        let guard = lock.acquire(Duration::from_secs(2)).expect("torn lock must be broken");
        drop(guard);
    }

    #[test]
    fn lock_file_records_pid_and_start_time() {
        let target = temp_target("starttime");
        let lock = FileLock::for_file(&target);
        let guard = lock.try_acquire().unwrap().expect("acquire");
        let text = std::fs::read_to_string(lock.path()).unwrap();
        let (pid, start) = parse_holder(&text).expect("holder line parses");
        assert_eq!(pid, std::process::id());
        if let Some(own_start) = process_start_time(std::process::id()) {
            assert_eq!(start, Some(own_start), "recorded start must match /proc");
        }
        drop(guard);
        assert!(!lock.path().exists(), "guard drop must recognise the two-field line as its own");
    }

    #[test]
    fn live_pid_with_wrong_start_time_is_broken_as_recycled() {
        if process_start_time(std::process::id()).is_none() {
            return; // no /proc: the start-time probe cannot run here
        }
        let target = temp_target("recycled");
        let lock = FileLock::for_file(&target);
        // A "holder" whose PID is alive (ours) but whose recorded start time
        // belongs to a long-gone process: exactly what PID reuse looks like.
        std::fs::write(lock.path(), format!("pid {} start 1\n", std::process::id())).unwrap();
        let guard =
            lock.acquire(Duration::from_secs(2)).expect("a recycled-PID lock must be breakable");
        drop(guard);
    }

    #[test]
    fn old_format_lock_with_live_pid_still_blocks() {
        let target = temp_target("oldformat");
        let lock = FileLock::for_file(&target);
        // An old-build holder line (no start time) for a live PID: without a
        // recorded start the probe must fall back to liveness and wait.
        std::fs::write(lock.path(), format!("pid {}\n", std::process::id())).unwrap();
        let error = lock.acquire(Duration::from_millis(60)).unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::TimedOut);
        let _ = std::fs::remove_file(lock.path());
    }

    #[test]
    fn live_holder_times_out_other_acquirers() {
        let target = temp_target("timeout");
        let lock = FileLock::for_file(&target);
        let _guard = lock.try_acquire().unwrap().expect("acquire");
        // This process is alive, so the second acquire must wait and fail.
        let error = lock.acquire(Duration::from_millis(60)).unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn contended_acquires_serialise_across_threads() {
        let target = temp_target("contended");
        let lock = FileLock::for_file(&target);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (lock, counter) = (&lock, &counter);
                scope.spawn(move || {
                    for _ in 0..5 {
                        let _guard = lock.acquire(Duration::from_secs(10)).unwrap();
                        let seen = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        // Mutual exclusion: nobody else increments while the
                        // lock is held.
                        std::thread::sleep(Duration::from_millis(1));
                        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), seen + 1);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 20);
    }
}
