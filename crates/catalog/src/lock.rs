//! Cross-process sidecar locking: an advisory `.lock` file with
//! create-exclusive semantics and PID-liveness stale-lock detection.
//!
//! [`crate::persist::SidecarWriter`]'s internal mutex serialises writers
//! *within one process*; two CLI invocations (or a server and a CLI) racing
//! on the same sidecar would still interleave their rewrites. The
//! [`FileLock`] here closes that gap: every append/rewrite first creates the
//! sibling `<sidecar>.lock` file with `O_CREAT|O_EXCL` semantics
//! (`create_new`), writes `pid <id>` into it, and removes it when done.
//!
//! A process that dies while holding the lock would otherwise block every
//! later writer forever, so contenders probe the recorded PID for liveness
//! (`/proc/<pid>` on Linux; elsewhere the probe conservatively reports
//! "alive") and break the lock when the holder is gone. Breaking is
//! serialised by an atomic *rename* to a per-process sibling — exactly one
//! contender wins the steal, the stolen file's PID is re-checked, and a
//! lock that turns out to be freshly re-acquired is handed back via
//! `hard_link` (which refuses to clobber a newer lock) — so two breakers
//! cannot both unlink and then race each other's rewrites. If the hand-back
//! loses a further race (a third contender grabbed the empty slot first),
//! exclusivity is briefly shared; guards bound the damage by removing the
//! lock file at drop time only when it still records *their own* PID, so a
//! stolen holder never deletes a successor's lock. The remaining
//! known window is PID recycling: a crashed holder's PID handed to an
//! unrelated live process (e.g. after a reboot) makes the probe report
//! "alive" and the lock unbreakable until the operator deletes the `.lock`
//! file by hand — writers fail fast with `TimedOut` after a bounded wait
//! rather than hanging, and recording the holder's start time next to the
//! PID would close the window if it ever bites in practice.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// An advisory cross-process lock backed by a create-exclusive `.lock` file.
#[derive(Debug)]
pub struct FileLock {
    path: PathBuf,
}

/// Holding proof for a [`FileLock`]; removes the lock file on drop.
#[derive(Debug)]
pub struct FileLockGuard {
    path: PathBuf,
}

impl Drop for FileLockGuard {
    fn drop(&mut self) {
        // Remove only a lock file this process still owns: if a breaker
        // mistakenly stole and recycled the slot while we held it, the file
        // on disk now records another holder's PID — deleting it would
        // admit yet another writer behind that holder's back.
        let ours = match std::fs::read_to_string(&self.path) {
            Ok(text) => parse_pid(&text) == Some(std::process::id()),
            Err(_) => false,
        };
        if ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl FileLock {
    /// The lock guarding `file`: its sibling `<file>.lock`.
    pub fn for_file(file: &Path) -> Self {
        let mut name = file.file_name().unwrap_or_default().to_os_string();
        name.push(".lock");
        FileLock { path: file.with_file_name(name) }
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Try to take the lock once: create the lock file exclusively and
    /// record this process's PID. Returns `None` when another holder exists
    /// (after breaking it if its recorded PID is no longer alive — the next
    /// attempt can then succeed).
    pub fn try_acquire(&self) -> io::Result<Option<FileLockGuard>> {
        match std::fs::OpenOptions::new().write(true).create_new(true).open(&self.path) {
            Ok(mut file) => {
                writeln!(file, "pid {}", std::process::id())?;
                file.flush()?;
                Ok(Some(FileLockGuard { path: self.path.clone() }))
            }
            Err(error) if error.kind() == io::ErrorKind::AlreadyExists => {
                if self.holder_is_stale() {
                    self.break_stale();
                }
                Ok(None)
            }
            Err(error) => Err(error),
        }
    }

    /// Break a (probed-stale) lock atomically: *rename* it to a per-process
    /// sibling first — exactly one contender's rename succeeds, so two
    /// breakers can never both unlink and then race each other's fresh
    /// locks. The stolen file's PID is re-checked after the rename; a lock
    /// that turns out to belong to a holder who acquired between the probe
    /// and the rename is handed back via `hard_link`, which (unlike rename)
    /// refuses to clobber a newer lock.
    fn break_stale(&self) {
        // Re-probe immediately before the steal: another contender may have
        // broken the stale lock and acquired a fresh one since our caller's
        // probe, and stealing a live holder's lock — even with the hand-back
        // below — briefly weakens exclusivity.
        if !self.holder_is_stale() {
            return;
        }
        let mut name = self.path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".break{}", std::process::id()));
        let hijack = self.path.with_file_name(name);
        if std::fs::rename(&self.path, &hijack).is_err() {
            return; // released, or another contender won the break
        }
        let still_stale = match std::fs::read_to_string(&hijack) {
            Ok(text) => match parse_pid(&text) {
                Some(pid) => !pid_alive(pid),
                None => true,
            },
            Err(_) => true,
        };
        if !still_stale {
            let _ = std::fs::hard_link(&hijack, &self.path);
        }
        let _ = std::fs::remove_file(&hijack);
    }

    /// Acquire the lock, retrying (and breaking stale holders) until
    /// `timeout` elapses. Fails with [`io::ErrorKind::TimedOut`] when a live
    /// holder keeps the lock the whole time.
    pub fn acquire(&self, timeout: Duration) -> io::Result<FileLockGuard> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(guard) = self.try_acquire()? {
                return Ok(guard);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("lock file {} is held by a live process", self.path.display()),
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Is the current holder provably dead? Unreadable-but-present lock
    /// files report *not* stale (the holder may be mid-write); a readable
    /// file whose `pid` line is missing or malformed is treated as stale
    /// (a torn write from a crashed holder).
    fn holder_is_stale(&self) -> bool {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => match parse_pid(&text) {
                Some(pid) => !pid_alive(pid),
                None => true,
            },
            Err(_) => false,
        }
    }
}

/// Parse the `pid <id>` line of a lock file.
fn parse_pid(text: &str) -> Option<u32> {
    let rest = text.lines().next()?.trim().strip_prefix("pid ")?;
    rest.trim().parse().ok()
}

/// Liveness probe for a recorded lock-holder PID. On platforms with a
/// `/proc` filesystem this checks `/proc/<pid>`; elsewhere it conservatively
/// reports alive (a lock is then only released by its holder, never broken).
pub fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.is_dir() {
        proc_root.join(pid.to_string()).exists()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_target(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("mapcomp_lock_{}_{tag}.memo", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(FileLock::for_file(&path).path());
        path
    }

    #[test]
    fn lock_is_exclusive_and_released_on_drop() {
        let target = temp_target("exclusive");
        let lock = FileLock::for_file(&target);
        let guard = lock.try_acquire().unwrap().expect("first acquire succeeds");
        assert!(lock.path().exists());
        assert!(lock.try_acquire().unwrap().is_none(), "held lock must not be re-acquired");
        drop(guard);
        assert!(!lock.path().exists(), "guard drop removes the lock file");
        let again = lock.try_acquire().unwrap();
        assert!(again.is_some(), "released lock can be taken again");
    }

    #[test]
    fn stale_lock_from_a_dead_pid_is_broken() {
        let target = temp_target("stale");
        let lock = FileLock::for_file(&target);
        // PIDs above the kernel's default pid_max (4194304) never exist.
        std::fs::write(lock.path(), "pid 999999999\n").unwrap();
        let guard = lock.acquire(Duration::from_secs(2)).expect("stale lock must be broken");
        drop(guard);
    }

    #[test]
    fn malformed_lock_files_are_treated_as_stale() {
        let target = temp_target("garbage");
        let lock = FileLock::for_file(&target);
        std::fs::write(lock.path(), "not a pid line").unwrap();
        let guard = lock.acquire(Duration::from_secs(2)).expect("torn lock must be broken");
        drop(guard);
    }

    #[test]
    fn live_holder_times_out_other_acquirers() {
        let target = temp_target("timeout");
        let lock = FileLock::for_file(&target);
        let _guard = lock.try_acquire().unwrap().expect("acquire");
        // This process is alive, so the second acquire must wait and fail.
        let error = lock.acquire(Duration::from_millis(60)).unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn contended_acquires_serialise_across_threads() {
        let target = temp_target("contended");
        let lock = FileLock::for_file(&target);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (lock, counter) = (&lock, &counter);
                scope.spawn(move || {
                    for _ in 0..5 {
                        let _guard = lock.acquire(Duration::from_secs(10)).unwrap();
                        let seen = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        // Mutual exclusion: nobody else increments while the
                        // lock is held.
                        std::thread::sleep(Duration::from_millis(1));
                        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), seen + 1);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 20);
    }
}
