//! Error type of the catalog subsystem.

use std::fmt;

use mapcomp_algebra::AlgebraError;

/// Errors arising from catalog operations: registration, path resolution,
/// and chain composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A schema name was referenced that is not registered.
    UnknownSchema(String),
    /// A mapping name was referenced that is not registered.
    UnknownMapping(String),
    /// No directed path of mappings connects the two schemas.
    NoPath {
        /// Requested source schema.
        from: String,
        /// Requested target schema.
        to: String,
    },
    /// A composition path from a schema to itself is empty; there is nothing
    /// to compose.
    EmptyPath {
        /// The schema requested on both ends.
        schema: String,
    },
    /// Two adjacent mappings of an explicit chain do not share a schema.
    ChainMismatch {
        /// Mapping whose target disagrees.
        left: String,
        /// Mapping whose source disagrees.
        right: String,
        /// Target schema of `left`.
        expected: String,
        /// Source schema of `right`.
        found: String,
    },
    /// A pairwise composition left intermediate symbols behind while the
    /// session was configured to require complete elimination.
    Incomplete {
        /// The mapping whose composition into the chain was incomplete.
        mapping: String,
        /// The σ2 symbols that survived.
        remaining: Vec<String>,
    },
    /// An underlying algebra error (arity conflicts between schemas, invalid
    /// constraints, …).
    Algebra(AlgebraError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownSchema(name) => write!(f, "unknown schema `{name}`"),
            CatalogError::UnknownMapping(name) => write!(f, "unknown mapping `{name}`"),
            CatalogError::NoPath { from, to } => {
                write!(f, "no composition path from `{from}` to `{to}`")
            }
            CatalogError::EmptyPath { schema } => {
                write!(f, "path from `{schema}` to itself is empty; nothing to compose")
            }
            CatalogError::ChainMismatch { left, right, expected, found } => write!(
                f,
                "chain mismatch: `{left}` targets `{expected}` but `{right}` starts at `{found}`"
            ),
            CatalogError::Incomplete { mapping, remaining } => write!(
                f,
                "composing `{mapping}` left symbols {remaining:?} uneliminated \
                 (session requires complete elimination)"
            ),
            CatalogError::Algebra(inner) => write!(f, "{inner}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Algebra(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<AlgebraError> for CatalogError {
    fn from(inner: AlgebraError) -> Self {
        CatalogError::Algebra(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_payload() {
        assert!(CatalogError::UnknownSchema("v1".into()).to_string().contains("`v1`"));
        let err = CatalogError::NoPath { from: "a".into(), to: "b".into() };
        assert!(err.to_string().contains("`a`") && err.to_string().contains("`b`"));
        let err = CatalogError::Incomplete { mapping: "m".into(), remaining: vec!["S".into()] };
        assert!(err.to_string().contains("\"S\""));
        let err: CatalogError = AlgebraError::UnknownRelation("R".into()).into();
        assert!(err.to_string().contains("`R`"));
    }
}
