//! The versioned store of named schemas and mappings.
//!
//! A [`Catalog`] is the persistent half of the subsystem: schemas are named
//! signatures, mappings are named, directed edges between two schemas with a
//! constraint set over their union. Every entry carries a monotonically
//! increasing version and a content hash ([`crate::hash`]); edits bump the
//! version and change the hash, which is what drives memo-cache
//! invalidation upstream.
//!
//! Catalogs round-trip through the plain-text document format of paper §4:
//! [`Catalog::from_document`] ingests a parsed [`Document`], and
//! [`Catalog::to_document_string`] renders the whole catalog back into text
//! that `parse_document` accepts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mapcomp_algebra::{ConstraintSet, Document, Mapping, Signature};

use crate::error::CatalogError;
use crate::hash::{hash_mapping, hash_signature, ContentHash};

/// A named, versioned schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaEntry {
    /// Catalog-wide unique name.
    pub name: String,
    /// The signature.
    pub signature: Signature,
    /// Version, starting at 1 and bumped by every update.
    pub version: u64,
    /// Content hash of the signature.
    pub hash: ContentHash,
}

/// A named, versioned mapping: a directed edge `source → target` in the
/// composition graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingEntry {
    /// Catalog-wide unique name.
    pub name: String,
    /// Name of the source schema.
    pub source: String,
    /// Name of the target schema.
    pub target: String,
    /// Constraints over source ∪ target.
    pub constraints: ConstraintSet,
    /// Version, starting at 1 and bumped by every update.
    pub version: u64,
    /// Content hash of (source signature, target signature, constraints).
    pub hash: ContentHash,
    /// Hash history `(version, hash)`, oldest first — cheap provenance for
    /// auditing which revision a cached composition was built from.
    pub history: Vec<(u64, ContentHash)>,
}

impl MappingEntry {
    /// Materialise the mapping `(σ_in, σ_out, Σ)` against the given schemas.
    fn to_mapping(&self, source: &Signature, target: &Signature) -> Mapping {
        Mapping::new(source.clone(), target.clone(), self.constraints.clone())
    }
}

/// The versioned store of schemas and mappings.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    schemas: BTreeMap<String, SchemaEntry>,
    mappings: BTreeMap<String, MappingEntry>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Number of registered schemas.
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// Number of registered mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Iterate over schemas in name order.
    pub fn schemas(&self) -> impl Iterator<Item = &SchemaEntry> {
        self.schemas.values()
    }

    /// Iterate over mappings in name order.
    pub fn mappings(&self) -> impl Iterator<Item = &MappingEntry> {
        self.mappings.values()
    }

    /// Look up a schema.
    pub fn schema(&self, name: &str) -> Result<&SchemaEntry, CatalogError> {
        self.schemas.get(name).ok_or_else(|| CatalogError::UnknownSchema(name.to_string()))
    }

    /// Look up a mapping.
    pub fn mapping(&self, name: &str) -> Result<&MappingEntry, CatalogError> {
        self.mappings.get(name).ok_or_else(|| CatalogError::UnknownMapping(name.to_string()))
    }

    /// Materialise a mapping entry into a [`Mapping`] over its registered
    /// schemas.
    pub fn materialize(&self, name: &str) -> Result<Mapping, CatalogError> {
        let entry = self.mapping(name)?;
        let source = self.schema(&entry.source)?;
        let target = self.schema(&entry.target)?;
        Ok(entry.to_mapping(&source.signature, &target.signature))
    }

    /// Adopt a fully-formed schema entry, preserving its version and hash
    /// (used when assembling a catalog snapshot from shared-catalog shards).
    pub(crate) fn insert_schema_entry(&mut self, entry: SchemaEntry) {
        self.schemas.insert(entry.name.clone(), entry);
    }

    /// Adopt a fully-formed mapping entry, preserving version, hash and
    /// history (used when assembling a catalog snapshot from shared-catalog
    /// shards).
    pub(crate) fn insert_mapping_entry(&mut self, entry: MappingEntry) {
        self.mappings.insert(entry.name.clone(), entry);
    }

    /// Register or update a schema; returns the new version. Updating an
    /// existing schema bumps its version and rehashes every mapping that
    /// touches it (their content includes the schema's signature). The names
    /// of those re-hashed mappings are returned so a session can invalidate
    /// dependent cache entries.
    pub fn add_schema(
        &mut self,
        name: impl Into<String>,
        signature: Signature,
    ) -> (u64, Vec<String>) {
        let name = name.into();
        let hash = hash_signature(&signature);
        let version = match self.schemas.get(&name) {
            Some(existing) if existing.hash == hash => return (existing.version, Vec::new()),
            Some(existing) => existing.version + 1,
            None => 1,
        };
        self.schemas
            .insert(name.clone(), SchemaEntry { name: name.clone(), signature, version, hash });
        // Rehash affected mappings.
        let mut touched = Vec::new();
        let schema_sigs: BTreeMap<String, Signature> =
            self.schemas.iter().map(|(n, e)| (n.clone(), e.signature.clone())).collect();
        for entry in self.mappings.values_mut() {
            if entry.source != name && entry.target != name {
                continue;
            }
            let (Some(source), Some(target)) =
                (schema_sigs.get(&entry.source), schema_sigs.get(&entry.target))
            else {
                continue;
            };
            let new_hash = hash_mapping(source, target, &entry.constraints);
            if new_hash != entry.hash {
                entry.version += 1;
                entry.hash = new_hash;
                entry.history.push((entry.version, new_hash));
                touched.push(entry.name.clone());
            }
        }
        (version, touched)
    }

    /// Register or update a mapping between two registered schemas; returns
    /// the new version. Re-registering with identical content is a no-op.
    pub fn add_mapping(
        &mut self,
        name: impl Into<String>,
        source: &str,
        target: &str,
        constraints: ConstraintSet,
    ) -> Result<u64, CatalogError> {
        let name = name.into();
        let source_sig = self.schema(source)?.signature.clone();
        let target_sig = self.schema(target)?.signature.clone();
        // Shared symbols must agree on arity (overlapping schemas are allowed:
        // schema-evolution chains share every unchanged relation).
        let _combined = source_sig.union(&target_sig)?;
        let hash = hash_mapping(&source_sig, &target_sig, &constraints);
        let (version, mut history) = match self.mappings.get(&name) {
            Some(existing) if existing.hash == hash => return Ok(existing.version),
            Some(existing) => (existing.version + 1, existing.history.clone()),
            None => (1, Vec::new()),
        };
        history.push((version, hash));
        self.mappings.insert(
            name.clone(),
            MappingEntry {
                name,
                source: source.to_string(),
                target: target.to_string(),
                constraints,
                version,
                hash,
                history,
            },
        );
        Ok(version)
    }

    /// Replace the constraints of an existing mapping (the "edit one link"
    /// operation of the incremental-recomposition scenario); returns the new
    /// version.
    pub fn update_mapping(
        &mut self,
        name: &str,
        constraints: ConstraintSet,
    ) -> Result<u64, CatalogError> {
        let entry = self.mapping(name)?;
        let (source, target) = (entry.source.clone(), entry.target.clone());
        self.add_mapping(name.to_string(), &source, &target, constraints)
    }

    /// Remove a mapping; returns its entry if it existed.
    pub fn remove_mapping(&mut self, name: &str) -> Option<MappingEntry> {
        self.mappings.remove(name)
    }

    /// Ingest every schema and mapping of a parsed document. Existing entries
    /// with the same names are updated (and their versions bumped if the
    /// content changed). Returns the names of added-or-updated mappings.
    pub fn from_document(&mut self, document: &Document) -> Result<Vec<String>, CatalogError> {
        let mut touched = Vec::new();
        for (name, signature) in &document.schemas {
            let (_, rehashed) = self.add_schema(name.clone(), signature.clone());
            touched.extend(rehashed);
        }
        for (name, (source, target, constraints)) in &document.mappings {
            let before = self.mappings.get(name).map(|e| e.hash);
            let version = self.add_mapping(name.clone(), source, target, constraints.clone())?;
            let after = self.mapping(name)?.hash;
            if before != Some(after) || version == 1 {
                touched.push(name.clone());
            }
        }
        touched.sort();
        touched.dedup();
        Ok(touched)
    }

    /// Re-apply persisted version counters and hash history (see
    /// [`crate::persist::VersionManifest`]). The document format carries
    /// content only, so a catalog rebuilt from it restarts every entry at
    /// version 1; this adopts the recorded version when the current content
    /// hash matches the recorded one, and treats a mismatch as one further
    /// out-of-session edit (recorded version + 1, history extended). Returns
    /// the number of entries whose version was restored or advanced.
    pub fn restore_versions(&mut self, manifest: &crate::persist::VersionManifest) -> usize {
        let mut adopted = 0;
        for (name, &(version, hash)) in &manifest.schemas {
            if let Some(entry) = self.schemas.get_mut(name) {
                entry.version = if entry.hash.0 == hash { version } else { version + 1 };
                adopted += 1;
            }
        }
        for (name, (version, history)) in &manifest.mappings {
            if let Some(entry) = self.mappings.get_mut(name) {
                let recorded_current = history.last().map(|(_, hash)| *hash);
                entry.history = history.iter().map(|&(v, h)| (v, ContentHash(h))).collect();
                if recorded_current == Some(entry.hash.0) {
                    entry.version = *version;
                } else {
                    entry.version = version + 1;
                    entry.history.push((entry.version, entry.hash));
                }
                adopted += 1;
            }
        }
        adopted
    }

    /// Render the whole catalog in the plain-text document format; the output
    /// re-parses with `parse_document` into an equivalent catalog.
    pub fn to_document_string(&self) -> String {
        let mut out = String::new();
        for entry in self.schemas.values() {
            // The document grammar requires a `;` after every relation, so
            // the schema body is rendered by hand rather than through
            // `Signature`'s Display (which omits the trailing one).
            let _ = write!(out, "schema {} {{ ", entry.name);
            for (name, info) in entry.signature.iter() {
                let _ = write!(out, "{name}/{}", info.arity);
                if let Some(key) = &info.key {
                    let cols: Vec<String> = key.iter().map(usize::to_string).collect();
                    let _ = write!(out, " key({})", cols.join(","));
                }
                let _ = write!(out, "; ");
            }
            let _ = writeln!(out, "}}");
        }
        for entry in self.mappings.values() {
            let _ =
                writeln!(out, "mapping {} : {} -> {} {{", entry.name, entry.source, entry.target);
            for constraint in entry.constraints.iter() {
                let _ = writeln!(out, "    {constraint};");
            }
            let _ = writeln!(out, "}}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{parse_constraints, parse_document};

    fn sample() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add_schema("s1", Signature::from_arities([("R", 1)]));
        catalog.add_schema("s2", Signature::from_arities([("S", 1)]));
        catalog.add_mapping("m12", "s1", "s2", parse_constraints("R <= S").unwrap()).unwrap();
        catalog
    }

    #[test]
    fn versions_bump_on_edit_only() {
        let mut catalog = sample();
        assert_eq!(catalog.mapping("m12").unwrap().version, 1);
        // Identical re-registration: no bump.
        let v =
            catalog.add_mapping("m12", "s1", "s2", parse_constraints("R <= S").unwrap()).unwrap();
        assert_eq!(v, 1);
        // Edit: bump + new hash.
        let before = catalog.mapping("m12").unwrap().hash;
        let v = catalog.update_mapping("m12", parse_constraints("S <= R").unwrap()).unwrap();
        assert_eq!(v, 2);
        assert_ne!(catalog.mapping("m12").unwrap().hash, before);
        assert_eq!(catalog.mapping("m12").unwrap().history.len(), 2);
    }

    #[test]
    fn schema_updates_rehash_touching_mappings() {
        let mut catalog = sample();
        let before = catalog.mapping("m12").unwrap().hash;
        let (version, touched) =
            catalog.add_schema("s2", Signature::from_arities([("S", 1), ("S2", 2)]));
        assert_eq!(version, 2);
        assert_eq!(touched, vec!["m12".to_string()]);
        assert_ne!(catalog.mapping("m12").unwrap().hash, before);
        // Unrelated schema: nothing rehashed.
        let (_, touched) = catalog.add_schema("s9", Signature::from_arities([("Z", 1)]));
        assert!(touched.is_empty());
    }

    #[test]
    fn unknown_names_error() {
        let mut catalog = sample();
        assert!(matches!(catalog.schema("nope"), Err(CatalogError::UnknownSchema(_))));
        assert!(matches!(catalog.mapping("nope"), Err(CatalogError::UnknownMapping(_))));
        assert!(catalog.add_mapping("m", "s1", "nope", ConstraintSet::new()).is_err());
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut catalog = Catalog::new();
        catalog.add_schema("a", Signature::from_arities([("R", 1)]));
        catalog.add_schema("b", Signature::from_arities([("R", 2)]));
        assert!(matches!(
            catalog.add_mapping("m", "a", "b", ConstraintSet::new()),
            Err(CatalogError::Algebra(_))
        ));
    }

    #[test]
    fn document_round_trip() {
        let catalog = sample();
        let text = catalog.to_document_string();
        let document = parse_document(&text).expect("rendered catalog re-parses");
        let mut rebuilt = Catalog::new();
        rebuilt.from_document(&document).unwrap();
        assert_eq!(rebuilt.schema_count(), catalog.schema_count());
        assert_eq!(rebuilt.mapping_count(), catalog.mapping_count());
        assert_eq!(rebuilt.mapping("m12").unwrap().hash, catalog.mapping("m12").unwrap().hash);
        // Round-trip once more: text is a fixpoint.
        assert_eq!(rebuilt.to_document_string(), text);
    }

    #[test]
    fn materialize_builds_the_mapping() {
        let catalog = sample();
        let mapping = catalog.materialize("m12").unwrap();
        assert!(mapping.input.contains("R"));
        assert!(mapping.output.contains("S"));
        assert_eq!(mapping.constraints.len(), 1);
    }
}
