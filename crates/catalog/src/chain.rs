//! The n-ary chain driver: fold a path of mappings through the pairwise
//! best-effort `compose()` with memoised partial results.
//!
//! A chain `m1 ∘ m2 ∘ … ∘ mn` can be folded in any association order —
//! composition is associative semantically, even though the best-effort
//! algorithm may produce syntactically different (equivalent) outputs. The
//! driver exploits that freedom with greedy *run absorption*: at each
//! position it looks for the longest contiguous run of links that is already
//! memoised as one segment (from a previous composition of this chain, a
//! sub-chain request, or an earlier revision's surviving prefix), absorbs it
//! with a single cache lookup, and only pays a pairwise composition at run
//! boundaries. After editing one link, recomposing therefore recomputes only
//! the fold steps whose provenance includes the edit — the cached runs on
//! either side are reused, never recomposed.
//!
//! Intermediate symbols that resist elimination ride along in the
//! [`ComposedChain::residual`] signature and are retried at every later fold
//! step, mirroring how the paper's editing scenario recovers leftover
//! symbols in later compositions.

use std::cell::RefCell;
use std::collections::BTreeSet;

use mapcomp_algebra::{ConstraintSet, Mapping, Signature};
use mapcomp_compose::{compose_constraints, ComposeConfig, Registry};

use crate::cache::{ChainCache, MemoCache};
use crate::error::CatalogError;
use crate::hash::{combine, hash_config};
use crate::store::Catalog;

/// A source of single-link chain segments by mapping name. Implemented by
/// the single-threaded [`Catalog`] and by the lock-striped
/// [`crate::shared::SharedCatalog`], so the chain driver composes over
/// either without caring which store backs it.
pub trait LinkSource {
    /// Materialise the named mapping as a one-link chain.
    fn link(&self, name: &str) -> Result<ComposedChain, CatalogError>;
}

impl LinkSource for Catalog {
    fn link(&self, name: &str) -> Result<ComposedChain, CatalogError> {
        ComposedChain::from_entry(self, name)
    }
}

/// A (partially) composed chain segment: a mapping from the path's source
/// schema to its target schema, plus any intermediate symbols that survived
/// elimination, the content hash identifying the segment, and the set of
/// catalog mappings it was composed from (its provenance).
#[derive(Debug, Clone)]
pub struct ComposedChain {
    /// Source schema name.
    pub source: String,
    /// Target schema name.
    pub target: String,
    /// Mapping names along the path, in composition order.
    pub path: Vec<String>,
    /// The composed mapping: input = source schema, output = target schema.
    pub mapping: Mapping,
    /// Intermediate symbols (with arities) that could not be eliminated.
    pub residual: Signature,
    /// Content hash of this segment (pure function of the link hashes and
    /// the compose configuration).
    pub hash: u64,
    /// Names of the catalog mappings this segment depends on.
    pub deps: BTreeSet<String>,
}

impl ComposedChain {
    /// Did every intermediate symbol get eliminated?
    pub fn is_complete(&self) -> bool {
        self.residual.is_empty()
    }

    /// Lift a single catalog mapping into a one-link chain.
    pub fn from_entry(catalog: &Catalog, name: &str) -> Result<Self, CatalogError> {
        let entry = catalog.mapping(name)?;
        let mapping = catalog.materialize(name)?;
        Ok(ComposedChain {
            source: entry.source.clone(),
            target: entry.target.clone(),
            path: vec![entry.name.clone()],
            mapping,
            residual: Signature::new(),
            hash: entry.hash.0,
            deps: BTreeSet::from([entry.name.clone()]),
        })
    }
}

/// Options of one chain composition.
#[derive(Debug, Clone, Default)]
pub struct ChainOptions {
    /// Fail with [`CatalogError::Incomplete`] if any fold step leaves
    /// intermediate symbols behind (default: best-effort, symbols ride
    /// along as residuals).
    pub require_complete: bool,
}

/// Result of composing a chain.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// The composed chain.
    pub chain: ComposedChain,
    /// Pairwise `compose()` invocations actually performed for this request
    /// (memo hits cost zero). This is the instrumented counter the
    /// incremental-vs-cold comparison is asserted on.
    pub compose_calls: usize,
    /// Memo-cache hits while folding (absorbed runs plus fold-step hits).
    pub cache_hits: usize,
    /// Lengths of the contiguous runs the driver absorbed, left to right; a
    /// length > 1 means that run was served whole from the memo cache.
    pub plan: Vec<usize>,
}

impl ChainResult {
    /// Did every intermediate symbol get eliminated?
    pub fn is_complete(&self) -> bool {
        self.chain.is_complete()
    }
}

/// Compose two adjacent chain segments, eliminating the shared schema's
/// symbols (and retrying residuals from both sides). Increments
/// `compose_calls` by exactly one.
pub fn compose_pair(
    left: &ComposedChain,
    right: &ComposedChain,
    registry: &Registry,
    config: &ComposeConfig,
    compose_calls: &mut usize,
) -> Result<ComposedChain, CatalogError> {
    if left.target != right.source {
        return Err(CatalogError::ChainMismatch {
            left: left.path.last().cloned().unwrap_or_default(),
            right: right.path.first().cloned().unwrap_or_default(),
            expected: left.target.clone(),
            found: right.source.clone(),
        });
    }

    // Full signature: endpoint schemas, the shared intermediate schema, and
    // both residual carry-alongs. Shared symbols must agree on arity.
    let full = left
        .mapping
        .input
        .union(&left.mapping.output)?
        .union(&left.residual)?
        .union(&right.mapping.input)?
        .union(&right.residual)?
        .union(&right.mapping.output)?;

    // Symbols to eliminate: the intermediate schema plus residuals — except
    // symbols shared with an endpoint schema (evolution chains carry every
    // unchanged relation through; those are identity-linked, not
    // existential intermediates).
    let keep =
        |name: &String| left.mapping.input.contains(name) || right.mapping.output.contains(name);
    let mut symbols: Vec<String> = left.mapping.output.names();
    symbols.extend(right.mapping.input.names());
    symbols.extend(left.residual.names());
    symbols.extend(right.residual.names());
    symbols.retain(|name| !keep(name));
    // Unique, preserving first-occurrence order.
    let mut seen = BTreeSet::new();
    symbols.retain(|name| seen.insert(name.clone()));

    let mut constraints = left.mapping.constraints.clone().into_vec();
    constraints.extend(right.mapping.constraints.clone().into_vec());

    *compose_calls += 1;
    let result = compose_constraints(&full, &symbols, constraints, registry, config);

    let mut residual = Signature::new();
    for name in &result.remaining {
        if let Some(info) = result.signature.get(name) {
            residual.add(name.clone(), info.clone());
        }
    }

    let mapping = Mapping::new(
        left.mapping.input.clone(),
        right.mapping.output.clone(),
        ConstraintSet::from_constraints(result.constraints),
    );

    let mut path = left.path.clone();
    path.extend(right.path.iter().cloned());
    let mut deps = left.deps.clone();
    deps.extend(right.deps.iter().cloned());

    Ok(ComposedChain {
        source: left.source.clone(),
        target: right.target.clone(),
        path,
        mapping,
        residual,
        hash: combine(&[left.hash, right.hash, hash_config(config)]),
        deps,
    })
}

/// Compose a chain of catalog mappings (given by name, adjacent pairs must
/// share a schema), reusing and populating the memo cache.
///
/// Convenience wrapper over [`compose_chain_with`] for the single-threaded
/// catalog + exclusive cache pairing.
pub fn compose_chain(
    catalog: &Catalog,
    cache: &mut MemoCache,
    names: &[String],
    registry: &Registry,
    config: &ComposeConfig,
    options: &ChainOptions,
) -> Result<ChainResult, CatalogError> {
    // Validate before borrowing the cache: an unwind between the take and
    // the put-back would silently replace the caller's warm cache with an
    // empty default.
    assert!(!names.is_empty(), "compose_chain requires at least one mapping");
    let cell = RefCell::new(std::mem::take(cache));
    let result = compose_chain_with(catalog, &cell, names, registry, config, options);
    *cache = cell.into_inner();
    result
}

/// Compose a chain through any [`LinkSource`] and shared [`ChainCache`] —
/// the form concurrent sessions use, where several workers fold chains over
/// one lock-striped store and one sharded cache at the same time. Cache
/// entries may be evicted or invalidated by other workers between the probe
/// and the fetch; the driver degrades to recomposing the affected run.
pub fn compose_chain_with<S, C>(
    store: &S,
    cache: &C,
    names: &[String],
    registry: &Registry,
    config: &ComposeConfig,
    options: &ChainOptions,
) -> Result<ChainResult, CatalogError>
where
    S: LinkSource + ?Sized,
    C: ChainCache + ?Sized,
{
    assert!(!names.is_empty(), "compose_chain requires at least one mapping");
    let segments: Vec<ComposedChain> =
        names.iter().map(|name| store.link(name)).collect::<Result<_, _>>()?;
    for pair in segments.windows(2) {
        if pair[0].target != pair[1].source {
            return Err(CatalogError::ChainMismatch {
                left: pair[0].path.last().cloned().unwrap_or_default(),
                right: pair[1].path.first().cloned().unwrap_or_default(),
                expected: pair[0].target.clone(),
                found: pair[1].source.clone(),
            });
        }
    }

    let config_hash = hash_config(config);
    if segments.len() == 1 {
        let chain = segments.into_iter().next().expect("one segment");
        return Ok(ChainResult { chain, compose_calls: 0, cache_hits: 0, plan: vec![1] });
    }

    let mut compose_calls = 0usize;
    let mut cache_hits = 0usize;
    let mut plan = Vec::new();

    // Greedy run absorption: at each position, take the longest contiguous
    // run of links already memoised as one left-associated segment (cached
    // segment hashes are recomputable without retrieval — they are pure
    // functions of the link hashes and the configuration), then pay one
    // fold step to join it to the accumulator.
    let mut position = 0usize;
    let mut acc: Option<ComposedChain> = None;
    while position < segments.len() {
        let (run_len, run_key) = longest_cached_run(&segments, position, cache, config_hash);
        // Between `cache_contains` and `cache_lookup` a concurrent worker may
        // evict or invalidate the run; fall back to the single link — the
        // fold then pays pairwise compositions it hoped to skip, nothing
        // more.
        let (run_len, run) = match run_key.and_then(|key| cache.cache_lookup(key)) {
            Some(chain) => {
                cache_hits += 1;
                (run_len, chain)
            }
            None => (1, segments[position].clone()),
        };
        plan.push(run_len);
        position += run_len;
        let run_label = run.path.first().cloned().unwrap_or_default();
        let joined = match acc {
            None => run,
            Some(left) => fold_step(
                &left,
                &run,
                cache,
                registry,
                config,
                config_hash,
                &mut compose_calls,
                &mut cache_hits,
            )?,
        };
        // Strictness is checked here, after every step — including segments
        // served whole from the memo cache, which may have been composed
        // best-effort by an earlier (lenient) session.
        if options.require_complete && !joined.is_complete() {
            return Err(CatalogError::Incomplete {
                mapping: run_label,
                remaining: joined.residual.names(),
            });
        }
        acc = Some(joined);
    }

    let chain = acc.expect("non-empty chain");
    Ok(ChainResult { chain, compose_calls, cache_hits, plan })
}

/// Longest contiguous run of links starting at `start` that is memoised as a
/// single left-associated segment. Returns the run length (≥ 1) and, for
/// runs longer than one link, the memo key the whole run is stored under.
fn longest_cached_run<C: ChainCache + ?Sized>(
    segments: &[ComposedChain],
    start: usize,
    cache: &C,
    config_hash: u64,
) -> (usize, Option<crate::cache::MemoKey>) {
    let mut hash = segments[start].hash;
    let mut best = (1, None);
    for (offset, segment) in segments[start + 1..].iter().enumerate() {
        let key = (hash, segment.hash, config_hash);
        if !cache.cache_contains(&key) {
            break;
        }
        hash = combine(&[hash, segment.hash, config_hash]);
        best = (offset + 2, Some(key));
    }
    best
}

/// One fold step: serve from the memo cache or compose and memoise. The
/// result is cached even when incomplete — completeness policy is applied
/// by the caller, uniformly for cached and fresh segments.
#[allow(clippy::too_many_arguments)]
fn fold_step<C: ChainCache + ?Sized>(
    left: &ComposedChain,
    right: &ComposedChain,
    cache: &C,
    registry: &Registry,
    config: &ComposeConfig,
    config_hash: u64,
    compose_calls: &mut usize,
    cache_hits: &mut usize,
) -> Result<ComposedChain, CatalogError> {
    let key = (left.hash, right.hash, config_hash);
    if let Some(cached) = cache.cache_lookup(key) {
        *cache_hits += 1;
        return Ok(cached);
    }
    let composed = compose_pair(left, right, registry, config, compose_calls)?;
    cache.cache_insert(key, composed.clone());
    Ok(composed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::parse_constraints;

    /// s0 --m0--> s1 --m1--> s2 --m2--> s3: unary copies, fully eliminable.
    fn chain_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        for i in 0..4 {
            catalog.add_schema(format!("s{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..3 {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("s{i}"),
                    &format!("s{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        catalog
    }

    fn names(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn cold_chain_performs_n_minus_one_compositions() {
        let catalog = chain_catalog();
        let mut cache = MemoCache::new();
        let registry = Registry::standard();
        let result = compose_chain(
            &catalog,
            &mut cache,
            &names("m", 3),
            &registry,
            &ComposeConfig::default(),
            &ChainOptions::default(),
        )
        .unwrap();
        assert_eq!(result.compose_calls, 2);
        assert_eq!(result.cache_hits, 0);
        assert!(result.is_complete());
        assert_eq!(result.chain.source, "s0");
        assert_eq!(result.chain.target, "s3");
        let text = result.chain.mapping.constraints.to_string();
        assert!(text.contains("R0") && text.contains("R3"), "composed: {text}");
        assert!(!text.contains("R1") && !text.contains("R2"), "composed: {text}");
    }

    #[test]
    fn warm_chain_is_free_and_extension_costs_one() {
        let catalog = chain_catalog();
        let mut cache = MemoCache::new();
        let registry = Registry::standard();
        let config = ComposeConfig::default();
        let options = ChainOptions::default();
        let cold =
            compose_chain(&catalog, &mut cache, &names("m", 2), &registry, &config, &options)
                .unwrap();
        assert_eq!(cold.compose_calls, 1);
        // Same chain again: all hits.
        let warm =
            compose_chain(&catalog, &mut cache, &names("m", 2), &registry, &config, &options)
                .unwrap();
        assert_eq!(warm.compose_calls, 0);
        assert_eq!(warm.cache_hits, 1);
        assert_eq!(warm.chain.hash, cold.chain.hash);
        // Extending by one link only pays for the new link.
        let extended =
            compose_chain(&catalog, &mut cache, &names("m", 3), &registry, &config, &options)
                .unwrap();
        assert_eq!(extended.compose_calls, 1);
        assert_eq!(extended.cache_hits, 1);
    }

    #[test]
    fn different_configs_do_not_share_cache_entries() {
        let catalog = chain_catalog();
        let mut cache = MemoCache::new();
        let registry = Registry::standard();
        let options = ChainOptions::default();
        compose_chain(
            &catalog,
            &mut cache,
            &names("m", 3),
            &registry,
            &ComposeConfig::default(),
            &options,
        )
        .unwrap();
        let ablated = compose_chain(
            &catalog,
            &mut cache,
            &names("m", 3),
            &registry,
            &ComposeConfig::without_right_compose(),
            &options,
        )
        .unwrap();
        assert_eq!(ablated.compose_calls, 2, "ablated config must not reuse full-config entries");
    }

    #[test]
    fn mismatched_chain_is_rejected() {
        let catalog = chain_catalog();
        let mut cache = MemoCache::new();
        let registry = Registry::standard();
        let err = compose_chain(
            &catalog,
            &mut cache,
            &["m0".to_string(), "m2".to_string()],
            &registry,
            &ComposeConfig::default(),
            &ChainOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CatalogError::ChainMismatch { .. }));
    }

    #[test]
    fn require_complete_rejects_recursive_links() {
        let mut catalog = Catalog::new();
        catalog.add_schema("a", Signature::from_arities([("R", 2)]));
        catalog.add_schema("b", Signature::from_arities([("S", 2)]));
        catalog.add_schema("c", Signature::from_arities([("T", 2)]));
        catalog
            .add_mapping("m1", "a", "b", parse_constraints("R <= S; S = tc(S)").unwrap())
            .unwrap();
        catalog.add_mapping("m2", "b", "c", parse_constraints("S <= T").unwrap()).unwrap();
        let mut cache = MemoCache::new();
        let registry = Registry::standard();
        let chain = vec!["m1".to_string(), "m2".to_string()];
        // Best effort: succeeds with a residual.
        let best = compose_chain(
            &catalog,
            &mut cache,
            &chain,
            &registry,
            &ComposeConfig::default(),
            &ChainOptions::default(),
        )
        .unwrap();
        assert!(!best.is_complete());
        assert!(best.chain.residual.contains("S"));
        // Strict: the same chain errors.
        let mut cache = MemoCache::new();
        let err = compose_chain(
            &catalog,
            &mut cache,
            &chain,
            &registry,
            &ComposeConfig::default(),
            &ChainOptions { require_complete: true },
        )
        .unwrap_err();
        assert!(matches!(err, CatalogError::Incomplete { .. }));
    }

    #[test]
    fn shared_relations_pass_through_evolution_style_chains() {
        // v0 = {Keep, Old}; v1 = {Keep, Mid}; v2 = {Keep, New}: `Keep` is
        // carried through unchanged and must not be eliminated.
        let mut catalog = Catalog::new();
        catalog.add_schema("v0", Signature::from_arities([("Keep", 1), ("Old", 1)]));
        catalog.add_schema("v1", Signature::from_arities([("Keep", 1), ("Mid", 1)]));
        catalog.add_schema("v2", Signature::from_arities([("Keep", 1), ("New", 1)]));
        catalog.add_mapping("e1", "v0", "v1", parse_constraints("Old <= Mid").unwrap()).unwrap();
        catalog.add_mapping("e2", "v1", "v2", parse_constraints("Mid <= New").unwrap()).unwrap();
        let mut cache = MemoCache::new();
        let registry = Registry::standard();
        let result = compose_chain(
            &catalog,
            &mut cache,
            &["e1".to_string(), "e2".to_string()],
            &registry,
            &ComposeConfig::default(),
            &ChainOptions::default(),
        )
        .unwrap();
        assert!(result.is_complete());
        assert!(result.chain.mapping.input.contains("Keep"));
        let text = result.chain.mapping.constraints.to_string();
        assert!(text.contains("Old") && text.contains("New"), "composed: {text}");
        assert!(!text.contains("Mid"), "Mid must be eliminated: {text}");
    }

    #[test]
    fn mid_chain_cached_runs_are_absorbed() {
        let catalog = chain_catalog();
        let mut cache = MemoCache::new();
        let registry = Registry::standard();
        let config = ComposeConfig::default();
        let options = ChainOptions::default();
        // Warm the sub-chain m1 ∘ m2 explicitly.
        compose_chain(&catalog, &mut cache, &names("m", 3)[1..], &registry, &config, &options)
            .unwrap();
        // The full chain absorbs the cached run: one lookup, one new
        // composition joining m0 to it.
        let result =
            compose_chain(&catalog, &mut cache, &names("m", 3), &registry, &config, &options)
                .unwrap();
        assert_eq!(result.plan, vec![1, 2], "m0 alone, then the cached m1∘m2 run");
        assert_eq!(result.compose_calls, 1);
        assert_eq!(result.cache_hits, 1);
        assert!(result.is_complete());
    }
}
