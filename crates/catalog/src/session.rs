//! The session API: a catalog bound to a registry, a compose configuration,
//! and a memo cache, with mutation-triggered invalidation and cumulative
//! instrumentation.
//!
//! All catalog mutation should go through the session: editing a mapping
//! here drops exactly the cached compositions whose provenance mentions it,
//! so the next `compose_path` recomputes only the affected part of each
//! chain. The session also keeps the instrumented pairwise-composition
//! counter used to assert the incremental-vs-cold claim.

use std::collections::BTreeMap;
use std::sync::Arc;

use mapcomp_algebra::{ConstraintSet, Document, Signature};
use mapcomp_analysis::{AnalysisReport, Termination};
use mapcomp_compose::{ComposeConfig, ExchangeConfig, Registry};

use crate::cache::{CacheStats, MemoCache, ShardedMemoCache};
use crate::chain::{compose_chain, compose_chain_with, ChainOptions, ChainResult};
use crate::error::CatalogError;
use crate::graph::{resolve_path_with, PathCost};
use crate::hash::ContentHash;
use crate::store::Catalog;

/// Configuration of a session.
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// The compose configuration used for every pairwise composition (part
    /// of the memo key: sessions with different configurations never share
    /// entries).
    pub compose: ComposeConfig,
    /// Chain options (strict vs. best-effort elimination).
    pub chain: ChainOptions,
    /// Maximum number of live memo-cache entries (`None` = unbounded).
    /// When the bound is hit, least-recently-used entries are evicted; see
    /// [`crate::cache::CacheStats::evictions`].
    pub cache_capacity: Option<usize>,
    /// How `compose_path` scores candidate paths: fewest hops (default) or
    /// cheapest estimated operator-count growth (see [`PathCost`]).
    pub path_cost: PathCost,
    /// Operator override for the chase's per-evaluation tuple budget
    /// (`--eval-budget` on the CLI). `None` lets the static analyzer pick a
    /// proven bound when it can, falling back to the engine default; `Some`
    /// always wins, including over analysis-derived budgets. Not part of the
    /// memo key — the budget shapes data exchange, not composition.
    pub eval_budget: Option<usize>,
}

impl SessionConfig {
    /// Build the chase configuration this session would run data exchange
    /// under, optionally consulting an analysis report for a source domain
    /// of the given size. Precedence: engine default, then analysis-derived
    /// proven budget, then the operator's [`SessionConfig::eval_budget`]
    /// override.
    pub fn chase_config(&self, analysis: Option<(&AnalysisReport, usize)>) -> ExchangeConfig {
        let base = ExchangeConfig::default();
        let mut config = match analysis {
            Some((report, domain)) => report.exchange_config(domain, &base),
            None => base,
        };
        if let Some(budget) = self.eval_budget {
            config.eval_budget = budget;
        }
        config
    }
}

/// Render a name-sorted set of per-mapping analysis reports as the
/// byte-stable catalog-wide text: one `mapping <name>: <verdict summary>`
/// line each, with the report's diagnostics and chase skips indented two
/// spaces underneath. Shared by [`Session`], [`crate::shared::SharedSession`]
/// and the service layer so every surface emits identical bytes.
pub fn render_analysis_text(reports: &[(String, Arc<AnalysisReport>)]) -> String {
    let mut sorted: Vec<&(String, Arc<AnalysisReport>)> = reports.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (name, report) in sorted {
        out.push_str(&format!("mapping {name}: {}\n", report.termination.summary()));
        for diagnostic in &report.diagnostics {
            out.push_str(&format!("  {diagnostic}\n"));
        }
        for (constraint, reason) in &report.skipped {
            out.push_str(&format!("  skip: {constraint}: {reason}\n"));
        }
    }
    out
}

/// Tally of analysis verdicts across a set of reports: `(proven, unknown,
/// diagnostics)` — the counts carried by the wire `analysis` reply.
pub fn analysis_counts(reports: &[(String, Arc<AnalysisReport>)]) -> (usize, usize, usize) {
    let mut proven = 0;
    let mut unknown = 0;
    let mut diagnostics = 0;
    for (_, report) in reports {
        match report.termination {
            Termination::Proven { .. } => proven += 1,
            Termination::Unknown { .. } => unknown += 1,
        }
        diagnostics += report.diagnostics.len();
    }
    (proven, unknown, diagnostics)
}

/// Cumulative session statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Pairwise `compose()` invocations actually performed.
    pub compose_calls: usize,
    /// Paths resolved through the composition graph.
    pub paths_resolved: usize,
    /// Chain compositions served (cached or not).
    pub chains_composed: usize,
    /// Memo-cache statistics.
    pub cache: CacheStats,
    /// Live memo-cache entries.
    pub cache_entries: usize,
}

/// A catalog session: store + graph + chain driver + memo cache.
pub struct Session {
    catalog: Catalog,
    registry: Registry,
    config: SessionConfig,
    cache: MemoCache,
    /// Per-mapping static-analysis verdicts, keyed by name and guarded by
    /// the mapping's content hash at analysis time: a hash mismatch on read
    /// means the cached report is stale and is recomputed. Entries are also
    /// dropped eagerly at every memo-cache invalidation site.
    analysis: BTreeMap<String, (ContentHash, Arc<AnalysisReport>)>,
    compose_calls: usize,
    paths_resolved: usize,
    chains_composed: usize,
}

impl Session {
    /// Create a session over a catalog with the standard registry and
    /// default configuration.
    pub fn new(catalog: Catalog) -> Self {
        Session::with_config(catalog, Registry::standard(), SessionConfig::default())
    }

    /// Create a session with an explicit registry and configuration.
    pub fn with_config(catalog: Catalog, registry: Registry, config: SessionConfig) -> Self {
        let cache = MemoCache::with_capacity(config.cache_capacity);
        Session {
            catalog,
            registry,
            config,
            cache,
            analysis: BTreeMap::new(),
            compose_calls: 0,
            paths_resolved: 0,
            chains_composed: 0,
        }
    }

    /// Read access to the underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session's registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Register or update a schema; invalidates cached compositions that
    /// depend on any mapping whose signature changed with it.
    pub fn add_schema(&mut self, name: impl Into<String>, signature: Signature) -> u64 {
        let (version, touched) = self.catalog.add_schema(name, signature);
        for mapping in touched {
            self.cache.invalidate(&mapping);
            self.analysis.remove(&mapping);
        }
        version
    }

    /// Register or update a mapping; an update (changed content) invalidates
    /// every cached composition depending on it. Returns the new version.
    pub fn add_mapping(
        &mut self,
        name: impl Into<String>,
        source: &str,
        target: &str,
        constraints: ConstraintSet,
    ) -> Result<u64, CatalogError> {
        let name = name.into();
        let before = self.catalog.mapping(&name).ok().map(|entry| entry.hash);
        let version = self.catalog.add_mapping(name.clone(), source, target, constraints)?;
        let after = self.catalog.mapping(&name)?.hash;
        if before.is_some() && before != Some(after) {
            self.cache.invalidate(&name);
            self.analysis.remove(&name);
        }
        Ok(version)
    }

    /// Edit an existing mapping's constraints (the incremental-recomposition
    /// trigger). Returns the new version and how many cached compositions
    /// were invalidated.
    pub fn update_mapping(
        &mut self,
        name: &str,
        constraints: ConstraintSet,
    ) -> Result<(u64, usize), CatalogError> {
        let before = self.catalog.mapping(name)?.hash;
        let version = self.catalog.update_mapping(name, constraints)?;
        let dropped = if self.catalog.mapping(name)?.hash != before {
            self.analysis.remove(name);
            self.cache.invalidate(name)
        } else {
            0
        };
        Ok((version, dropped))
    }

    /// Remove a mapping and every cached composition depending on it.
    pub fn remove_mapping(&mut self, name: &str) -> Result<usize, CatalogError> {
        self.catalog
            .remove_mapping(name)
            .ok_or_else(|| CatalogError::UnknownMapping(name.to_string()))?;
        self.analysis.remove(name);
        Ok(self.cache.invalidate(name))
    }

    /// Ingest a parsed document (schemas + mappings), invalidating cache
    /// entries for every mapping that was added or changed. Returns the
    /// touched mapping names.
    pub fn ingest_document(&mut self, document: &Document) -> Result<Vec<String>, CatalogError> {
        let touched = self.catalog.from_document(document)?;
        for name in &touched {
            self.cache.invalidate(name);
            self.analysis.remove(name);
        }
        Ok(touched)
    }

    /// Explicitly drop cached compositions depending on a mapping; returns
    /// how many entries were dropped.
    pub fn invalidate(&mut self, mapping: &str) -> usize {
        self.analysis.remove(mapping);
        self.cache.invalidate(mapping)
    }

    /// Statically analyze one mapping: weak-acyclicity termination verdict
    /// plus lint diagnostics. Reports are cached per mapping, keyed by the
    /// mapping's content hash at analysis time — content addressing makes
    /// staleness impossible (a changed mapping has a changed hash and misses
    /// the cache), and the provenance invalidation sites drop entries
    /// eagerly besides.
    pub fn analyze_mapping(
        &mut self,
        name: &str,
    ) -> Result<(ContentHash, Arc<AnalysisReport>), CatalogError> {
        let hash = self.catalog.mapping(name)?.hash;
        if let Some((cached_hash, report)) = self.analysis.get(name) {
            if *cached_hash == hash {
                return Ok((hash, Arc::clone(report)));
            }
        }
        let mapping = self.catalog.materialize(name)?;
        let report = Arc::new(mapcomp_analysis::analyze_mapping(&mapping));
        self.analysis.insert(name.to_string(), (hash, Arc::clone(&report)));
        Ok((hash, report))
    }

    /// Analyze every mapping in the catalog, in name order.
    pub fn analyze_all(&mut self) -> Vec<(String, Arc<AnalysisReport>)> {
        let names: Vec<String> = self.catalog.mappings().map(|entry| entry.name.clone()).collect();
        names
            .into_iter()
            .filter_map(|name| {
                let report = self.analyze_mapping(&name).ok()?.1;
                Some((name, report))
            })
            .collect()
    }

    /// Byte-stable catalog-wide analysis text: one `mapping <name>: <verdict>`
    /// line per mapping (name-sorted), with diagnostics and chase skips
    /// indented underneath. This is the payload of the wire `analyze` frame
    /// and the `lint` CLI subcommand.
    pub fn analysis_text(&mut self, only: Option<&str>) -> Result<String, CatalogError> {
        let reports = match only {
            Some(name) => vec![(name.to_string(), self.analyze_mapping(name)?.1)],
            None => self.analyze_all(),
        };
        Ok(render_analysis_text(&reports))
    }

    /// Run data exchange for a mapping under an analysis-guided chase
    /// configuration (see [`SessionConfig::chase_config`]): proven mappings
    /// chase under their derived budget, unknown ones under runtime limits,
    /// and the result records the verdict it executed under.
    pub fn exchange_analyzed(
        &mut self,
        name: &str,
        source: &mapcomp_algebra::Instance,
    ) -> Result<mapcomp_compose::ExchangeResult, CatalogError> {
        let report = self.analyze_mapping(name)?.1;
        let mapping = self.catalog.materialize(name)?;
        let full = mapping.combined_signature().map_err(CatalogError::Algebra)?;
        let config =
            self.config.chase_config(Some((&report, mapcomp_analysis::domain_size(source))));
        Ok(mapcomp_compose::exchange(
            mapping.constraints.as_slice(),
            &full,
            &mapping.output,
            source,
            &self.registry,
            &config,
        ))
    }

    /// Resolve a path under the configured [`PathCost`] and compose it
    /// ("compose σ_from → σ_to").
    pub fn compose_path(&mut self, from: &str, to: &str) -> Result<ChainResult, CatalogError> {
        let path = resolve_path_with(&self.catalog, from, to, self.config.path_cost)?;
        self.paths_resolved += 1;
        self.compose_names(&path)
    }

    /// Compose an explicit chain of mapping names.
    pub fn compose_names(&mut self, names: &[String]) -> Result<ChainResult, CatalogError> {
        let result = compose_chain(
            &self.catalog,
            &mut self.cache,
            names,
            &self.registry,
            &self.config.compose,
            &self.config.chain,
        )?;
        self.compose_calls += result.compose_calls;
        self.chains_composed += 1;
        Ok(result)
    }

    /// Batch API: compose several `(from, to)` requests in one call. Requests
    /// share the memo cache, so overlapping chains pay for their common
    /// segments once; per-request failures do not abort the batch.
    pub fn compose_batch(
        &mut self,
        requests: &[(String, String)],
    ) -> Vec<Result<ChainResult, CatalogError>> {
        requests.iter().map(|(from, to)| self.compose_path(from, to)).collect()
    }

    /// Parallel batch API: fan the requests across `workers` scoped threads
    /// sharing this session's catalog (read-only) and its memo cache,
    /// temporarily striped into per-worker locked segments (see
    /// [`ShardedMemoCache`]). The cache — entries and cumulative statistics —
    /// is merged back into the session afterwards, so a parallel batch is
    /// observationally a faster [`Session::compose_batch`]. Results come
    /// back in request order; per-request failures do not abort the batch.
    ///
    /// For fully concurrent sessions (mutations racing compositions), see
    /// [`crate::shared::SharedSession`].
    pub fn compose_batch_parallel(
        &mut self,
        requests: &[(String, String)],
        workers: usize,
    ) -> Vec<Result<ChainResult, CatalogError>> {
        let workers = workers.max(1).min(requests.len().max(1));
        let sharded = ShardedMemoCache::from_cache(
            std::mem::take(&mut self.cache),
            workers.saturating_mul(4).clamp(4, 64),
            self.config.cache_capacity,
        );
        // Each slot records (path resolved?, outcome) so the counter updates
        // below match `compose_batch` exactly: `paths_resolved` counts
        // successful resolutions even when the composition then fails
        // (e.g. under `require_complete`).
        type Outcome = (bool, Result<ChainResult, CatalogError>);
        let mut slots: Vec<Option<Outcome>> = (0..requests.len()).map(|_| None).collect();
        let (catalog, registry, config) = (&self.catalog, &self.registry, &self.config);
        let compose_one = |from: &str, to: &str| -> Outcome {
            let path = match resolve_path_with(catalog, from, to, config.path_cost) {
                Ok(path) => path,
                Err(error) => return (false, Err(error)),
            };
            let result = compose_chain_with(
                catalog,
                &sharded,
                &path,
                registry,
                &config.compose,
                &config.chain,
            );
            (true, result)
        };
        if workers <= 1 {
            for (slot, (from, to)) in slots.iter_mut().zip(requests) {
                *slot = Some(compose_one(from, to));
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        let compose_one = &compose_one;
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            let mut index = worker;
                            while index < requests.len() {
                                let (from, to) = &requests[index];
                                done.push((index, compose_one(from, to)));
                                index += workers;
                            }
                            done
                        })
                    })
                    .collect();
                for handle in handles {
                    for (index, outcome) in handle.join().expect("batch worker panicked") {
                        slots[index] = Some(outcome);
                    }
                }
            });
        }
        self.cache = sharded.into_cache(self.config.cache_capacity);
        let mut results = Vec::with_capacity(requests.len());
        for slot in slots {
            let (resolved, result) = slot.expect("every request assigned");
            if resolved {
                self.paths_resolved += 1;
            }
            if let Ok(result) = &result {
                self.compose_calls += result.compose_calls;
                self.chains_composed += 1;
            }
            results.push(result);
        }
        results
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            compose_calls: self.compose_calls,
            paths_resolved: self.paths_resolved,
            chains_composed: self.chains_composed,
            cache: self.cache.stats(),
            cache_entries: self.cache.len(),
        }
    }

    /// Read access to the memo cache (provenance queries, introspection).
    pub fn cache(&self) -> &MemoCache {
        &self.cache
    }

    /// Replace the memo cache, e.g. with one restored from a sidecar file
    /// (see [`crate::persist`]). Content addressing makes this safe: entries
    /// that no longer match any current mapping hash are simply never hit.
    /// The session's configured capacity is applied to the restored cache;
    /// entries trimmed by that are replay artifacts, not workload events, so
    /// the cumulative counters are pinned back to their pre-trim values —
    /// otherwise every restore/flush cycle of a capacity-bounded session
    /// would count the same evictions again.
    pub fn restore_cache(&mut self, mut cache: MemoCache) {
        let persisted = cache.stats();
        cache.set_capacity(self.config.cache_capacity);
        cache.restore_stats(persisted);
        self.cache = cache;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::parse_constraints;

    /// A 5-hop chain of unary copy mappings v0 → … → v5.
    fn chain_session(hops: usize) -> Session {
        let mut catalog = Catalog::new();
        for i in 0..=hops {
            catalog.add_schema(format!("v{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..hops {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("v{i}"),
                    &format!("v{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        Session::new(catalog)
    }

    #[test]
    fn editing_a_middle_link_recomposes_only_the_suffix() {
        // The acceptance-criterion scenario: compose a 5-hop chain, edit one
        // middle mapping, recompose — strictly fewer pairwise compositions
        // than from scratch, by the instrumented counter.
        let mut session = chain_session(5);
        let cold = session.compose_path("v0", "v5").unwrap();
        assert_eq!(cold.compose_calls, 4, "cold 5-hop chain = 4 pairwise compositions");

        // Edit the middle link m2 (still a copy, but through a projection).
        let (version, dropped) = session
            .update_mapping("m2", parse_constraints("project[0](R2) <= R3").unwrap())
            .unwrap();
        assert_eq!(version, 2);
        assert!(dropped > 0, "cached suffix segments must be invalidated");

        let incremental = session.compose_path("v0", "v5").unwrap();
        assert!(
            incremental.compose_calls < cold.compose_calls,
            "incremental ({}) must be strictly cheaper than cold ({})",
            incremental.compose_calls,
            cold.compose_calls
        );
        assert!(incremental.cache_hits > 0);
        assert!(incremental.is_complete());
    }

    #[test]
    fn no_edit_means_fully_cached_recompose() {
        let mut session = chain_session(4);
        session.compose_path("v0", "v4").unwrap();
        let warm = session.compose_path("v0", "v4").unwrap();
        assert_eq!(warm.compose_calls, 0);
        let stats = session.stats();
        assert_eq!(stats.compose_calls, 3);
        assert_eq!(stats.chains_composed, 2);
        assert_eq!(stats.paths_resolved, 2);
        assert!(stats.cache.hits > 0);
    }

    #[test]
    fn batch_requests_share_segments() {
        let mut session = chain_session(4);
        let results = session.compose_batch(&[
            ("v0".to_string(), "v3".to_string()),
            ("v0".to_string(), "v4".to_string()),
            ("v9".to_string(), "v0".to_string()),
        ]);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        assert!(results[2].is_err(), "unknown schema fails without aborting the batch");
        // Request 2 extends request 1's chain: one extra composition only.
        assert_eq!(results[1].as_ref().unwrap().compose_calls, 1);
    }

    #[test]
    fn identical_reregistration_keeps_the_cache_warm() {
        let mut session = chain_session(3);
        session.compose_path("v0", "v3").unwrap();
        // Re-adding the same mapping content must not invalidate anything.
        session.add_mapping("m1", "v1", "v2", parse_constraints("R1 <= R2").unwrap()).unwrap();
        let warm = session.compose_path("v0", "v3").unwrap();
        assert_eq!(warm.compose_calls, 0);
    }

    #[test]
    fn schema_update_invalidates_through_touching_mappings() {
        let mut session = chain_session(3);
        session.compose_path("v0", "v3").unwrap();
        // Growing v2 changes m1 and m2's content hashes.
        session.add_schema("v2", Signature::from_arities([("R2", 1), ("Extra", 2)]));
        let after = session.compose_path("v0", "v3").unwrap();
        assert!(after.compose_calls > 0, "schema edit must force recomposition");
    }

    #[test]
    fn bounded_cache_evicts_but_stays_correct() {
        let hops = 6;
        let config = SessionConfig { cache_capacity: Some(2), ..SessionConfig::default() };
        let mut session = chain_session(hops);
        let catalog = session.catalog().clone();
        session = Session::with_config(catalog, mapcomp_compose::Registry::standard(), config);
        let first = session.compose_path("v0", &format!("v{hops}")).unwrap();
        assert_eq!(first.compose_calls, hops - 1);
        let stats = session.stats();
        assert_eq!(stats.cache_entries, 2, "capacity bounds live entries");
        assert!(stats.cache.evictions > 0, "composing a long chain must evict");
        // Recomposition still works (paying for the evicted segments again).
        let again = session.compose_path("v0", &format!("v{hops}")).unwrap();
        assert!(again.is_complete());
        assert!(again.compose_calls > 0);
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let requests: Vec<(String, String)> = (0..5)
            .flat_map(|i| ((i + 1)..=5).map(move |j| (format!("v{i}"), format!("v{j}"))))
            .chain([("v9".to_string(), "v0".to_string())])
            .collect();
        let mut parallel = chain_session(5);
        let parallel_results = parallel.compose_batch_parallel(&requests, 4);
        let mut sequential = chain_session(5);
        let sequential_results = sequential.compose_batch(&requests);
        assert_eq!(parallel_results.len(), sequential_results.len());
        for (index, (p, s)) in parallel_results.iter().zip(&sequential_results).enumerate() {
            match (p, s) {
                (Ok(p), Ok(s)) => {
                    assert_eq!(
                        p.chain.mapping.constraints.to_string(),
                        s.chain.mapping.constraints.to_string(),
                        "request {index} diverged"
                    );
                    assert_eq!(p.chain.path, s.chain.path);
                    // Not compared: `chain.hash`, which encodes the fold
                    // association actually used and so legitimately varies
                    // with cache warmth (scheduling) even for equal content.
                }
                (Err(_), Err(_)) => {}
                other => panic!("request {index}: outcome mismatch {other:?}"),
            }
        }
        // The sharded cache was merged back: a warm recompose is free.
        let warm = parallel.compose_path("v0", "v5").unwrap();
        assert_eq!(warm.compose_calls, 0);
        assert_eq!(parallel.stats().chains_composed, requests.len() - 1 + 1);
    }

    #[test]
    fn restore_then_reflush_cycles_do_not_inflate_stats() {
        // A capacity-bounded session restoring a larger persisted cache must
        // not count the replay trim as workload evictions — however many
        // restore/flush cycles happen in one process.
        let mut donor = chain_session(6);
        donor.compose_path("v0", "v6").unwrap();
        let persisted = donor.cache().stats();
        assert!(persisted.insertions >= 5);

        let config = SessionConfig { cache_capacity: Some(2), ..SessionConfig::default() };
        let catalog = donor.catalog().clone();
        let mut bounded =
            Session::with_config(catalog, mapcomp_compose::Registry::standard(), config);
        for cycle in 0..3 {
            let mut replayed = MemoCache::new();
            for (key, entry) in donor.cache().iter() {
                replayed.insert(*key, entry.chain.clone());
            }
            replayed.restore_stats(persisted);
            bounded.restore_cache(replayed);
            assert_eq!(
                bounded.cache().stats(),
                persisted,
                "cycle {cycle}: replay trim must not count as evictions"
            );
            assert!(bounded.cache().len() <= 2);
        }
    }

    #[test]
    fn op_count_path_cost_picks_the_cheaper_longer_route() {
        // A 2-hop shortcut through operator-heavy mappings vs. the 3-hop
        // copy chain: hop-based resolution takes the shortcut, op-count-based
        // resolution the cheap chain — and both compose successfully.
        let mut build = chain_session(3);
        build.add_schema("shortcut", Signature::from_arities([("S", 1)]));
        build
            .add_mapping(
                "heavy1",
                "v0",
                "shortcut",
                parse_constraints("project[0](select[#0 = #1](R0 * R0)) <= S").unwrap(),
            )
            .unwrap();
        build
            .add_mapping(
                "heavy2",
                "shortcut",
                "v3",
                parse_constraints("project[0](select[#0 = #1](S * S)) <= R3").unwrap(),
            )
            .unwrap();
        let catalog = build.catalog().clone();

        let mut by_hops = Session::new(catalog.clone());
        let short = by_hops.compose_path("v0", "v3").unwrap();
        assert_eq!(short.chain.path, vec!["heavy1", "heavy2"]);

        let config = SessionConfig {
            path_cost: crate::graph::PathCost::OpCount,
            ..SessionConfig::default()
        };
        let mut by_cost =
            Session::with_config(catalog, mapcomp_compose::Registry::standard(), config);
        let cheap = by_cost.compose_path("v0", "v3").unwrap();
        assert_eq!(cheap.chain.path, vec!["m0", "m1", "m2"]);
        assert!(cheap.is_complete());
    }

    #[test]
    fn remove_mapping_breaks_the_path() {
        let mut session = chain_session(3);
        session.compose_path("v0", "v3").unwrap();
        session.remove_mapping("m1").unwrap();
        assert!(matches!(session.compose_path("v0", "v3"), Err(CatalogError::NoPath { .. })));
    }
}
