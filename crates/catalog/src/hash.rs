//! Content hashing for catalog entries and memo-cache keys.
//!
//! The memo cache is keyed by `(left-hash, right-hash, config-hash)`, so the
//! hash must be a pure function of the *content* of a schema or mapping (its
//! canonical textual rendering), not of registration order or pointer
//! identity. A 64-bit FNV-1a over the `Display` form gives that: the
//! pretty-printer is canonical (printing → parsing round-trips), deterministic
//! across platforms, and already exists for every algebra type.

use mapcomp_algebra::{ConstraintSet, Signature};
use mapcomp_compose::ComposeConfig;

/// A 64-bit content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentHash(pub u64);

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over a string.
pub fn hash_str(text: &str) -> u64 {
    hash_bytes(text.as_bytes())
}

/// Order-dependent combination of several hashes (used for composition
/// results: `combine(left, right, config)` identifies one memoised pairwise
/// composition).
pub fn combine(parts: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for part in parts {
        for byte in part.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// Content hash of a schema (its canonical printed signature).
pub fn hash_signature(sig: &Signature) -> ContentHash {
    ContentHash(hash_str(&sig.to_string()))
}

/// Content hash of a mapping: source schema, target schema, and constraints,
/// all in canonical printed form. Editing any of the three yields a new hash.
pub fn hash_mapping(
    source: &Signature,
    target: &Signature,
    constraints: &ConstraintSet,
) -> ContentHash {
    ContentHash(combine(&[
        hash_str(&source.to_string()),
        hash_str(&target.to_string()),
        hash_str(&constraints.to_string()),
    ]))
}

/// Content hash of a compose configuration: two configurations with the same
/// hash produce the same composition for the same inputs, so cache entries
/// are shared exactly when that holds.
pub fn hash_config(config: &ComposeConfig) -> u64 {
    let rendered = format!(
        "unfold={} left={} right={} blowup={:?} order={:?}",
        config.enable_view_unfolding,
        config.enable_left_compose,
        config.enable_right_compose,
        config.blowup_factor,
        config.symbol_order,
    );
    hash_str(&rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::parse_constraints;

    #[test]
    fn hashes_are_stable_and_content_sensitive() {
        let a = Signature::from_arities([("R", 2), ("S", 1)]);
        let b = Signature::from_arities([("S", 1), ("R", 2)]);
        // BTreeMap ordering makes registration order irrelevant.
        assert_eq!(hash_signature(&a), hash_signature(&b));
        let c = Signature::from_arities([("R", 3), ("S", 1)]);
        assert_ne!(hash_signature(&a), hash_signature(&c));
    }

    #[test]
    fn mapping_hash_tracks_every_component() {
        let src = Signature::from_arities([("R", 1)]);
        let tgt = Signature::from_arities([("S", 1)]);
        let cons = parse_constraints("R <= S").unwrap();
        let base = hash_mapping(&src, &tgt, &cons);
        assert_eq!(base, hash_mapping(&src, &tgt, &cons));
        let edited = parse_constraints("S <= R").unwrap();
        assert_ne!(base, hash_mapping(&src, &tgt, &edited));
        let other_src = Signature::from_arities([("R", 2)]);
        assert_ne!(base, hash_mapping(&other_src, &tgt, &cons));
    }

    #[test]
    fn combine_is_order_dependent() {
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
        assert_ne!(combine(&[1, 2, 3]), combine(&[1, 2, 4]));
        assert_eq!(combine(&[1, 2, 3]), combine(&[1, 2, 3]));
    }

    #[test]
    fn config_hash_distinguishes_ablations() {
        let full = hash_config(&ComposeConfig::default());
        assert_ne!(full, hash_config(&ComposeConfig::without_view_unfolding()));
        assert_ne!(full, hash_config(&ComposeConfig::without_left_compose()));
        assert_eq!(full, hash_config(&ComposeConfig::default()));
    }
}
