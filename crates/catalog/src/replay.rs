//! Hook between the schema-evolution simulator and the catalog: the paper's
//! Figure-2-style editing scenario re-expressed as incremental catalog
//! recomposition.
//!
//! The original simulator (`mapcomp_evolution::run_editing`) keeps one
//! running constraint set and composes it after every edit. Here every edit
//! instead registers a *new schema version* `v{i}` and a mapping
//! `edit{i} : v{i-1} → v{i}` in a catalog, and the running mapping is
//! obtained by asking the session for `compose_path(v0, v{i})`. Because the
//! memo cache keeps the chain's prefix warm, each edit costs exactly one new
//! pairwise composition — the same incremental behaviour the hand-rolled
//! simulator achieves, but produced by the generic chain driver, with
//! content-hashed provenance on every cached segment.

use mapcomp_algebra::{ConstraintSet, Instance, Signature};
use mapcomp_compose::{exchange, ExchangeConfig, ExchangeResult};
use mapcomp_evolution::editing::random_schema;
use mapcomp_evolution::{apply_primitive, NameSource, PrimitiveKind, ScenarioConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chain::ChainResult;
use crate::error::CatalogError;
use crate::session::Session;
use crate::store::Catalog;

/// Per-edit record of the replay.
#[derive(Debug, Clone)]
pub struct ReplayRecord {
    /// Edit index (0-based; the resulting schema version is `v{index+1}`).
    pub index: usize,
    /// Primitive applied.
    pub kind: PrimitiveKind,
    /// Pairwise compositions actually performed to recompose `v0 → v{i+1}`.
    pub compose_calls: usize,
    /// Memo-cache hits while recomposing.
    pub cache_hits: usize,
    /// Intermediate symbols still pending after this edit.
    pub pending: usize,
}

/// Result of replaying an editing scenario through the catalog.
pub struct CatalogReplay {
    /// The session, holding the catalog of all versions and the warm cache.
    pub session: Session,
    /// Number of edits applied (schema versions `v0 … v{edits}`).
    pub edits: usize,
    /// Per-edit records.
    pub records: Vec<ReplayRecord>,
    /// The final composed mapping `v0 → v{edits}` (absent when zero edits
    /// were applied).
    pub final_result: Option<ChainResult>,
}

impl CatalogReplay {
    /// Total pairwise compositions across the whole replay.
    pub fn total_compose_calls(&self) -> usize {
        self.records.iter().map(|r| r.compose_calls).sum()
    }

    /// Chase a concrete `v0` instance through the final composed mapping
    /// (paper Example 1's "migrate data from the old schema to the new
    /// schema", applied to the whole evolution chain). Residual symbols are
    /// chased as auxiliary target relations, exactly as §1.3 prescribes for
    /// symbols that resisted elimination. Returns `None` when the replay
    /// applied no edits.
    ///
    /// Replays chase after every edit in some workloads, so the exchange
    /// configuration (notably [`ExchangeConfig::strategy`]) is the caller's
    /// to choose; the semi-naive default keeps repeated migrations cheap.
    pub fn migrate(&self, source: &Instance, config: &ExchangeConfig) -> Option<ExchangeResult> {
        let chain = &self.final_result.as_ref()?.chain;
        let full =
            chain.mapping.input.union(&chain.mapping.output).ok()?.union(&chain.residual).ok()?;
        let mut target_sig = chain.mapping.output.clone();
        for (name, info) in chain.residual.iter() {
            target_sig.add(name.to_string(), info.clone());
        }
        Some(exchange(
            chain.mapping.constraints.as_slice(),
            &full,
            &target_sig,
            source,
            self.session.registry(),
            config,
        ))
    }

    /// [`CatalogReplay::migrate`] with the chase configuration chosen by
    /// static analysis: the final composed chain (residuals included, exactly
    /// as `migrate` chases them) is analyzed for weak acyclicity, and a
    /// proven verdict swaps the hardcoded evaluation budget for the derived
    /// polynomial bound — the chase-consults-analysis path end to end. The
    /// analysis report is returned alongside the exchange result so callers
    /// can inspect the verdict that drove the run.
    pub fn migrate_analyzed(
        &self,
        source: &Instance,
    ) -> Option<(ExchangeResult, mapcomp_analysis::AnalysisReport)> {
        let chain = &self.final_result.as_ref()?.chain;
        let full =
            chain.mapping.input.union(&chain.mapping.output).ok()?.union(&chain.residual).ok()?;
        let mut target_sig = chain.mapping.output.clone();
        for (name, info) in chain.residual.iter() {
            target_sig.add(name.to_string(), info.clone());
        }
        let report = mapcomp_analysis::analyze_exchange(
            chain.mapping.constraints.as_slice(),
            &full,
            &target_sig,
        );
        let config = self
            .session
            .config()
            .chase_config(Some((&report, mapcomp_analysis::domain_size(source))));
        let result = exchange(
            chain.mapping.constraints.as_slice(),
            &full,
            &target_sig,
            source,
            self.session.registry(),
            &config,
        );
        Some((result, report))
    }
}

/// Replay a schema-editing scenario (same configuration type as
/// `run_editing`) as incremental catalog recomposition.
pub fn replay_editing(config: &ScenarioConfig) -> Result<CatalogReplay, CatalogError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut names = NameSource::new();
    let original = random_schema(config.schema_size, &config.options, &mut names, &mut rng);

    let mut session = Session::new(Catalog::new());
    session.add_schema("v0", original.clone());

    let mut current = original;
    let mut records = Vec::new();
    let mut final_result = None;

    for index in 0..config.edits {
        // Pick an applicable primitive and an input relation for it, exactly
        // as the original editing scenario does.
        let has_input_for = |kind: PrimitiveKind| -> bool {
            if !kind.consumes_input() {
                return true;
            }
            current.iter().any(|(_, info)| {
                info.arity >= kind.min_input_arity() && (!kind.requires_key() || info.key.is_some())
            })
        };
        let keys_enabled = config.options.keys_enabled;
        let Some(kind) = config
            .event_vector
            .sample(&mut rng, |k| (keys_enabled || !k.requires_key()) && has_input_for(k))
        else {
            break;
        };

        let input_name = if kind.consumes_input() {
            let eligible: Vec<String> = current
                .iter()
                .filter(|(_, info)| {
                    info.arity >= kind.min_input_arity()
                        && (!kind.requires_key() || info.key.is_some())
                })
                .map(|(name, _)| name.to_string())
                .collect();
            Some(eligible[rng.gen_range(0..eligible.len())].clone())
        } else {
            None
        };
        let input = input_name
            .as_ref()
            .map(|name| (name.as_str(), current.get(name).expect("eligible relation").clone()));

        let outcome = apply_primitive(
            kind,
            input.as_ref().map(|(name, info)| (*name, info)),
            &config.options,
            &mut names,
            &mut rng,
        );

        // Produce the next schema version and register the edit as a catalog
        // mapping v{i} → v{i+1}.
        if let Some(consumed) = &outcome.consumed {
            current.remove(consumed);
        }
        for (name, info) in &outcome.created {
            current.add(name.clone(), info.clone());
        }
        let from = format!("v{index}");
        let to = format!("v{}", index + 1);
        session.add_schema(to.clone(), current.clone());
        session.add_mapping(
            format!("edit{}", index + 1),
            &from,
            &to,
            ConstraintSet::from_constraints(outcome.constraints.clone()),
        )?;

        // Incrementally recompose the whole chain v0 → v{i+1}.
        let result = session.compose_path("v0", &to)?;
        records.push(ReplayRecord {
            index,
            kind,
            compose_calls: result.compose_calls,
            cache_hits: result.cache_hits,
            pending: result.chain.residual.len(),
        });
        final_result = Some(result);
    }

    Ok(CatalogReplay { session, edits: records.len(), records, final_result })
}

/// The original schema of a replayed scenario (version `v0`), for callers
/// that want to compare against `run_editing` on the same seed.
pub fn original_schema(config: &ScenarioConfig) -> Signature {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut names = NameSource::new();
    random_schema(config.schema_size, &config.options, &mut names, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig { schema_size: 6, edits: 12, seed: 42, ..ScenarioConfig::default() }
    }

    #[test]
    fn replay_is_incremental_one_composition_per_edit() {
        let replay = replay_editing(&small_config()).unwrap();
        assert!(replay.edits > 1);
        // Edit 0 composes a 1-link chain (free); every later edit pays at
        // most one new pairwise composition thanks to the warm prefix —
        // strictly fewer than recomposing its chain from scratch.
        assert_eq!(replay.records[0].compose_calls, 0);
        for record in &replay.records[1..] {
            assert!(
                record.compose_calls <= 1,
                "edit {} recomposed {} pairwise steps",
                record.index,
                record.compose_calls
            );
        }
        // Total work is linear in the number of edits, not quadratic.
        assert!(replay.total_compose_calls() <= replay.edits);
        let final_result = replay.final_result.as_ref().expect("at least one edit");
        assert_eq!(final_result.chain.source, "v0");
        assert_eq!(final_result.chain.path.len(), replay.edits);
    }

    #[test]
    fn replay_is_reproducible() {
        let a = replay_editing(&small_config()).unwrap();
        let b = replay_editing(&small_config()).unwrap();
        assert_eq!(a.edits, b.edits);
        let ca = a.final_result.as_ref().unwrap().chain.mapping.constraints.to_string();
        let cb = b.final_result.as_ref().unwrap().chain.mapping.constraints.to_string();
        assert_eq!(ca, cb);
    }

    #[test]
    fn replay_registers_every_version() {
        let replay = replay_editing(&small_config()).unwrap();
        let catalog = replay.session.catalog();
        assert_eq!(catalog.schema_count(), replay.edits + 1);
        assert_eq!(catalog.mapping_count(), replay.edits);
        assert!(catalog.schema("v0").is_ok());
        assert!(catalog.schema(&format!("v{}", replay.edits)).is_ok());
    }

    #[test]
    fn migration_through_a_replayed_chain_agrees_across_strategies() {
        use mapcomp_algebra::Value;
        use mapcomp_compose::ChaseStrategy;

        let config = small_config();
        let replay = replay_editing(&config).unwrap();
        let mut source = Instance::new();
        for (name, info) in original_schema(&config).iter() {
            for row in 0..2i64 {
                let tuple: Vec<Value> =
                    (0..info.arity).map(|c| Value::Int(row * 10 + c as i64)).collect();
                source.insert(name, tuple);
            }
        }
        let semi =
            replay.migrate(&source, &ExchangeConfig::default()).expect("replay applied edits");
        let naive = replay
            .migrate(&source, &ExchangeConfig::default().with_strategy(ChaseStrategy::Naive))
            .expect("replay applied edits");
        assert_eq!(semi.target, naive.target);
        assert_eq!(semi.converged, naive.converged);
        assert_eq!(semi.skipped.len(), naive.skipped.len());
        assert!(semi.converged);
    }

    #[test]
    fn analyzed_migration_records_its_verdict_and_agrees_with_plain() {
        use mapcomp_algebra::Value;
        use mapcomp_compose::TerminationVerdict;

        let config = small_config();
        let replay = replay_editing(&config).unwrap();
        let mut source = Instance::new();
        for (name, info) in original_schema(&config).iter() {
            for row in 0..2i64 {
                let tuple: Vec<Value> =
                    (0..info.arity).map(|c| Value::Int(row * 10 + c as i64)).collect();
                source.insert(name, tuple);
            }
        }
        let (analyzed, report) = replay.migrate_analyzed(&source).expect("replay applied edits");
        assert_ne!(analyzed.verdict, TerminationVerdict::Unanalyzed, "verdict must be recorded");
        if report.proven() {
            assert!(matches!(analyzed.verdict, TerminationVerdict::Proven { .. }));
            assert!(analyzed.converged, "a proven chase must converge within its derived budget");
        }
        let plain =
            replay.migrate(&source, &ExchangeConfig::default()).expect("replay applied edits");
        assert_eq!(analyzed.target, plain.target, "analysis must not change the chased target");
    }

    #[test]
    fn original_schema_matches_v0() {
        let config = small_config();
        let replay = replay_editing(&config).unwrap();
        let v0 = replay.session.catalog().schema("v0").unwrap().signature.clone();
        assert_eq!(v0, original_schema(&config));
    }
}
