//! Concurrent shared-catalog sessions: a lock-striped store and a parallel
//! batch-composition session, safe to share by reference across threads.
//!
//! # Concurrency model
//!
//! * **Store** — [`SharedCatalog`] stripes schemas and mappings across N
//!   shards keyed by the FNV content hash of the entry name, each behind a
//!   [`RwLock`]. Lookups and chain materialisation take single-shard *read*
//!   locks, so the compose read path never serialises readers. Mapping
//!   registration write-locks only the shards involved (acquired in
//!   ascending shard order — the global lock discipline that makes deadlock
//!   impossible); schema updates write-lock every shard because they rehash
//!   the mappings that mention the schema, wherever those live.
//! * **Snapshots** — path resolution captures the composition graph under
//!   all shard read locks at once (readers still proceed concurrently) and
//!   then searches without holding any lock. Chain materialisation re-checks
//!   the entry's content hash after reading its schemas and retries on a
//!   mismatch, so a torn read across an interleaved schema edit can never
//!   produce a segment whose hash disagrees with its content.
//! * **Versions** — version counters live inside the entries and are only
//!   advanced under the shard write locks, so concurrent writers cannot
//!   lose increments.
//! * **Cache** — the memo cache is a [`ShardedMemoCache`]: per-segment
//!   mutexes keyed by memo-key hash, merged statistics (see
//!   [`crate::cache`]).
//! * **Sidecar** — persistence goes through
//!   [`crate::persist::SidecarWriter`]: a single-writer append protocol
//!   with a mutex-guarded flush; readers never block (they read a plain
//!   file that is only ever appended to or atomically replaced).
//!
//! [`SharedSession`] ties the pieces together and adds
//! [`SharedSession::compose_batch_parallel`]: a batch of chain-composition
//! requests fanned across a scoped thread pool, every worker sharing the
//! same store and cache, with results returned in request order.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use mapcomp_algebra::{ConstraintSet, Document, Mapping, Signature};
use mapcomp_analysis::AnalysisReport;
use mapcomp_compose::Registry;

use crate::cache::ShardedMemoCache;
use crate::chain::{compose_chain_with, ChainResult, ComposedChain, LinkSource};
use crate::error::CatalogError;
use crate::graph::{edge_cost, resolve_path_costed_in, resolve_path_in, PathCost};
use crate::hash::{hash_mapping, hash_signature, hash_str, ContentHash};
use crate::session::{render_analysis_text, SessionConfig, SessionStats};
use crate::store::{Catalog, MappingEntry, SchemaEntry};

/// One stripe of the shared store.
#[derive(Debug, Default)]
struct Shard {
    schemas: BTreeMap<String, SchemaEntry>,
    mappings: BTreeMap<String, MappingEntry>,
}

fn read(shard: &RwLock<Shard>) -> RwLockReadGuard<'_, Shard> {
    shard.read().unwrap_or_else(PoisonError::into_inner)
}

fn write(shard: &RwLock<Shard>) -> RwLockWriteGuard<'_, Shard> {
    shard.write().unwrap_or_else(PoisonError::into_inner)
}

/// A catalog striped across independently reader-writer-locked shards, safe
/// to share by reference between concurrent sessions. See the module docs
/// for the locking discipline.
#[derive(Debug)]
pub struct SharedCatalog {
    shards: Vec<RwLock<Shard>>,
}

impl SharedCatalog {
    /// Stripe a catalog across `shard_count` shards (at least one).
    pub fn from_catalog(catalog: &Catalog, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let mut shards: Vec<Shard> = (0..shard_count).map(|_| Shard::default()).collect();
        for entry in catalog.schemas() {
            let shard = shard_index(&entry.name, shard_count);
            shards[shard].schemas.insert(entry.name.clone(), entry.clone());
        }
        for entry in catalog.mappings() {
            let shard = shard_index(&entry.name, shard_count);
            shards[shard].mappings.insert(entry.name.clone(), entry.clone());
        }
        SharedCatalog { shards: shards.into_iter().map(RwLock::new).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, name: &str) -> &RwLock<Shard> {
        &self.shards[shard_index(name, self.shards.len())]
    }

    /// Number of registered schemas.
    pub fn schema_count(&self) -> usize {
        self.shards.iter().map(|shard| read(shard).schemas.len()).sum()
    }

    /// Number of registered mappings.
    pub fn mapping_count(&self) -> usize {
        self.shards.iter().map(|shard| read(shard).mappings.len()).sum()
    }

    /// Look up a schema (cloned out of its shard under a read lock).
    pub fn schema(&self, name: &str) -> Result<SchemaEntry, CatalogError> {
        read(self.shard_of(name))
            .schemas
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownSchema(name.to_string()))
    }

    /// Look up a mapping (cloned out of its shard under a read lock).
    pub fn mapping(&self, name: &str) -> Result<MappingEntry, CatalogError> {
        read(self.shard_of(name))
            .mappings
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownMapping(name.to_string()))
    }

    /// Register or update a schema; returns the new version and the names of
    /// mappings whose content hash changed with it (the caller invalidates
    /// their cache entries). Holds every shard write lock for the duration:
    /// the schema edit and the rehash of every touching mapping are one
    /// atomic step, which is what lets readers treat an entry's
    /// hash-vs-schema consistency check as a retry condition rather than an
    /// error.
    pub fn add_schema(&self, name: impl Into<String>, signature: Signature) -> (u64, Vec<String>) {
        let name = name.into();
        let hash = hash_signature(&signature);
        let mut guards: Vec<RwLockWriteGuard<'_, Shard>> = self.shards.iter().map(write).collect();
        let home = shard_index(&name, guards.len());
        let version = match guards[home].schemas.get(&name) {
            Some(existing) if existing.hash == hash => return (existing.version, Vec::new()),
            Some(existing) => existing.version + 1,
            None => 1,
        };
        guards[home]
            .schemas
            .insert(name.clone(), SchemaEntry { name: name.clone(), signature, version, hash });
        // Rehash affected mappings across every shard.
        let schema_sigs: BTreeMap<String, Signature> = guards
            .iter()
            .flat_map(|guard| guard.schemas.iter().map(|(n, e)| (n.clone(), e.signature.clone())))
            .collect();
        let mut touched = Vec::new();
        for guard in &mut guards {
            for entry in guard.mappings.values_mut() {
                if entry.source != name && entry.target != name {
                    continue;
                }
                let (Some(source), Some(target)) =
                    (schema_sigs.get(&entry.source), schema_sigs.get(&entry.target))
                else {
                    continue;
                };
                let new_hash = hash_mapping(source, target, &entry.constraints);
                if new_hash != entry.hash {
                    entry.version += 1;
                    entry.hash = new_hash;
                    entry.history.push((entry.version, new_hash));
                    touched.push(entry.name.clone());
                }
            }
        }
        touched.sort();
        (version, touched)
    }

    /// Register or update a mapping between two registered schemas; returns
    /// the new version (re-registering identical content is a no-op).
    /// Write-locks only the shards of the mapping and its two schemas, in
    /// ascending shard order.
    pub fn add_mapping(
        &self,
        name: impl Into<String>,
        source: &str,
        target: &str,
        constraints: ConstraintSet,
    ) -> Result<u64, CatalogError> {
        let name = name.into();
        let shard_count = self.shards.len();
        let mut involved: Vec<usize> =
            [name.as_str(), source, target].iter().map(|n| shard_index(n, shard_count)).collect();
        involved.sort_unstable();
        involved.dedup();
        let guards: BTreeMap<usize, RwLockWriteGuard<'_, Shard>> =
            involved.iter().map(|&index| (index, write(&self.shards[index]))).collect();
        let schema_sig = |schema: &str| -> Result<Signature, CatalogError> {
            guards[&shard_index(schema, shard_count)]
                .schemas
                .get(schema)
                .map(|entry| entry.signature.clone())
                .ok_or_else(|| CatalogError::UnknownSchema(schema.to_string()))
        };
        let source_sig = schema_sig(source)?;
        let target_sig = schema_sig(target)?;
        let _combined = source_sig.union(&target_sig)?;
        let hash = hash_mapping(&source_sig, &target_sig, &constraints);
        let home = shard_index(&name, shard_count);
        let mut guards = guards;
        let shard = guards.get_mut(&home).expect("home shard locked");
        let (version, mut history) = match shard.mappings.get(&name) {
            Some(existing) if existing.hash == hash => return Ok(existing.version),
            Some(existing) => (existing.version + 1, existing.history.clone()),
            None => (1, Vec::new()),
        };
        history.push((version, hash));
        shard.mappings.insert(
            name.clone(),
            MappingEntry {
                name,
                source: source.to_string(),
                target: target.to_string(),
                constraints,
                version,
                hash,
                history,
            },
        );
        Ok(version)
    }

    /// Replace the constraints of an existing mapping; returns the new
    /// version.
    pub fn update_mapping(
        &self,
        name: &str,
        constraints: ConstraintSet,
    ) -> Result<u64, CatalogError> {
        let entry = self.mapping(name)?;
        self.add_mapping(name.to_string(), &entry.source, &entry.target, constraints)
    }

    /// Remove a mapping; returns its entry if it existed.
    pub fn remove_mapping(&self, name: &str) -> Option<MappingEntry> {
        write(self.shard_of(name)).mappings.remove(name)
    }

    /// Capture the composition graph — every schema name and every
    /// `(mapping, source, target)` edge — under all shard read locks at
    /// once, so the snapshot is consistent; the search then runs lock-free.
    pub fn graph_snapshot(&self) -> (BTreeSet<String>, Vec<(String, String, String)>) {
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.shards.iter().map(read).collect();
        let mut schemas = BTreeSet::new();
        let mut edges = Vec::new();
        for guard in &guards {
            schemas.extend(guard.schemas.keys().cloned());
            for entry in guard.mappings.values() {
                edges.push((entry.name.clone(), entry.source.clone(), entry.target.clone()));
            }
        }
        edges.sort();
        (schemas, edges)
    }

    /// Resolve a fewest-hops path over a consistent graph snapshot.
    pub fn resolve_path(&self, from: &str, to: &str) -> Result<Vec<String>, CatalogError> {
        let (schemas, edges) = self.graph_snapshot();
        resolve_path_in(&schemas, &edges, from, to)
    }

    /// Capture the composition graph with per-edge operator-count weights
    /// (see [`edge_cost`]), under all shard read locks at once.
    pub fn graph_snapshot_costed(&self) -> (BTreeSet<String>, Vec<crate::graph::WeightedEdge>) {
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.shards.iter().map(read).collect();
        let mut schemas = BTreeSet::new();
        let mut edges = Vec::new();
        for guard in &guards {
            schemas.extend(guard.schemas.keys().cloned());
            for entry in guard.mappings.values() {
                edges.push((
                    entry.name.clone(),
                    entry.source.clone(),
                    entry.target.clone(),
                    edge_cost(&entry.constraints),
                ));
            }
        }
        edges.sort();
        (schemas, edges)
    }

    /// Resolve a path under an explicit [`PathCost`] over a consistent graph
    /// snapshot.
    pub fn resolve_path_with(
        &self,
        from: &str,
        to: &str,
        cost: PathCost,
    ) -> Result<Vec<String>, CatalogError> {
        match cost {
            PathCost::Hops => self.resolve_path(from, to),
            PathCost::OpCount => {
                let (schemas, edges) = self.graph_snapshot_costed();
                resolve_path_costed_in(&schemas, &edges, from, to)
            }
        }
    }

    /// Replace the entire store content with `catalog` — entries, versions
    /// and history included — under all shard write locks at once, so
    /// concurrent readers see either the old state or the new one in full.
    /// This is the wholesale counterpart of [`SharedCatalog::from_catalog`],
    /// used when a replication follower adopts a leader snapshot whose
    /// history its own state has diverged from (version counters must be
    /// taken verbatim, not re-derived by incremental upserts).
    pub fn restore(&self, catalog: &Catalog) {
        let mut guards: Vec<RwLockWriteGuard<'_, Shard>> = self.shards.iter().map(write).collect();
        for guard in &mut guards {
            guard.schemas.clear();
            guard.mappings.clear();
        }
        let shard_count = guards.len();
        for entry in catalog.schemas() {
            let shard = shard_index(&entry.name, shard_count);
            guards[shard].schemas.insert(entry.name.clone(), entry.clone());
        }
        for entry in catalog.mappings() {
            let shard = shard_index(&entry.name, shard_count);
            guards[shard].mappings.insert(entry.name.clone(), entry.clone());
        }
    }

    /// Clone the whole store back into a single-threaded [`Catalog`]
    /// (versions and history preserved), taken under all shard read locks.
    pub fn snapshot(&self) -> Catalog {
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.shards.iter().map(read).collect();
        let mut catalog = Catalog::new();
        for guard in &guards {
            for entry in guard.schemas.values() {
                catalog.insert_schema_entry(entry.clone());
            }
            for entry in guard.mappings.values() {
                catalog.insert_mapping_entry(entry.clone());
            }
        }
        catalog
    }
}

impl LinkSource for SharedCatalog {
    fn link(&self, name: &str) -> Result<ComposedChain, CatalogError> {
        loop {
            let entry = self.mapping(name)?;
            let source = self.schema(&entry.source)?;
            let target = self.schema(&entry.target)?;
            // The three reads take their shard locks one at a time; an
            // interleaved schema edit (which rehashes its mappings
            // atomically) makes the entry's recorded hash disagree with the
            // content just read — retry until the reads line up.
            if hash_mapping(&source.signature, &target.signature, &entry.constraints) != entry.hash
            {
                continue;
            }
            let mapping =
                Mapping::new(source.signature, target.signature, entry.constraints.clone());
            return Ok(ComposedChain {
                source: entry.source,
                target: entry.target,
                path: vec![entry.name.clone()],
                mapping,
                residual: Signature::new(),
                hash: entry.hash.0,
                deps: BTreeSet::from([entry.name]),
            });
        }
    }
}

fn shard_index(name: &str, shard_count: usize) -> usize {
    (hash_str(name) % shard_count as u64) as usize
}

/// A concurrent catalog session: every method takes `&self`, so one session
/// can be shared by reference across threads (it is `Sync`). Mutations
/// invalidate dependent cache entries exactly like the single-threaded
/// [`crate::session::Session`]; instrumentation counters are atomics.
pub struct SharedSession {
    catalog: SharedCatalog,
    registry: Registry,
    config: SessionConfig,
    cache: ShardedMemoCache,
    /// Mutex-guarded mirror of [`crate::session::Session`]'s per-mapping
    /// analysis cache: name → (content hash at analysis time, report).
    /// Hash-checked on read, cleared at every invalidation site.
    analysis: Mutex<BTreeMap<String, (ContentHash, Arc<AnalysisReport>)>>,
    workers: usize,
    compose_calls: AtomicUsize,
    paths_resolved: AtomicUsize,
    chains_composed: AtomicUsize,
}

impl SharedSession {
    /// Share `catalog` for parallel batches over `workers` worker threads,
    /// with the standard registry and default configuration.
    pub fn new(catalog: Catalog, workers: usize) -> Self {
        SharedSession::with_config(catalog, Registry::standard(), SessionConfig::default(), workers)
    }

    /// Create a shared session with an explicit registry and configuration.
    /// The store and cache are striped ~4 stripes per worker (bounded), so
    /// workers composing disjoint chains rarely meet on a lock.
    pub fn with_config(
        catalog: Catalog,
        registry: Registry,
        config: SessionConfig,
        workers: usize,
    ) -> Self {
        let workers = workers.max(1);
        let stripes = workers.saturating_mul(4).clamp(4, 64);
        let cache = ShardedMemoCache::new(stripes, config.cache_capacity);
        SharedSession {
            catalog: SharedCatalog::from_catalog(&catalog, stripes),
            registry,
            config,
            cache,
            analysis: Mutex::new(BTreeMap::new()),
            workers,
            compose_calls: AtomicUsize::new(0),
            paths_resolved: AtomicUsize::new(0),
            chains_composed: AtomicUsize::new(0),
        }
    }

    /// The shared store.
    pub fn catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// The configured worker count for parallel batches.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The operator registry compositions run under (also the registry any
    /// chase over this session's mappings should use, so user-defined
    /// operators evaluate identically in both).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The sharded memo cache (provenance queries, instrumentation).
    pub fn cache(&self) -> &ShardedMemoCache {
        &self.cache
    }

    /// Seed the sharded cache from a single-threaded cache (e.g. one
    /// restored from a sidecar). Entries are redistributed across segments;
    /// the persisted cumulative statistics become the merged baseline.
    pub fn restore_cache(&mut self, cache: crate::cache::MemoCache) {
        let stripes = self.cache.segment_count();
        self.cache = ShardedMemoCache::from_cache(cache, stripes, self.config.cache_capacity);
    }

    /// Replace the whole catalog content with `catalog` (see
    /// [`SharedCatalog::restore`]) and drop every memoised composition and
    /// analysis report — they describe the superseded state. A replication
    /// follower calls this when it adopts a leader snapshot it cannot reach
    /// by incremental delta application.
    pub fn restore_catalog(&self, catalog: &Catalog) {
        self.catalog.restore(catalog);
        self.cache.clear();
        self.analysis.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    /// Register or update a schema; invalidates cached compositions that
    /// depend on any mapping whose content hash changed with it.
    pub fn add_schema(&self, name: impl Into<String>, signature: Signature) -> u64 {
        let (version, touched) = self.catalog.add_schema(name, signature);
        for mapping in touched {
            self.cache.invalidate(&mapping);
            self.drop_analysis(&mapping);
        }
        version
    }

    /// Register or update a mapping; an update (changed content) invalidates
    /// every cached composition depending on it. Returns the new version.
    pub fn add_mapping(
        &self,
        name: impl Into<String>,
        source: &str,
        target: &str,
        constraints: ConstraintSet,
    ) -> Result<u64, CatalogError> {
        let name = name.into();
        let before = self.catalog.mapping(&name).ok().map(|entry| entry.hash);
        let version = self.catalog.add_mapping(name.clone(), source, target, constraints)?;
        let after = self.catalog.mapping(&name)?.hash;
        if before.is_some() && before != Some(after) {
            self.cache.invalidate(&name);
            self.drop_analysis(&name);
        }
        Ok(version)
    }

    /// Edit an existing mapping's constraints. Returns the new version and
    /// how many cached compositions were invalidated.
    pub fn update_mapping(
        &self,
        name: &str,
        constraints: ConstraintSet,
    ) -> Result<(u64, usize), CatalogError> {
        let before = self.catalog.mapping(name)?.hash;
        let version = self.catalog.update_mapping(name, constraints)?;
        let dropped = if self.catalog.mapping(name)?.hash != before {
            self.drop_analysis(name);
            self.cache.invalidate(name)
        } else {
            0
        };
        Ok((version, dropped))
    }

    /// Remove a mapping and every cached composition depending on it.
    pub fn remove_mapping(&self, name: &str) -> Result<usize, CatalogError> {
        self.catalog
            .remove_mapping(name)
            .ok_or_else(|| CatalogError::UnknownMapping(name.to_string()))?;
        self.drop_analysis(name);
        Ok(self.cache.invalidate(name))
    }

    /// Ingest a parsed document (schemas + mappings), invalidating cache
    /// entries for every mapping that was added or changed. Returns the
    /// touched mapping names — the same contract as
    /// [`crate::session::Session::ingest_document`]. Entries are applied
    /// and invalidated one at a time, so even if a later entry fails (and
    /// the error propagates with the earlier ones already applied — callers
    /// wanting all-or-nothing should validate against a snapshot first, as
    /// the service layer does), no applied change ever escapes cache
    /// invalidation.
    pub fn ingest_document(&self, document: &Document) -> Result<Vec<String>, CatalogError> {
        let mut touched = Vec::new();
        for (name, signature) in &document.schemas {
            let (_, rehashed) = self.catalog.add_schema(name.clone(), signature.clone());
            for name in rehashed {
                self.cache.invalidate(&name);
                touched.push(name);
            }
        }
        for (name, (source, target, constraints)) in &document.mappings {
            let before = self.catalog.mapping(name).ok().map(|entry| entry.hash);
            let version =
                self.catalog.add_mapping(name.clone(), source, target, constraints.clone())?;
            let after = self.catalog.mapping(name)?.hash;
            if before != Some(after) || version == 1 {
                self.cache.invalidate(name);
                self.drop_analysis(name);
                touched.push(name.clone());
            }
        }
        touched.sort();
        touched.dedup();
        Ok(touched)
    }

    /// Explicitly drop cached compositions depending on a mapping; returns
    /// how many entries were dropped.
    pub fn invalidate(&self, mapping: &str) -> usize {
        self.drop_analysis(mapping);
        self.cache.invalidate(mapping)
    }

    fn drop_analysis(&self, mapping: &str) {
        self.analysis.lock().unwrap_or_else(PoisonError::into_inner).remove(mapping);
    }

    /// Statically analyze one mapping, mirroring
    /// [`crate::session::Session::analyze_mapping`]: the cached report is
    /// returned only while the mapping's content hash still matches.
    pub fn analyze_mapping(
        &self,
        name: &str,
    ) -> Result<(ContentHash, Arc<AnalysisReport>), CatalogError> {
        let hash = self.catalog.mapping(name)?.hash;
        {
            let cache = self.analysis.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some((cached_hash, report)) = cache.get(name) {
                if *cached_hash == hash {
                    return Ok((hash, Arc::clone(report)));
                }
            }
        }
        // `link` retries torn reads, so the materialised mapping is
        // hash-consistent even against concurrent schema edits.
        let chain = self.catalog.link(name)?;
        let report = Arc::new(mapcomp_analysis::analyze_mapping(&chain.mapping));
        self.analysis
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), (hash, Arc::clone(&report)));
        Ok((hash, report))
    }

    /// Analyze every mapping in the catalog, in name order (over a graph
    /// snapshot; mappings racing removal are skipped).
    pub fn analyze_all(&self) -> Vec<(String, Arc<AnalysisReport>)> {
        let (_, edges) = self.catalog.graph_snapshot();
        edges
            .into_iter()
            .filter_map(|(name, _, _)| {
                let report = self.analyze_mapping(&name).ok()?.1;
                Some((name, report))
            })
            .collect()
    }

    /// Byte-stable catalog-wide analysis text, identical to
    /// [`crate::session::Session::analysis_text`] for the same catalog
    /// content.
    pub fn analysis_text(&self, only: Option<&str>) -> Result<String, CatalogError> {
        let reports = match only {
            Some(name) => vec![(name.to_string(), self.analyze_mapping(name)?.1)],
            None => self.analyze_all(),
        };
        Ok(render_analysis_text(&reports))
    }

    /// Resolve a path under the configured [`PathCost`] and compose it.
    pub fn compose_path(&self, from: &str, to: &str) -> Result<ChainResult, CatalogError> {
        let path = self.catalog.resolve_path_with(from, to, self.config.path_cost)?;
        self.paths_resolved.fetch_add(1, Ordering::Relaxed);
        self.compose_names(&path)
    }

    /// Compose an explicit chain of mapping names.
    pub fn compose_names(&self, names: &[String]) -> Result<ChainResult, CatalogError> {
        let result = compose_chain_with(
            &self.catalog,
            &self.cache,
            names,
            &self.registry,
            &self.config.compose,
            &self.config.chain,
        )?;
        self.compose_calls.fetch_add(result.compose_calls, Ordering::Relaxed);
        self.chains_composed.fetch_add(1, Ordering::Relaxed);
        Ok(result)
    }

    /// Compose a batch of `(from, to)` requests, fanned across the session's
    /// scoped worker pool. All workers share this session's store and cache,
    /// so overlapping chains pay for their common segments once; results
    /// come back in request order and per-request failures do not abort the
    /// batch.
    pub fn compose_batch_parallel(
        &self,
        requests: &[(String, String)],
    ) -> Vec<Result<ChainResult, CatalogError>> {
        self.compose_batch_parallel_with(requests, self.workers)
    }

    /// [`SharedSession::compose_batch_parallel`] with an explicit worker
    /// count for this batch (the service layer's `ComposeBatch { workers }`
    /// request), still sharing the session's store and cache.
    pub fn compose_batch_parallel_with(
        &self,
        requests: &[(String, String)],
        workers: usize,
    ) -> Vec<Result<ChainResult, CatalogError>> {
        let workers = workers.min(requests.len()).max(1);
        let mut slots: Vec<Option<Result<ChainResult, CatalogError>>> =
            (0..requests.len()).map(|_| None).collect();
        if workers <= 1 {
            for (slot, (from, to)) in slots.iter_mut().zip(requests) {
                *slot = Some(self.compose_path(from, to));
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            let mut index = worker;
                            while index < requests.len() {
                                let (from, to) = &requests[index];
                                done.push((index, self.compose_path(from, to)));
                                index += workers;
                            }
                            done
                        })
                    })
                    .collect();
                for handle in handles {
                    for (index, result) in handle.join().expect("batch worker panicked") {
                        slots[index] = Some(result);
                    }
                }
            });
        }
        slots.into_iter().map(|slot| slot.expect("every request is assigned a worker")).collect()
    }

    /// Cumulative statistics (counters are read with relaxed ordering; the
    /// cache counters are merged atomically across segments).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            compose_calls: self.compose_calls.load(Ordering::Relaxed),
            paths_resolved: self.paths_resolved.load(Ordering::Relaxed),
            chains_composed: self.chains_composed.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            cache_entries: self.cache.len(),
        }
    }

    /// Tear the session apart into a single-threaded catalog snapshot and a
    /// merged memo cache — e.g. to hand back to a plain
    /// [`crate::session::Session`] or to persist.
    pub fn into_parts(self) -> (Catalog, crate::cache::MemoCache) {
        let catalog = self.catalog.snapshot();
        let capacity = self.config.cache_capacity;
        (catalog, self.cache.into_cache(capacity))
    }
}

impl Catalog {
    /// Share this catalog for concurrent sessions: returns a
    /// [`SharedSession`] whose parallel batch API fans requests across
    /// `workers` scoped threads. See the [`crate::shared`] module docs for
    /// the concurrency model.
    pub fn with_workers(self, workers: usize) -> SharedSession {
        SharedSession::new(self, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::parse_constraints;

    fn chain_catalog(hops: usize) -> Catalog {
        let mut catalog = Catalog::new();
        for i in 0..=hops {
            catalog.add_schema(format!("v{i}"), Signature::from_arities([(format!("R{i}"), 1)]));
        }
        for i in 0..hops {
            catalog
                .add_mapping(
                    format!("m{i}"),
                    &format!("v{i}"),
                    &format!("v{}", i + 1),
                    parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn shared_catalog_round_trips_through_snapshot() {
        let catalog = chain_catalog(4);
        let shared = SharedCatalog::from_catalog(&catalog, 4);
        assert_eq!(shared.schema_count(), 5);
        assert_eq!(shared.mapping_count(), 4);
        assert_eq!(shared.mapping("m2").unwrap().hash, catalog.mapping("m2").unwrap().hash);
        let snapshot = shared.snapshot();
        assert_eq!(snapshot.to_document_string(), catalog.to_document_string());
        assert_eq!(snapshot.mapping("m0").unwrap().version, 1);
    }

    #[test]
    fn shared_resolution_matches_single_threaded() {
        let catalog = chain_catalog(5);
        let shared = SharedCatalog::from_catalog(&catalog, 3);
        assert_eq!(
            shared.resolve_path("v0", "v5").unwrap(),
            crate::graph::resolve_path(&catalog, "v0", "v5").unwrap()
        );
        assert!(matches!(shared.resolve_path("v5", "v0"), Err(CatalogError::NoPath { .. })));
        assert!(matches!(shared.resolve_path("v1", "v1"), Err(CatalogError::EmptyPath { .. })));
    }

    #[test]
    fn shared_schema_update_rehashes_across_shards() {
        let catalog = chain_catalog(3);
        let shared = SharedCatalog::from_catalog(&catalog, 4);
        let before = shared.mapping("m1").unwrap().hash;
        let (version, touched) =
            shared.add_schema("v2", Signature::from_arities([("R2", 1), ("Extra", 2)]));
        assert_eq!(version, 2);
        assert_eq!(touched, vec!["m1".to_string(), "m2".to_string()]);
        assert_ne!(shared.mapping("m1").unwrap().hash, before);
        assert_eq!(shared.mapping("m1").unwrap().version, 2);
    }

    #[test]
    fn shared_session_composes_and_invalidates_like_a_plain_one() {
        let session = chain_catalog(5).with_workers(2);
        let cold = session.compose_path("v0", "v5").unwrap();
        assert_eq!(cold.compose_calls, 4);
        let warm = session.compose_path("v0", "v5").unwrap();
        assert_eq!(warm.compose_calls, 0);
        let (version, dropped) = session
            .update_mapping("m2", parse_constraints("project[0](R2) <= R3").unwrap())
            .unwrap();
        assert_eq!(version, 2);
        assert!(dropped > 0);
        let incremental = session.compose_path("v0", "v5").unwrap();
        assert!(incremental.compose_calls > 0);
        assert!(incremental.compose_calls < cold.compose_calls);
        assert!(incremental.is_complete());
        let stats = session.stats();
        assert_eq!(stats.chains_composed, 3);
        assert_eq!(stats.paths_resolved, 3);
        assert!(stats.cache.hits > 0);
    }

    #[test]
    fn parallel_batch_returns_results_in_request_order() {
        let session = chain_catalog(6).with_workers(4);
        let mut requests = Vec::new();
        for i in 0..6 {
            for j in (i + 1)..=6 {
                requests.push((format!("v{i}"), format!("v{j}")));
            }
        }
        requests.push(("v6".to_string(), "v0".to_string())); // unreachable
        let results = session.compose_batch_parallel(&requests);
        assert_eq!(results.len(), requests.len());
        for (index, (from, to)) in requests.iter().enumerate().take(requests.len() - 1) {
            let result = results[index].as_ref().unwrap_or_else(|e| {
                panic!("request {index} ({from} -> {to}) failed: {e}");
            });
            assert_eq!(result.chain.source, *from);
            assert_eq!(result.chain.target, *to);
            assert!(result.is_complete());
            let text = result.chain.mapping.constraints.to_string();
            let (i, j) = (&from[1..], &to[1..]);
            assert!(text.contains(&format!("R{i}")) && text.contains(&format!("R{j}")), "{text}");
        }
        assert!(matches!(results.last().unwrap(), Err(CatalogError::NoPath { .. })));
        // The batch shares one cache: far fewer pairwise compositions than
        // composing every request cold.
        let stats = session.stats();
        assert!(stats.compose_calls < requests.len() * 5);
        assert!(stats.cache.hits > 0);
    }

    #[test]
    fn parallel_batch_matches_sequential_results() {
        let requests: Vec<(String, String)> = (0..5)
            .flat_map(|i| ((i + 1)..=5).map(move |j| (format!("v{i}"), format!("v{j}"))))
            .collect();
        let parallel = chain_catalog(5).with_workers(4);
        let parallel_results = parallel.compose_batch_parallel(&requests);
        let mut sequential = crate::session::Session::new(chain_catalog(5));
        let sequential_results = sequential.compose_batch(&requests);
        for (index, (p, s)) in parallel_results.iter().zip(&sequential_results).enumerate() {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(
                p.chain.mapping.constraints.to_string(),
                s.chain.mapping.constraints.to_string(),
                "request {index} diverged"
            );
            assert_eq!(p.chain.path, s.chain.path);
        }
    }

    #[test]
    fn concurrent_mutation_and_composition_stay_consistent() {
        let session = chain_catalog(6).with_workers(4);
        let session = &session;
        std::thread::scope(|scope| {
            for worker in 0..4usize {
                scope.spawn(move || {
                    for round in 0..10usize {
                        match (worker + round) % 3 {
                            0 => {
                                let result = session.compose_path("v0", "v6").unwrap();
                                assert!(result.is_complete());
                            }
                            1 => {
                                session.invalidate(&format!("m{}", round % 6));
                            }
                            _ => {
                                // Identical re-registration: a no-op that
                                // must not disturb anyone.
                                let i = round % 6;
                                session
                                    .add_mapping(
                                        format!("m{i}"),
                                        &format!("v{i}"),
                                        &format!("v{}", i + 1),
                                        parse_constraints(&format!("R{i} <= R{}", i + 1)).unwrap(),
                                    )
                                    .unwrap();
                            }
                        }
                    }
                });
            }
        });
        let (catalog, cache) = {
            let session = chain_catalog(6).with_workers(1);
            session.compose_path("v0", "v6").unwrap();
            session.into_parts()
        };
        assert_eq!(catalog.mapping_count(), 6);
        assert!(!cache.is_empty());
    }
}
