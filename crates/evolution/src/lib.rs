//! # mapcomp-evolution
//!
//! The schema-evolution simulator of *"Implementing Mapping Composition"*
//! (VLDB 2006), §4.1: a workload generator that drives the composition
//! algorithm with synthetic mappings.
//!
//! * [`primitives`] — the schema evolution primitives of Figure 1 (add/drop
//!   relation and attribute, add default, horizontal/vertical partitioning,
//!   normalization, subset/superset), each with forward and backward
//!   variants.
//! * [`event`] — event vectors: weighted distributions over primitives,
//!   including the paper's Default vector and the inclusion-proportion sweep
//!   of Figure 5.
//! * [`editing`] — the schema-editing scenario: apply a sequence of edits to
//!   a random schema, composing the running mapping after every edit.
//! * [`reconcile`] — the schema-reconciliation scenario: evolve one schema
//!   along two branches and compose the branch mappings to relate the two
//!   evolved schemas directly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod editing;
pub mod event;
pub mod primitives;
pub mod reconcile;

pub use editing::{run_editing, run_editing_from, EditRecord, EditingRun, ScenarioConfig};
pub use event::EventVector;
pub use primitives::{
    apply_primitive, random_relation, EditOutcome, NameSource, PrimitiveKind, PrimitiveOptions,
};
pub use reconcile::{
    average_reconciliation, run_reconciliation, ReconcileConfig, ReconcileOutcome,
};
