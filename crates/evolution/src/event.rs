//! Event vectors (paper §4.1).
//!
//! "An event vector specifies the proportions of primitives of a certain kind
//! appearing in an edit sequence. ... we assume that all primitives are
//! applied with the same frequency, with the exception of adding attributes
//! (AA is twice as frequent) and dropping relations (DR is five times less
//! frequent)."

use std::collections::BTreeMap;

use rand::Rng;

use crate::primitives::PrimitiveKind;

/// A weighted distribution over schema evolution primitives.
#[derive(Debug, Clone, PartialEq)]
pub struct EventVector {
    weights: BTreeMap<PrimitiveKind, f64>,
}

impl EventVector {
    /// The Default event vector of the paper: uniform weights, `AA` doubled,
    /// `DR` divided by five.
    pub fn default_vector() -> Self {
        let mut weights = BTreeMap::new();
        for kind in PrimitiveKind::ALL {
            weights.insert(kind, 1.0);
        }
        weights.insert(PrimitiveKind::AddAttribute, 2.0);
        weights.insert(PrimitiveKind::DropRelation, 0.2);
        EventVector { weights }
    }

    /// An event vector emphasising structural reorganisation (partitioning
    /// and normalization). One of the additional vectors mentioned in the
    /// extended technical report; defined here for the same sweep code path.
    pub fn structure_heavy() -> Self {
        let mut vector = EventVector::default_vector();
        for kind in [
            PrimitiveKind::Horizontal,
            PrimitiveKind::HorizontalForward,
            PrimitiveKind::HorizontalBackward,
            PrimitiveKind::Vertical,
            PrimitiveKind::VerticalForward,
            PrimitiveKind::VerticalBackward,
            PrimitiveKind::Normalize,
            PrimitiveKind::NormalizeForward,
            PrimitiveKind::NormalizeBackward,
        ] {
            vector.weights.insert(kind, 3.0);
        }
        vector
    }

    /// An event vector emphasising attribute/relation addition and deletion.
    pub fn add_drop_heavy() -> Self {
        let mut vector = EventVector::default_vector();
        for kind in [
            PrimitiveKind::AddRelation,
            PrimitiveKind::DropRelation,
            PrimitiveKind::AddAttribute,
            PrimitiveKind::DropAttribute,
        ] {
            vector.weights.insert(kind, 4.0);
        }
        vector
    }

    /// An event vector emphasising the open-world inclusion primitives.
    pub fn inclusion_heavy() -> Self {
        EventVector::default_vector().with_inclusion_proportion(0.3)
    }

    /// Copy of this vector in which the combined proportion of `Sub` and
    /// `Sup` edits is set to `proportion` (paper Figure 5 sweeps this from 0
    /// to 20 %).
    pub fn with_inclusion_proportion(&self, proportion: f64) -> Self {
        let mut vector = self.clone();
        let inclusion = [PrimitiveKind::Subset, PrimitiveKind::Superset];
        let other_total: f64 = vector
            .weights
            .iter()
            .filter(|(kind, _)| !inclusion.contains(kind))
            .map(|(_, w)| *w)
            .sum();
        let proportion = proportion.clamp(0.0, 0.95);
        // Solve  inclusion_total / (inclusion_total + other_total) = proportion.
        let inclusion_total =
            if proportion <= 0.0 { 0.0 } else { other_total * proportion / (1.0 - proportion) };
        for kind in inclusion {
            vector.weights.insert(kind, inclusion_total / 2.0);
        }
        vector
    }

    /// Weight assigned to one primitive.
    pub fn weight(&self, kind: PrimitiveKind) -> f64 {
        self.weights.get(&kind).copied().unwrap_or(0.0)
    }

    /// Override the weight of one primitive.
    pub fn set_weight(&mut self, kind: PrimitiveKind, weight: f64) -> &mut Self {
        self.weights.insert(kind, weight.max(0.0));
        self
    }

    /// Proportion of the total weight carried by the inclusion primitives.
    pub fn inclusion_proportion(&self) -> f64 {
        let total: f64 = self.weights.values().sum();
        if total <= 0.0 {
            return 0.0;
        }
        (self.weight(PrimitiveKind::Subset) + self.weight(PrimitiveKind::Superset)) / total
    }

    /// Sample a primitive among those for which `applicable` returns true.
    /// Returns `None` if no applicable primitive has positive weight.
    pub fn sample<R: Rng>(
        &self,
        rng: &mut R,
        applicable: impl Fn(PrimitiveKind) -> bool,
    ) -> Option<PrimitiveKind> {
        let candidates: Vec<(PrimitiveKind, f64)> = self
            .weights
            .iter()
            .filter(|(kind, weight)| **weight > 0.0 && applicable(**kind))
            .map(|(kind, weight)| (*kind, *weight))
            .collect();
        let total: f64 = candidates.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = rng.gen_range(0.0..total);
        for (kind, weight) in &candidates {
            if target < *weight {
                return Some(*kind);
            }
            target -= weight;
        }
        candidates.last().map(|(kind, _)| *kind)
    }
}

impl Default for EventVector {
    fn default() -> Self {
        EventVector::default_vector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_vector_matches_paper() {
        let vector = EventVector::default_vector();
        assert_eq!(vector.weight(PrimitiveKind::AddAttribute), 2.0);
        assert!((vector.weight(PrimitiveKind::DropRelation) - 0.2).abs() < 1e-9);
        assert_eq!(vector.weight(PrimitiveKind::Horizontal), 1.0);
    }

    #[test]
    fn inclusion_proportion_is_respected() {
        for target in [0.0, 0.05, 0.1, 0.2] {
            let vector = EventVector::default_vector().with_inclusion_proportion(target);
            assert!(
                (vector.inclusion_proportion() - target).abs() < 1e-9,
                "target {target}, got {}",
                vector.inclusion_proportion()
            );
        }
    }

    #[test]
    fn sampling_respects_applicability_and_weights() {
        let vector = EventVector::default_vector();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts: BTreeMap<PrimitiveKind, usize> = BTreeMap::new();
        for _ in 0..5000 {
            let kind = vector
                .sample(&mut rng, |k| !k.requires_key())
                .expect("some primitive is applicable");
            assert!(!kind.requires_key());
            *counts.entry(kind).or_default() += 1;
        }
        // AA should be roughly twice as frequent as H.
        let aa = counts[&PrimitiveKind::AddAttribute] as f64;
        let h = counts[&PrimitiveKind::Horizontal] as f64;
        assert!(aa > 1.4 * h, "AA={aa} H={h}");
        // DR should be clearly rarer than H.
        let dr = *counts.get(&PrimitiveKind::DropRelation).unwrap_or(&0) as f64;
        assert!(dr < 0.6 * h, "DR={dr} H={h}");
        // Key-requiring primitives never sampled.
        assert!(!counts.contains_key(&PrimitiveKind::Vertical));
    }

    #[test]
    fn sampling_with_nothing_applicable_returns_none() {
        let vector = EventVector::default_vector();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(vector.sample(&mut rng, |_| false), None);
    }

    #[test]
    fn zero_inclusion_proportion_disables_sub_sup() {
        let vector = EventVector::default_vector().with_inclusion_proportion(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let kind = vector.sample(&mut rng, |_| true).unwrap();
            assert!(!matches!(kind, PrimitiveKind::Subset | PrimitiveKind::Superset));
        }
    }

    #[test]
    fn named_vectors_differ() {
        assert_ne!(EventVector::structure_heavy(), EventVector::default_vector());
        assert_ne!(EventVector::add_drop_heavy(), EventVector::default_vector());
        assert!(EventVector::inclusion_heavy().inclusion_proportion() > 0.25);
    }
}
