//! Schema evolution primitives (paper Figure 1).
//!
//! Each primitive takes zero or one relation of the current schema as input
//! and produces zero or more new relations plus the mapping constraints that
//! link the output relations to the input relation (or express key/inclusion
//! constraints on the outputs). Primitives with forward (`f`) and backward
//! (`b`) variants emit only the constraints defining the outputs in terms of
//! the inputs (respectively the inputs in terms of the outputs); the plain
//! variant emits both.
//!
//! The paper presents the primitives in the named perspective; this
//! implementation uses the index-based (unnamed) perspective of §2, keeping
//! declared keys in the leading columns to simplify vertical partitioning.

use std::fmt;

use mapcomp_algebra::{Constraint, Expr, Pred, RelInfo, Value};
use rand::Rng;

/// The schema evolution primitives of Figure 1 (including forward/backward
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrimitiveKind {
    /// Add relation.
    AddRelation,
    /// Drop relation.
    DropRelation,
    /// Add attribute.
    AddAttribute,
    /// Drop attribute.
    DropAttribute,
    /// Add default, forward variant (`Df`).
    AddDefaultForward,
    /// Add default, backward variant (`Db`).
    AddDefaultBackward,
    /// Add default, both directions (`D`).
    AddDefault,
    /// Horizontal partitioning, forward (`Hf`).
    HorizontalForward,
    /// Horizontal partitioning, backward (`Hb`).
    HorizontalBackward,
    /// Horizontal partitioning, both (`H`).
    Horizontal,
    /// Vertical partitioning, forward (`Vf`).
    VerticalForward,
    /// Vertical partitioning, backward (`Vb`).
    VerticalBackward,
    /// Vertical partitioning, both (`V`).
    Vertical,
    /// Normalization, forward (`Nf`).
    NormalizeForward,
    /// Normalization, backward (`Nb`).
    NormalizeBackward,
    /// Normalization, both (`N`).
    Normalize,
    /// Subset (`Sub`): open-world copy `R ⊆ S`.
    Subset,
    /// Superset (`Sup`): open-world copy `R ⊇ S`.
    Superset,
}

impl PrimitiveKind {
    /// All primitive variants, in the order of the paper's Figure 2 x-axis
    /// (with `AR` first, which Figure 2 omits because it eliminates nothing).
    pub const ALL: [PrimitiveKind; 18] = [
        PrimitiveKind::AddRelation,
        PrimitiveKind::DropRelation,
        PrimitiveKind::AddAttribute,
        PrimitiveKind::DropAttribute,
        PrimitiveKind::AddDefaultForward,
        PrimitiveKind::AddDefaultBackward,
        PrimitiveKind::AddDefault,
        PrimitiveKind::HorizontalForward,
        PrimitiveKind::HorizontalBackward,
        PrimitiveKind::Horizontal,
        PrimitiveKind::VerticalForward,
        PrimitiveKind::VerticalBackward,
        PrimitiveKind::Vertical,
        PrimitiveKind::NormalizeForward,
        PrimitiveKind::NormalizeBackward,
        PrimitiveKind::Normalize,
        PrimitiveKind::Subset,
        PrimitiveKind::Superset,
    ];

    /// Short label used on the figures' x-axes.
    pub fn label(self) -> &'static str {
        match self {
            PrimitiveKind::AddRelation => "AR",
            PrimitiveKind::DropRelation => "DR",
            PrimitiveKind::AddAttribute => "AA",
            PrimitiveKind::DropAttribute => "DA",
            PrimitiveKind::AddDefaultForward => "Df",
            PrimitiveKind::AddDefaultBackward => "Db",
            PrimitiveKind::AddDefault => "D",
            PrimitiveKind::HorizontalForward => "Hf",
            PrimitiveKind::HorizontalBackward => "Hb",
            PrimitiveKind::Horizontal => "H",
            PrimitiveKind::VerticalForward => "Vf",
            PrimitiveKind::VerticalBackward => "Vb",
            PrimitiveKind::Vertical => "V",
            PrimitiveKind::NormalizeForward => "Nf",
            PrimitiveKind::NormalizeBackward => "Nb",
            PrimitiveKind::Normalize => "N",
            PrimitiveKind::Subset => "SUB",
            PrimitiveKind::Superset => "SUP",
        }
    }

    /// Does the primitive consume (and therefore require eliminating) an
    /// existing relation?
    pub fn consumes_input(self) -> bool {
        !matches!(self, PrimitiveKind::AddRelation)
    }

    /// Does the primitive require its input relation to carry a key? Only the
    /// vertical-partitioning variants do (paper §4.1).
    pub fn requires_key(self) -> bool {
        matches!(
            self,
            PrimitiveKind::VerticalForward
                | PrimitiveKind::VerticalBackward
                | PrimitiveKind::Vertical
        )
    }

    /// Minimum arity of the input relation (zero when no input is needed).
    pub fn min_input_arity(self) -> usize {
        match self {
            PrimitiveKind::AddRelation => 0,
            PrimitiveKind::DropRelation
            | PrimitiveKind::AddAttribute
            | PrimitiveKind::AddDefaultForward
            | PrimitiveKind::AddDefaultBackward
            | PrimitiveKind::AddDefault
            | PrimitiveKind::HorizontalForward
            | PrimitiveKind::HorizontalBackward
            | PrimitiveKind::Horizontal
            | PrimitiveKind::Subset
            | PrimitiveKind::Superset => 1,
            PrimitiveKind::DropAttribute => 2,
            PrimitiveKind::VerticalForward
            | PrimitiveKind::VerticalBackward
            | PrimitiveKind::Vertical
            | PrimitiveKind::NormalizeForward
            | PrimitiveKind::NormalizeBackward
            | PrimitiveKind::Normalize => 3,
        }
    }
}

impl fmt::Display for PrimitiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Options controlling how primitives generate relations and constants.
#[derive(Debug, Clone)]
pub struct PrimitiveOptions {
    /// Minimum arity of newly created relations (paper: 2).
    pub min_arity: usize,
    /// Maximum arity of newly created relations (paper: 10).
    pub max_arity: usize,
    /// Whether relations may carry keys.
    pub keys_enabled: bool,
    /// Minimum key size (paper: 1).
    pub min_key: usize,
    /// Maximum key size (paper: 3).
    pub max_key: usize,
    /// Pool of constants used by the default-value and horizontal-partition
    /// primitives (paper: 10 constants).
    pub constant_pool: Vec<Value>,
}

impl Default for PrimitiveOptions {
    fn default() -> Self {
        PrimitiveOptions {
            min_arity: 2,
            max_arity: 10,
            keys_enabled: false,
            min_key: 1,
            max_key: 3,
            constant_pool: (0..10).map(Value::Int).collect(),
        }
    }
}

impl PrimitiveOptions {
    /// The paper's `keys` configuration.
    pub fn with_keys() -> Self {
        PrimitiveOptions { keys_enabled: true, ..PrimitiveOptions::default() }
    }
}

/// Result of applying one primitive.
#[derive(Debug, Clone)]
pub struct EditOutcome {
    /// Which primitive was applied.
    pub kind: PrimitiveKind,
    /// Input relation consumed (to be eliminated by the next composition).
    pub consumed: Option<String>,
    /// Newly created relations.
    pub created: Vec<(String, RelInfo)>,
    /// Mapping constraints produced by the edit.
    pub constraints: Vec<Constraint>,
}

/// Generates fresh relation names for the simulator.
#[derive(Debug, Default, Clone)]
pub struct NameSource {
    prefix: String,
    counter: usize,
}

impl NameSource {
    /// Create a name source producing names `R1`, `R2`, ...
    pub fn new() -> Self {
        NameSource { prefix: "R".to_string(), counter: 0 }
    }

    /// Create a name source with a custom prefix; used to keep the two
    /// branches of a reconciliation scenario from colliding.
    pub fn with_prefix(prefix: impl Into<String>) -> Self {
        NameSource { prefix: prefix.into(), counter: 0 }
    }

    /// Next fresh relation name.
    pub fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("{}{}", self.prefix, self.counter)
    }
}

/// Create a random relation signature entry.
pub fn random_relation<R: Rng>(
    options: &PrimitiveOptions,
    names: &mut NameSource,
    rng: &mut R,
) -> (String, RelInfo) {
    let arity = rng.gen_range(options.min_arity..=options.max_arity);
    let info = if options.keys_enabled && rng.gen_bool(0.7) {
        let key_size = rng.gen_range(options.min_key..=options.max_key.min(arity));
        RelInfo::with_key(arity, (0..key_size).collect())
    } else {
        RelInfo::new(arity)
    };
    (names.fresh(), info)
}

/// Apply a primitive to the chosen input relation.
///
/// `input` is `None` only for [`PrimitiveKind::AddRelation`]. The caller is
/// responsible for choosing an input relation satisfying
/// [`PrimitiveKind::min_input_arity`] and [`PrimitiveKind::requires_key`].
pub fn apply_primitive<R: Rng>(
    kind: PrimitiveKind,
    input: Option<(&str, &RelInfo)>,
    options: &PrimitiveOptions,
    names: &mut NameSource,
    rng: &mut R,
) -> EditOutcome {
    match kind {
        PrimitiveKind::AddRelation => {
            let created = random_relation(options, names, rng);
            EditOutcome { kind, consumed: None, created: vec![created], constraints: vec![] }
        }
        PrimitiveKind::DropRelation => {
            let (name, _) = input.expect("DropRelation requires an input relation");
            EditOutcome {
                kind,
                consumed: Some(name.to_string()),
                created: vec![],
                constraints: vec![],
            }
        }
        PrimitiveKind::AddAttribute => {
            let (name, info) = input.expect("AddAttribute requires an input relation");
            let new_name = names.fresh();
            let new_info = RelInfo { arity: info.arity + 1, key: info.key.clone() };
            // R = π_A(S): the original columns are the leading columns of S.
            let constraint = Constraint::equality(
                Expr::rel(name),
                Expr::rel(new_name.clone()).project((0..info.arity).collect()),
            );
            EditOutcome {
                kind,
                consumed: Some(name.to_string()),
                created: vec![(new_name, new_info)],
                constraints: vec![constraint],
            }
        }
        PrimitiveKind::DropAttribute => {
            let (name, info) = input.expect("DropAttribute requires an input relation");
            // Never drop a key column so the key survives in the output,
            // except when every column is part of the key.
            let first_droppable = info.key.as_ref().map_or(0, std::vec::Vec::len);
            let dropped = if first_droppable >= info.arity {
                info.arity - 1
            } else {
                rng.gen_range(first_droppable..info.arity)
            };
            let kept: Vec<usize> = (0..info.arity).filter(|&c| c != dropped).collect();
            let new_key = info
                .key
                .as_ref()
                .map(|key| key.iter().copied().filter(|&k| k != dropped).collect::<Vec<_>>())
                .filter(|key| !key.is_empty());
            let new_name = names.fresh();
            let new_info = RelInfo { arity: info.arity - 1, key: new_key };
            // π_{A−{C}}(R) = S.
            let constraint =
                Constraint::equality(Expr::rel(name).project(kept), Expr::rel(new_name.clone()));
            EditOutcome {
                kind,
                consumed: Some(name.to_string()),
                created: vec![(new_name, new_info)],
                constraints: vec![constraint],
            }
        }
        PrimitiveKind::AddDefaultForward
        | PrimitiveKind::AddDefaultBackward
        | PrimitiveKind::AddDefault => {
            let (name, info) = input.expect("AddDefault requires an input relation");
            let constant = pick_constant(options, rng);
            let new_name = names.fresh();
            let new_info = RelInfo { arity: info.arity + 1, key: info.key.clone() };
            // Forward: R × {c} = S, with {c} encoded as σ_{#0=c}(D).
            let forward = Constraint::equality(
                Expr::rel(name)
                    .product(Expr::domain(1).select(Pred::eq_const(0, constant.clone()))),
                Expr::rel(new_name.clone()),
            );
            // Backward: R = π_A(σ_{C=c}(S)).
            let backward = Constraint::equality(
                Expr::rel(name),
                Expr::rel(new_name.clone())
                    .select(Pred::eq_const(info.arity, constant))
                    .project((0..info.arity).collect()),
            );
            let constraints = match kind {
                PrimitiveKind::AddDefaultForward => vec![forward],
                PrimitiveKind::AddDefaultBackward => vec![backward],
                _ => vec![forward, backward],
            };
            EditOutcome {
                kind,
                consumed: Some(name.to_string()),
                created: vec![(new_name, new_info)],
                constraints,
            }
        }
        PrimitiveKind::HorizontalForward
        | PrimitiveKind::HorizontalBackward
        | PrimitiveKind::Horizontal => {
            let (name, info) = input.expect("Horizontal requires an input relation");
            let column = rng.gen_range(0..info.arity);
            let c_s = pick_constant(options, rng);
            let c_t = pick_constant(options, rng);
            let s_name = names.fresh();
            let t_name = names.fresh();
            let part_info = info.clone();
            // Forward: σ_{C=cS}(R) = S, σ_{C=cT}(R) = T.
            let forward = vec![
                Constraint::equality(
                    Expr::rel(name).select(Pred::eq_const(column, c_s)),
                    Expr::rel(s_name.clone()),
                ),
                Constraint::equality(
                    Expr::rel(name).select(Pred::eq_const(column, c_t)),
                    Expr::rel(t_name.clone()),
                ),
            ];
            // Backward: R = S ∪ T.
            let backward = Constraint::equality(
                Expr::rel(name),
                Expr::rel(s_name.clone()).union(Expr::rel(t_name.clone())),
            );
            let constraints = match kind {
                PrimitiveKind::HorizontalForward => forward,
                PrimitiveKind::HorizontalBackward => vec![backward],
                _ => {
                    let mut all = forward;
                    all.push(backward);
                    all
                }
            };
            EditOutcome {
                kind,
                consumed: Some(name.to_string()),
                created: vec![(s_name, part_info.clone()), (t_name, part_info)],
                constraints,
            }
        }
        PrimitiveKind::VerticalForward
        | PrimitiveKind::VerticalBackward
        | PrimitiveKind::Vertical
        | PrimitiveKind::NormalizeForward
        | PrimitiveKind::NormalizeBackward
        | PrimitiveKind::Normalize => {
            let (name, info) = input.expect("partitioning requires an input relation");
            split_relation(kind, name, info, names, rng)
        }
        PrimitiveKind::Subset | PrimitiveKind::Superset => {
            let (name, info) = input.expect("Subset/Superset require an input relation");
            let new_name = names.fresh();
            let new_info = info.clone();
            let constraint = match kind {
                PrimitiveKind::Subset => {
                    Constraint::containment(Expr::rel(name), Expr::rel(new_name.clone()))
                }
                _ => Constraint::containment(Expr::rel(new_name.clone()), Expr::rel(name)),
            };
            EditOutcome {
                kind,
                consumed: Some(name.to_string()),
                created: vec![(new_name, new_info)],
                constraints: vec![constraint],
            }
        }
    }
}

/// Shared implementation of vertical partitioning and normalization:
/// `R(A,B,C)` (with `A` the leading columns, the key when present) becomes
/// `S(A,B)` and `T(A,C)`.
fn split_relation<R: Rng>(
    kind: PrimitiveKind,
    name: &str,
    info: &RelInfo,
    names: &mut NameSource,
    rng: &mut R,
) -> EditOutcome {
    let arity = info.arity;
    // Leading shared columns: the declared key, or a single leading column
    // for the normalization variants on key-less relations.
    let shared = info.key.as_ref().map_or(1, std::vec::Vec::len).min(arity.saturating_sub(2));
    let shared = shared.max(1);
    // Split the remaining columns into two non-empty contiguous groups.
    let split_point = rng.gen_range(shared + 1..arity);
    let s_cols: Vec<usize> = (0..split_point).collect();
    let t_cols: Vec<usize> = (0..shared).chain(split_point..arity).collect();
    let s_name = names.fresh();
    let t_name = names.fresh();
    // Both parts share the leading columns, which act as their key.
    let part_key = info.key.as_ref().map(|_| (0..shared).collect::<Vec<_>>());
    let s_info = RelInfo { arity: s_cols.len(), key: part_key.clone() };
    let t_info = RelInfo { arity: t_cols.len(), key: part_key };

    // Forward: π_{A,B}(R) = S and π_{A,C}(R) = T.
    let forward = vec![
        Constraint::equality(Expr::rel(name).project(s_cols.clone()), Expr::rel(s_name.clone())),
        Constraint::equality(Expr::rel(name).project(t_cols.clone()), Expr::rel(t_name.clone())),
    ];
    // Backward: R = S ⋈_A T (join on the shared leading columns; the join
    // output column order matches R because the groups are contiguous).
    let join_pairs: Vec<(usize, usize)> = (0..shared).map(|i| (i, i)).collect();
    let backward = Constraint::equality(
        Expr::rel(name),
        Expr::rel(s_name.clone()).join_on(
            Expr::rel(t_name.clone()),
            &join_pairs,
            s_cols.len(),
            t_cols.len(),
        ),
    );
    // Normalization additionally states π_A(T) ⊆ π_A(S).
    let inclusion = Constraint::containment(
        Expr::rel(t_name.clone()).project((0..shared).collect()),
        Expr::rel(s_name.clone()).project((0..shared).collect()),
    );

    let mut constraints = match kind {
        PrimitiveKind::VerticalForward | PrimitiveKind::NormalizeForward => forward,
        PrimitiveKind::VerticalBackward | PrimitiveKind::NormalizeBackward => vec![backward],
        _ => {
            let mut all = forward;
            all.push(backward);
            all
        }
    };
    if matches!(
        kind,
        PrimitiveKind::NormalizeForward
            | PrimitiveKind::NormalizeBackward
            | PrimitiveKind::Normalize
    ) {
        constraints.push(inclusion);
    }

    EditOutcome {
        kind,
        consumed: Some(name.to_string()),
        created: vec![(s_name, s_info), (t_name, t_info)],
        constraints,
    }
}

fn pick_constant<R: Rng>(options: &PrimitiveOptions, rng: &mut R) -> Value {
    let pool = &options.constant_pool;
    pool[rng.gen_range(0..pool.len())].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapcomp_algebra::{OperatorSet, Signature};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn validate(outcome: &EditOutcome, input: Option<(&str, &RelInfo)>) {
        // Every outcome's constraints must type-check over the combined
        // signature of input + created relations.
        let mut sig = Signature::new();
        if let Some((name, info)) = input {
            sig.add(name, info.clone());
        }
        for (name, info) in &outcome.created {
            sig.add(name.clone(), info.clone());
        }
        let ops = OperatorSet::new();
        for constraint in &outcome.constraints {
            constraint.validate(&sig, &ops).unwrap_or_else(|e| {
                panic!("constraint {constraint} of {:?} fails to validate: {e}", outcome.kind)
            });
        }
    }

    #[test]
    fn add_relation_creates_without_constraints() {
        let mut names = NameSource::new();
        let outcome = apply_primitive(
            PrimitiveKind::AddRelation,
            None,
            &PrimitiveOptions::default(),
            &mut names,
            &mut rng(),
        );
        assert_eq!(outcome.created.len(), 1);
        assert!(outcome.constraints.is_empty());
        assert!(outcome.consumed.is_none());
        let (_, info) = &outcome.created[0];
        assert!((2..=10).contains(&info.arity));
        validate(&outcome, None);
    }

    #[test]
    fn add_attribute_produces_projection_equality() {
        let mut names = NameSource::new();
        let info = RelInfo::new(3);
        let outcome = apply_primitive(
            PrimitiveKind::AddAttribute,
            Some(("Orig", &info)),
            &PrimitiveOptions::default(),
            &mut names,
            &mut rng(),
        );
        assert_eq!(outcome.consumed.as_deref(), Some("Orig"));
        assert_eq!(outcome.created[0].1.arity, 4);
        assert_eq!(outcome.constraints.len(), 1);
        assert!(outcome.constraints[0].is_equality());
        validate(&outcome, Some(("Orig", &info)));
    }

    #[test]
    fn drop_attribute_keeps_key_columns() {
        let mut names = NameSource::new();
        let info = RelInfo::with_key(4, vec![0, 1]);
        for _ in 0..20 {
            let outcome = apply_primitive(
                PrimitiveKind::DropAttribute,
                Some(("Orig", &info)),
                &PrimitiveOptions::with_keys(),
                &mut names,
                &mut rng(),
            );
            // The projection on the lhs must retain columns 0 and 1.
            match &outcome.constraints[0].lhs {
                Expr::Project(cols, _) => {
                    assert!(cols.contains(&0) && cols.contains(&1), "key column dropped: {cols:?}");
                    assert_eq!(cols.len(), 3);
                }
                other => panic!("unexpected lhs {other:?}"),
            }
            validate(&outcome, Some(("Orig", &info)));
        }
    }

    #[test]
    fn add_default_variants_differ() {
        let info = RelInfo::new(2);
        let options = PrimitiveOptions::default();
        for (kind, expected) in [
            (PrimitiveKind::AddDefaultForward, 1),
            (PrimitiveKind::AddDefaultBackward, 1),
            (PrimitiveKind::AddDefault, 2),
        ] {
            let mut names = NameSource::new();
            let outcome =
                apply_primitive(kind, Some(("Orig", &info)), &options, &mut names, &mut rng());
            assert_eq!(outcome.constraints.len(), expected, "{kind:?}");
            assert_eq!(outcome.created[0].1.arity, 3);
            validate(&outcome, Some(("Orig", &info)));
        }
    }

    #[test]
    fn horizontal_partitioning_produces_two_relations() {
        let info = RelInfo::new(3);
        let options = PrimitiveOptions::default();
        for (kind, expected) in [
            (PrimitiveKind::HorizontalForward, 2),
            (PrimitiveKind::HorizontalBackward, 1),
            (PrimitiveKind::Horizontal, 3),
        ] {
            let mut names = NameSource::new();
            let outcome =
                apply_primitive(kind, Some(("Orig", &info)), &options, &mut names, &mut rng());
            assert_eq!(outcome.created.len(), 2);
            assert_eq!(outcome.constraints.len(), expected, "{kind:?}");
            validate(&outcome, Some(("Orig", &info)));
        }
    }

    #[test]
    fn vertical_partitioning_splits_columns() {
        let info = RelInfo::with_key(5, vec![0]);
        let options = PrimitiveOptions::with_keys();
        for kind in [
            PrimitiveKind::VerticalForward,
            PrimitiveKind::VerticalBackward,
            PrimitiveKind::Vertical,
        ] {
            let mut names = NameSource::new();
            let outcome =
                apply_primitive(kind, Some(("Orig", &info)), &options, &mut names, &mut rng());
            assert_eq!(outcome.created.len(), 2);
            let total: usize = outcome.created.iter().map(|(_, i)| i.arity).sum();
            // The key column is duplicated across the two parts.
            assert_eq!(total, 6);
            validate(&outcome, Some(("Orig", &info)));
        }
    }

    #[test]
    fn normalization_adds_inclusion_constraint() {
        let info = RelInfo::new(4);
        let options = PrimitiveOptions::default();
        let mut names = NameSource::new();
        let outcome = apply_primitive(
            PrimitiveKind::Normalize,
            Some(("Orig", &info)),
            &options,
            &mut names,
            &mut rng(),
        );
        // forward (2) + backward (1) + inclusion (1).
        assert_eq!(outcome.constraints.len(), 4);
        assert!(outcome.constraints.iter().any(|c| !c.is_equality()));
        validate(&outcome, Some(("Orig", &info)));
    }

    #[test]
    fn subset_and_superset_directions() {
        let info = RelInfo::new(2);
        let options = PrimitiveOptions::default();
        let mut names = NameSource::new();
        let sub = apply_primitive(
            PrimitiveKind::Subset,
            Some(("Orig", &info)),
            &options,
            &mut names,
            &mut rng(),
        );
        assert_eq!(sub.constraints[0].lhs, Expr::rel("Orig"));
        let sup = apply_primitive(
            PrimitiveKind::Superset,
            Some(("Orig", &info)),
            &options,
            &mut names,
            &mut rng(),
        );
        assert_eq!(sup.constraints[0].rhs, Expr::rel("Orig"));
        validate(&sub, Some(("Orig", &info)));
        validate(&sup, Some(("Orig", &info)));
    }

    #[test]
    fn labels_and_metadata() {
        assert_eq!(PrimitiveKind::ALL.len(), 18);
        assert_eq!(PrimitiveKind::Subset.label(), "SUB");
        assert_eq!(PrimitiveKind::AddDefaultForward.to_string(), "Df");
        assert!(!PrimitiveKind::AddRelation.consumes_input());
        assert!(PrimitiveKind::Vertical.requires_key());
        assert!(!PrimitiveKind::Normalize.requires_key());
        assert_eq!(PrimitiveKind::Normalize.min_input_arity(), 3);
        assert_eq!(PrimitiveKind::AddRelation.min_input_arity(), 0);
    }

    #[test]
    fn random_relation_respects_options() {
        let mut names = NameSource::new();
        let mut generator = rng();
        for _ in 0..30 {
            let (_, info) =
                random_relation(&PrimitiveOptions::default(), &mut names, &mut generator);
            assert!((2..=10).contains(&info.arity));
            assert!(info.key.is_none());
        }
        let mut any_key = false;
        for _ in 0..30 {
            let (_, info) =
                random_relation(&PrimitiveOptions::with_keys(), &mut names, &mut generator);
            if let Some(key) = &info.key {
                any_key = true;
                assert!((1..=3).contains(&key.len()));
                assert!(key.len() <= info.arity);
            }
        }
        assert!(any_key);
    }
}
