//! The schema-editing scenario (paper §4, "Schema Editing Scenarios").
//!
//! "In the schema editing scenario, we run the simulator to mimic the schema
//! transformation operations performed by a database designer. The mapping
//! between the original schema and the current state of the schema is
//! composed with the mapping produced by each subsequent schema evolution
//! primitive. We record the success or failure of each composition operation
//! for the applied primitives."

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mapcomp_algebra::{Constraint, Signature};
use mapcomp_compose::{compose_constraints, ComposeConfig, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::EventVector;
use crate::primitives::{
    apply_primitive, random_relation, NameSource, PrimitiveKind, PrimitiveOptions,
};

/// Configuration of one schema-editing run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of relations in the randomly generated original schema
    /// (paper default: 30).
    pub schema_size: usize,
    /// Number of edits applied (paper default: 100).
    pub edits: usize,
    /// Relation-generation options (arity range, keys, constant pool).
    pub options: PrimitiveOptions,
    /// Distribution of primitives.
    pub event_vector: EventVector,
    /// Composition configuration (ablations, blow-up factor).
    pub compose_config: ComposeConfig,
    /// Random seed; every run is reproducible.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            schema_size: 30,
            edits: 100,
            options: PrimitiveOptions::default(),
            event_vector: EventVector::default_vector(),
            compose_config: ComposeConfig::default(),
            seed: 1,
        }
    }
}

/// Per-edit record used to build the per-primitive statistics of Figures 2–5.
#[derive(Debug, Clone)]
pub struct EditRecord {
    /// Edit index (0-based).
    pub index: usize,
    /// Primitive applied.
    pub kind: PrimitiveKind,
    /// Relation consumed by the edit (none for `AR`).
    pub consumed: Option<String>,
    /// Was the consumed relation an intermediate symbol (not part of the
    /// original schema), i.e. did this edit actually create elimination work?
    pub consumed_intermediate: bool,
    /// Was the consumed relation eliminated by this composition?
    pub eliminated_now: bool,
    /// How many previously pending symbols were eliminated by this
    /// composition (the paper notes later compositions recover up to a third
    /// of them).
    pub leftover_eliminated: usize,
    /// Pending (non-eliminated intermediate) symbols after this edit.
    pub pending_after: usize,
    /// Time spent composing.
    pub duration: Duration,
    /// Number of constraints in the running mapping after the edit.
    pub constraint_count: usize,
    /// Operator count of the running mapping after the edit.
    pub op_count: usize,
}

/// Result of one schema-editing run.
#[derive(Debug, Clone)]
pub struct EditingRun {
    /// The original schema σ_orig.
    pub original: Signature,
    /// The evolved schema after all edits.
    pub current: Signature,
    /// Every relation symbol ever created (original, current and pending).
    pub universe: Signature,
    /// The running mapping constraints between σ_orig and the evolved schema
    /// (possibly still mentioning pending intermediate symbols).
    pub constraints: Vec<Constraint>,
    /// Intermediate symbols that could not be eliminated.
    pub pending: Vec<String>,
    /// Per-edit records.
    pub records: Vec<EditRecord>,
    /// Total wall-clock time spent composing.
    pub compose_time: Duration,
}

impl EditingRun {
    /// Overall fraction of intermediate symbols that were eventually
    /// eliminated (symbols consumed from the original schema never need
    /// eliminating and are not counted).
    pub fn fraction_eliminated(&self) -> f64 {
        let attempted = self.records.iter().filter(|r| r.consumed_intermediate).count();
        if attempted == 0 {
            return 1.0;
        }
        let remaining = self.pending.len();
        (attempted.saturating_sub(remaining)) as f64 / attempted as f64
    }

    /// Per-primitive `(eliminated, attempted)` counts of the *immediate*
    /// elimination success, the quantity plotted in Figure 2.
    pub fn per_primitive_success(&self) -> BTreeMap<PrimitiveKind, (usize, usize)> {
        let mut out: BTreeMap<PrimitiveKind, (usize, usize)> = BTreeMap::new();
        for record in &self.records {
            if !record.consumed_intermediate {
                continue;
            }
            let entry = out.entry(record.kind).or_insert((0, 0));
            entry.1 += 1;
            if record.eliminated_now {
                entry.0 += 1;
            }
        }
        out
    }

    /// Per-primitive total and mean composition time (Figure 3 plots the mean
    /// per edit in milliseconds).
    pub fn per_primitive_time(&self) -> BTreeMap<PrimitiveKind, (Duration, usize)> {
        let mut out: BTreeMap<PrimitiveKind, (Duration, usize)> = BTreeMap::new();
        for record in &self.records {
            let entry = out.entry(record.kind).or_insert((Duration::ZERO, 0));
            entry.0 += record.duration;
            entry.1 += 1;
        }
        out
    }

    /// Did every composition succeed completely (no pending symbols)?
    pub fn fully_composed(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Generate a random original schema of the given size.
pub fn random_schema(
    size: usize,
    options: &PrimitiveOptions,
    names: &mut NameSource,
    rng: &mut StdRng,
) -> Signature {
    let mut sig = Signature::new();
    for _ in 0..size {
        let (name, info) = random_relation(options, names, rng);
        sig.add(name, info);
    }
    sig
}

/// Run a schema-editing scenario from a freshly generated schema.
pub fn run_editing(config: &ScenarioConfig) -> EditingRun {
    let registry = Registry::standard();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut names = NameSource::new();
    let original = random_schema(config.schema_size, &config.options, &mut names, &mut rng);
    run_editing_from(config, &registry, original, names, &mut rng)
}

/// Run a schema-editing scenario from a given original schema (used by the
/// reconciliation scenario, which evolves the same schema along two
/// branches).
pub fn run_editing_from(
    config: &ScenarioConfig,
    registry: &Registry,
    original: Signature,
    mut names: NameSource,
    rng: &mut StdRng,
) -> EditingRun {
    let mut current = original.clone();
    let mut universe = original.clone();
    let mut constraints: Vec<Constraint> = Vec::new();
    let mut pending: Vec<String> = Vec::new();
    let mut records: Vec<EditRecord> = Vec::new();
    let mut compose_time = Duration::ZERO;

    for index in 0..config.edits {
        // Pick an applicable primitive and an input relation for it.
        let has_input_for = |kind: PrimitiveKind| -> bool {
            if !kind.consumes_input() {
                return true;
            }
            current.iter().any(|(_, info)| {
                info.arity >= kind.min_input_arity() && (!kind.requires_key() || info.key.is_some())
            })
        };
        let keys_enabled = config.options.keys_enabled;
        let Some(kind) = config
            .event_vector
            .sample(rng, |k| (keys_enabled || !k.requires_key()) && has_input_for(k))
        else {
            break;
        };

        let input_name = if kind.consumes_input() {
            let eligible: Vec<String> = current
                .iter()
                .filter(|(_, info)| {
                    info.arity >= kind.min_input_arity()
                        && (!kind.requires_key() || info.key.is_some())
                })
                .map(|(name, _)| name.to_string())
                .collect();
            Some(eligible[rng.gen_range(0..eligible.len())].clone())
        } else {
            None
        };
        let input = input_name
            .as_ref()
            .map(|name| (name.as_str(), current.get(name).expect("eligible relation").clone()));

        let outcome = apply_primitive(
            kind,
            input.as_ref().map(|(name, info)| (*name, info)),
            &config.options,
            &mut names,
            rng,
        );

        // Update schemas.
        if let Some(consumed) = &outcome.consumed {
            current.remove(consumed);
        }
        for (name, info) in &outcome.created {
            current.add(name.clone(), info.clone());
            universe.add(name.clone(), info.clone());
        }
        constraints.extend(outcome.constraints.iter().cloned());

        // Compose: try to eliminate the consumed symbol plus older leftovers,
        // but only symbols that are no longer part of the original or current
        // schema.
        let mut symbols: Vec<String> = pending.clone();
        if let Some(consumed) = &outcome.consumed {
            if !original.contains(consumed) && !symbols.contains(consumed) {
                symbols.push(consumed.clone());
            }
        }

        let started = Instant::now();
        let result =
            compose_constraints(&universe, &symbols, constraints, registry, &config.compose_config);
        let duration = started.elapsed();
        compose_time += duration;

        constraints = result.constraints.into_vec();
        let consumed_intermediate =
            outcome.consumed.as_ref().is_some_and(|consumed| !original.contains(consumed));
        let eliminated_now = outcome.consumed.as_ref().is_none_or(|consumed| {
            result.eliminated.contains(consumed) || original.contains(consumed)
        });
        let leftover_eliminated =
            result.eliminated.iter().filter(|name| pending.contains(name)).count();
        pending = result.remaining;

        records.push(EditRecord {
            index,
            kind,
            consumed: outcome.consumed.clone(),
            consumed_intermediate,
            eliminated_now,
            leftover_eliminated,
            pending_after: pending.len(),
            duration,
            constraint_count: constraints.len(),
            op_count: constraints.iter().map(Constraint::op_count).sum(),
        });
    }

    EditingRun { original, current, universe, constraints, pending, records, compose_time }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig { schema_size: 8, edits: 20, seed: 42, ..ScenarioConfig::default() }
    }

    #[test]
    fn editing_run_is_reproducible() {
        let a = run_editing(&small_config());
        let b = run_editing(&small_config());
        assert_eq!(a.constraints, b.constraints);
        assert_eq!(a.pending, b.pending);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.original, b.original);
    }

    #[test]
    fn different_seeds_give_different_runs() {
        let a = run_editing(&small_config());
        let b = run_editing(&ScenarioConfig { seed: 43, ..small_config() });
        assert_ne!(a.constraints, b.constraints);
    }

    #[test]
    fn constraints_only_mention_known_symbols() {
        let run = run_editing(&small_config());
        for constraint in &run.constraints {
            for relation in constraint.relations() {
                assert!(
                    run.universe.contains(&relation),
                    "constraint mentions unknown relation {relation}"
                );
            }
        }
        // Constraints never mention symbols that were reported eliminated:
        // anything mentioned must be original, current, or pending.
        for constraint in &run.constraints {
            for relation in constraint.relations() {
                let known = run.original.contains(&relation)
                    || run.current.contains(&relation)
                    || run.pending.contains(&relation);
                assert!(known, "constraint mentions eliminated symbol {relation}");
            }
        }
    }

    #[test]
    fn records_match_edit_count() {
        let config = small_config();
        let run = run_editing(&config);
        assert_eq!(run.records.len(), config.edits);
        assert!(run.fraction_eliminated() >= 0.0 && run.fraction_eliminated() <= 1.0);
        let per_primitive = run.per_primitive_success();
        let attempted: usize = per_primitive.values().map(|(_, a)| a).sum();
        assert_eq!(attempted, run.records.iter().filter(|r| r.consumed_intermediate).count());
        let timed: usize = run.per_primitive_time().values().map(|(_, count)| count).sum();
        assert_eq!(timed, run.records.len());
    }

    #[test]
    fn most_symbols_are_eliminated_without_keys() {
        // The paper reports 50–100 % elimination; on the default (no keys,
        // equality-heavy) workload the success rate should be high.
        let config =
            ScenarioConfig { schema_size: 10, edits: 40, seed: 7, ..ScenarioConfig::default() };
        let run = run_editing(&config);
        assert!(
            run.fraction_eliminated() >= 0.5,
            "only {:.2} of symbols eliminated",
            run.fraction_eliminated()
        );
    }

    #[test]
    fn keys_configuration_runs() {
        let config = ScenarioConfig {
            schema_size: 8,
            edits: 15,
            seed: 11,
            options: PrimitiveOptions::with_keys(),
            ..ScenarioConfig::default()
        };
        let run = run_editing(&config);
        assert_eq!(run.records.len(), 15);
        // With keys enabled the constraints must still only reference known
        // relations and the run must remain internally consistent.
        for constraint in &run.constraints {
            for relation in constraint.relations() {
                assert!(run.universe.contains(&relation));
            }
        }
    }

    #[test]
    fn disabling_right_compose_weakens_elimination() {
        let base =
            ScenarioConfig { schema_size: 10, edits: 30, seed: 19, ..ScenarioConfig::default() };
        let full = run_editing(&base);
        let ablated = run_editing(&ScenarioConfig {
            compose_config: ComposeConfig::without_right_compose(),
            ..base
        });
        assert!(
            ablated.fraction_eliminated() <= full.fraction_eliminated() + 1e-9,
            "ablation should not eliminate more symbols: {} vs {}",
            ablated.fraction_eliminated(),
            full.fraction_eliminated()
        );
    }
}
