//! The schema-reconciliation scenario (paper §4, "Schema Reconciliation
//! Scenarios").
//!
//! "To study schema reconciliation, we use the simulator to produce a large
//! number of evolved schemas and mappings for a given original schema. We
//! then compose the generated mappings pairwise using our composition tool."
//!
//! Concretely, the original schema σ0 is evolved along two independent edit
//! sequences, producing σA with mapping Σ0A and σB with Σ0B; reconciliation
//! composes the two by eliminating the σ0 symbols from Σ0A ∪ Σ0B, yielding a
//! direct mapping between σA and σB. The paper only uses branch mappings in
//! which every intermediate symbol was eliminated ("to obtain first-order
//! input mappings"), which this module reproduces via retries.

use std::time::{Duration, Instant};

use mapcomp_algebra::{Constraint, Signature};
use mapcomp_compose::{compose_constraints, Registry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::editing::{random_schema, run_editing_from, EditingRun, ScenarioConfig};
use crate::primitives::NameSource;

/// Configuration of one reconciliation task.
#[derive(Debug, Clone)]
pub struct ReconcileConfig {
    /// Size of the original (intermediate) schema σ0 — the x-axis of
    /// Figure 6.
    pub schema_size: usize,
    /// Number of edits applied along each branch — the x-axis of Figure 7.
    pub edits_per_branch: usize,
    /// Scenario options shared by both branches (event vector, primitive
    /// options, composition configuration).
    pub scenario: ScenarioConfig,
    /// How many times to regenerate a branch whose editing run failed to
    /// eliminate every intermediate symbol.
    pub max_branch_retries: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for ReconcileConfig {
    fn default() -> Self {
        ReconcileConfig {
            schema_size: 30,
            edits_per_branch: 100,
            scenario: ScenarioConfig::default(),
            max_branch_retries: 5,
            seed: 1,
        }
    }
}

/// Result of one reconciliation task.
#[derive(Debug, Clone)]
pub struct ReconcileOutcome {
    /// Number of σ0 symbols that had to be eliminated (those mentioned by
    /// either branch mapping; unused σ0 symbols are counted as trivially
    /// eliminated, mirroring the paper's fraction-of-schema metric).
    pub intermediate_symbols: usize,
    /// How many σ0 symbols were eliminated.
    pub eliminated: usize,
    /// Constraints of the composed σA–σB mapping.
    pub constraints: Vec<Constraint>,
    /// Wall-clock time of the final composition (excluding branch
    /// generation).
    pub compose_time: Duration,
    /// The two branch runs, for inspection.
    pub branch_a: EditingRun,
    /// Second branch.
    pub branch_b: EditingRun,
}

impl ReconcileOutcome {
    /// Fraction of σ0 symbols eliminated (Figure 6 / Figure 7 y-axis).
    pub fn fraction_eliminated(&self) -> f64 {
        if self.intermediate_symbols == 0 {
            1.0
        } else {
            self.eliminated as f64 / self.intermediate_symbols as f64
        }
    }
}

/// Generate one branch: evolve `original` by `edits` edits; retry with a new
/// derived seed until the branch mapping is fully composed (no pending
/// symbols) or the retry budget runs out. Returns the last run either way.
fn generate_branch(
    config: &ReconcileConfig,
    registry: &Registry,
    original: &Signature,
    prefix: &str,
    seed: u64,
) -> EditingRun {
    let mut last = None;
    for attempt in 0..=config.max_branch_retries {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt as u64 * 7919));
        let scenario = ScenarioConfig {
            schema_size: config.schema_size,
            edits: config.edits_per_branch,
            ..config.scenario.clone()
        };
        let names = NameSource::with_prefix(prefix);
        let run = run_editing_from(&scenario, registry, original.clone(), names, &mut rng);
        let done = run.fully_composed();
        last = Some(run);
        if done {
            break;
        }
    }
    last.expect("at least one attempt")
}

/// Run one reconciliation task.
pub fn run_reconciliation(config: &ReconcileConfig) -> ReconcileOutcome {
    let registry = Registry::standard();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut names = NameSource::with_prefix("O");
    let original =
        random_schema(config.schema_size, &config.scenario.options, &mut names, &mut rng);

    let branch_a = generate_branch(config, &registry, &original, "A", config.seed ^ 0x9E3779B9);
    let branch_b = generate_branch(config, &registry, &original, "B", config.seed ^ 0x7F4A7C15);

    // Combine the two branch mappings and eliminate the original schema.
    let mut constraints: Vec<Constraint> = branch_a.constraints.clone();
    constraints.extend(branch_b.constraints.iter().cloned());
    let universe = branch_a
        .universe
        .union(&branch_b.universe)
        .expect("branch universes agree on the original schema");

    let symbols: Vec<String> = original.names();
    let started = Instant::now();
    let result = compose_constraints(
        &universe,
        &symbols,
        constraints,
        &registry,
        &config.scenario.compose_config,
    );
    let compose_time = started.elapsed();

    ReconcileOutcome {
        intermediate_symbols: symbols.len(),
        eliminated: result.eliminated.len(),
        constraints: result.constraints.into_vec(),
        compose_time,
        branch_a,
        branch_b,
    }
}

/// Average the fraction eliminated and compose time over several
/// reconciliation tasks with derived seeds (Figure 6 averages 500 tasks per
/// point; the harness chooses the sample count).
pub fn average_reconciliation(config: &ReconcileConfig, samples: usize) -> (f64, Duration) {
    let mut fraction_sum = 0.0;
    let mut time_sum = Duration::ZERO;
    for sample in 0..samples.max(1) {
        let sample_config = ReconcileConfig {
            seed: config.seed.wrapping_add(sample as u64 * 104729),
            ..config.clone()
        };
        let outcome = run_reconciliation(&sample_config);
        fraction_sum += outcome.fraction_eliminated();
        time_sum += outcome.compose_time;
    }
    (fraction_sum / samples.max(1) as f64, time_sum / samples.max(1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ReconcileConfig {
        ReconcileConfig {
            schema_size: 6,
            edits_per_branch: 10,
            scenario: ScenarioConfig { schema_size: 6, edits: 10, ..ScenarioConfig::default() },
            max_branch_retries: 3,
            seed: 5,
        }
    }

    #[test]
    fn reconciliation_produces_a_mapping_between_branches() {
        let outcome = run_reconciliation(&small_config());
        assert_eq!(outcome.intermediate_symbols, 6);
        assert!(outcome.eliminated <= 6);
        assert!(outcome.fraction_eliminated() >= 0.0 && outcome.fraction_eliminated() <= 1.0);
        // Whatever original symbols were eliminated must no longer appear.
        for constraint in &outcome.constraints {
            for relation in constraint.relations() {
                let in_original = relation.starts_with('O');
                if in_original {
                    // It must be one of the non-eliminated symbols.
                    assert!(
                        outcome.eliminated < outcome.intermediate_symbols,
                        "eliminated symbol {relation} still referenced"
                    );
                }
            }
        }
    }

    #[test]
    fn reconciliation_is_reproducible() {
        let a = run_reconciliation(&small_config());
        let b = run_reconciliation(&small_config());
        assert_eq!(a.constraints, b.constraints);
        assert_eq!(a.eliminated, b.eliminated);
    }

    #[test]
    fn larger_intermediate_schema_is_not_harder() {
        // Figure 6's qualitative claim: growing the intermediate schema does
        // not reduce (and generally increases) the fraction eliminated.
        let small = average_reconciliation(
            &ReconcileConfig { schema_size: 4, edits_per_branch: 8, ..small_config() },
            3,
        );
        let large = average_reconciliation(
            &ReconcileConfig { schema_size: 16, edits_per_branch: 8, ..small_config() },
            3,
        );
        assert!(large.0 >= small.0 - 0.25, "large {large:?} vs small {small:?}");
    }

    #[test]
    fn average_reconciliation_reports_sane_values() {
        let (fraction, time) = average_reconciliation(&small_config(), 2);
        assert!((0.0..=1.0).contains(&fraction));
        assert!(time >= Duration::ZERO);
    }
}
