//! Persisted bench trajectories: the `BENCH_<figure>.json` files at the
//! repository root.
//!
//! Every `figures` run emits one machine-readable JSON document per figure
//! — the scale tier it ran at, a hash of the experiment configuration, and
//! the data points behind the printed table. The files are committed, so
//! the repository carries its own perf trajectory; `figures --check
//! BENCH_<fig>.json` re-runs the figure at the file's recorded scale and
//! diffs the fresh points against the committed ones.
//!
//! Comparison rules: every experiment here is seeded, so non-timing values
//! (counts, fractions, bytes) must reproduce **exactly**; timing-like
//! fields are inherently machine-dependent, so they are checked for
//! *presence* only. A field is timing-like iff [`is_volatile`] says so —
//! by suffix convention (`_ms`, `_us`, `_s`, `_pct`, `_per_s`) or a
//! `time`/`seconds` substring — which is why every volatile field in the
//! emitted documents is named with one of those suffixes.
//!
//! The writer and parser are hand-rolled (this workspace is offline, no
//! serde); the grammar is the JSON subset the writer produces: one object
//! with string/number fields plus a `points` array of flat objects.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::Scale;

/// A scalar field value in a bench document.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchValue {
    /// An unsigned integer (counts, bytes, sizes).
    U64(u64),
    /// A float (fractions, milliseconds).
    F64(f64),
    /// A string (labels, configuration names).
    Str(String),
    /// A boolean (consistency flags).
    Bool(bool),
}

impl BenchValue {
    fn render(&self, out: &mut String) {
        match self {
            BenchValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            BenchValue::F64(f) => {
                // `{}` on f64 is shortest-round-trip, and a plain integer
                // rendering would re-parse as U64; keep the type explicit.
                if f.fract() == 0.0 && f.is_finite() {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            }
            BenchValue::Str(s) => {
                let _ = write!(out, "\"{}\"", json_escape(s));
            }
            BenchValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }

    /// Do two values agree, for the stable-field comparison? Numbers are
    /// compared numerically across the U64/F64 divide (a `2.0` written by
    /// one run and a `2` by another are the same measurement).
    pub fn agrees_with(&self, other: &BenchValue) -> bool {
        match (self, other) {
            (BenchValue::U64(a), BenchValue::U64(b)) => a == b,
            (BenchValue::F64(a), BenchValue::F64(b)) => {
                a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
            }
            (BenchValue::U64(a), BenchValue::F64(b)) | (BenchValue::F64(b), BenchValue::U64(a)) => {
                *b == *a as f64
            }
            (BenchValue::Str(a), BenchValue::Str(b)) => a == b,
            (BenchValue::Bool(a), BenchValue::Bool(b)) => a == b,
            _ => false,
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Is `key` a timing-like field, exempt from exact comparison? Suffix
/// convention: `_ms`/`_us`/`_s` (durations), `_per_s` (rates), `_pct`
/// (derived percentages), or a `time`/`seconds` substring.
pub fn is_volatile(key: &str) -> bool {
    key.ends_with("_ms")
        || key.ends_with("_us")
        || key.ends_with("_s")
        || key.ends_with("_pct")
        || key.ends_with("_per_s")
        || key.contains("time")
        || key.contains("seconds")
}

/// One figure's persisted trajectory: identity, scale tier, configuration
/// hash, and the data points behind the printed table.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// The figure keyword (`fig2` … `fig12`, `corpus`).
    pub figure: String,
    /// The scale tier the points were produced at (`smoke`/`quick`/`paper`).
    pub scale: String,
    /// FNV-1a hash of the figure name, scale, and every point's field
    /// names — a cheap fingerprint that flags "the experiment's shape
    /// changed" separately from "the numbers moved".
    pub config_hash: u64,
    /// The data points, each an ordered list of `(field, value)` pairs.
    pub points: Vec<Vec<(String, BenchValue)>>,
}

/// The scale keyword used inside bench documents.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    }
}

/// Parse a bench document's scale keyword back to a [`Scale`].
pub fn parse_scale(name: &str) -> Option<Scale> {
    match name {
        "smoke" => Some(Scale::Smoke),
        "quick" => Some(Scale::Quick),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl BenchDoc {
    /// An empty document for `figure` at `scale`; push points, then render.
    pub fn new(figure: &str, scale: Scale) -> Self {
        BenchDoc {
            figure: figure.to_string(),
            scale: scale_name(scale).to_string(),
            config_hash: 0,
            points: Vec::new(),
        }
    }

    /// Append one data point.
    pub fn push_point(&mut self, fields: Vec<(&str, BenchValue)>) {
        self.points.push(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
    }

    /// The configuration fingerprint of this document's current contents.
    fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        fnv1a(&mut hash, self.figure.as_bytes());
        fnv1a(&mut hash, self.scale.as_bytes());
        for point in &self.points {
            for (key, _) in point {
                fnv1a(&mut hash, key.as_bytes());
            }
        }
        hash
    }

    /// Render as pretty-printed JSON (with `config_hash` recomputed), ready
    /// to be written to `BENCH_<figure>.json`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"figure\": \"{}\",", json_escape(&self.figure));
        let _ = writeln!(out, "  \"scale\": \"{}\",", json_escape(&self.scale));
        let _ = writeln!(out, "  \"config_hash\": \"{:016x}\",", self.fingerprint());
        out.push_str("  \"points\": [\n");
        for (index, point) in self.points.iter().enumerate() {
            out.push_str("    {");
            for (field_index, (key, value)) in point.iter().enumerate() {
                if field_index > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": ", json_escape(key));
                value.render(&mut out);
            }
            out.push('}');
            out.push_str(if index + 1 < self.points.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write this document as `BENCH_<figure>.json` under `dir`, returning
    /// the path written.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.figure));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Parse a document previously produced by [`BenchDoc::render`].
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        let doc = parser.document()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing content at byte {}", parser.pos));
        }
        Ok(doc)
    }

    /// Diff `fresh` (a re-run) against `self` (the committed baseline).
    /// Returns human-readable mismatch lines; empty = the trajectory holds.
    /// Stable fields must agree exactly, [`is_volatile`] fields need only
    /// exist on both sides with the same name.
    pub fn diff(&self, fresh: &BenchDoc) -> Vec<String> {
        let mut problems = Vec::new();
        if self.figure != fresh.figure {
            problems.push(format!("figure: `{}` vs fresh `{}`", self.figure, fresh.figure));
        }
        if self.scale != fresh.scale {
            problems.push(format!("scale: `{}` vs fresh `{}`", self.scale, fresh.scale));
        }
        // An in-memory document (never rendered) has no recorded hash yet;
        // fall back to its live fingerprint.
        let recorded = if self.config_hash == 0 { self.fingerprint() } else { self.config_hash };
        if recorded != fresh.fingerprint() {
            problems.push(format!(
                "config_hash: recorded {:016x}, fresh run fingerprints {:016x} (experiment shape changed)",
                recorded,
                fresh.fingerprint()
            ));
        }
        if self.points.len() != fresh.points.len() {
            problems.push(format!(
                "point count: recorded {}, fresh {}",
                self.points.len(),
                fresh.points.len()
            ));
            return problems;
        }
        for (index, (old, new)) in self.points.iter().zip(&fresh.points).enumerate() {
            let old_keys: Vec<&str> = old.iter().map(|(k, _)| k.as_str()).collect();
            let new_keys: Vec<&str> = new.iter().map(|(k, _)| k.as_str()).collect();
            if old_keys != new_keys {
                problems.push(format!("point {index}: fields {old_keys:?} vs fresh {new_keys:?}"));
                continue;
            }
            for ((key, old_value), (_, new_value)) in old.iter().zip(new) {
                if is_volatile(key) {
                    continue;
                }
                if !old_value.agrees_with(new_value) {
                    problems.push(format!(
                        "point {index}: `{key}` recorded {old_value:?}, fresh {new_value:?}"
                    ));
                }
            }
        }
        problems
    }
}

/// Minimal recursive-descent parser over the subset of JSON the renderer
/// emits (one top-level object, flat point objects, scalar values).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte =
                *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).ok_or("bad \\u scalar")?);
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                // The renderer only writes UTF-8; multi-byte sequences pass
                // through byte-wise.
                other => {
                    let start = self.pos - 1;
                    let len = match other {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| "bad UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn value(&mut self) -> Result<BenchValue, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'"' => Ok(BenchValue::Str(self.string()?)),
            b't' | b'f' => {
                let rest = &self.bytes[self.pos..];
                if rest.starts_with(b"true") {
                    self.pos += 4;
                    Ok(BenchValue::Bool(true))
                } else if rest.starts_with(b"false") {
                    self.pos += 5;
                    Ok(BenchValue::Bool(false))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            _ => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "bad number".to_string())?;
                if text.contains(['.', 'e', 'E']) {
                    text.parse().map(BenchValue::F64).map_err(|_| format!("bad float `{text}`"))
                } else {
                    text.parse().map(BenchValue::U64).map_err(|_| format!("bad integer `{text}`"))
                }
            }
        }
    }

    fn point(&mut self) -> Result<Vec<(String, BenchValue)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn document(&mut self) -> Result<BenchDoc, String> {
        self.expect(b'{')?;
        let mut figure = None;
        let mut scale = None;
        let mut config_hash = None;
        let mut points = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "figure" => figure = Some(self.string()?),
                "scale" => scale = Some(self.string()?),
                "config_hash" => {
                    let hex = self.string()?;
                    config_hash = Some(
                        u64::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad config_hash `{hex}`"))?,
                    );
                }
                "points" => {
                    self.expect(b'[')?;
                    let mut parsed = Vec::new();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                    } else {
                        loop {
                            parsed.push(self.point()?);
                            match self.peek() {
                                Some(b',') => self.pos += 1,
                                Some(b']') => {
                                    self.pos += 1;
                                    break;
                                }
                                _ => {
                                    return Err(format!("expected `,` or `]` at byte {}", self.pos))
                                }
                            }
                        }
                    }
                    points = Some(parsed);
                }
                other => return Err(format!("unknown document field `{other}`")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
        Ok(BenchDoc {
            figure: figure.ok_or("missing `figure`")?,
            scale: scale.ok_or("missing `scale`")?,
            config_hash: config_hash.ok_or("missing `config_hash`")?,
            points: points.ok_or("missing `points`")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchDoc {
        let mut doc = BenchDoc::new("fig99", Scale::Smoke);
        doc.push_point(vec![
            ("workers", BenchValue::U64(1)),
            ("fraction", BenchValue::F64(0.25)),
            ("label", BenchValue::Str("no \"keys\"".into())),
            ("elapsed_ms", BenchValue::F64(12.5)),
            ("ok", BenchValue::Bool(true)),
        ]);
        doc.push_point(vec![
            ("workers", BenchValue::U64(2)),
            ("fraction", BenchValue::F64(0.5)),
            ("label", BenchValue::Str("keys".into())),
            ("elapsed_ms", BenchValue::F64(7.0)),
            ("ok", BenchValue::Bool(false)),
        ]);
        doc
    }

    #[test]
    fn documents_round_trip_through_render_and_parse() {
        let doc = sample();
        let text = doc.render();
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed.figure, "fig99");
        assert_eq!(parsed.scale, "smoke");
        assert_eq!(parsed.config_hash, doc.fingerprint());
        assert_eq!(parsed.points, doc.points);
        // Rendering the parsed document reproduces the text byte for byte.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn volatile_fields_are_presence_only_and_stable_fields_exact() {
        let baseline = sample();
        let mut fresh = sample();
        // A timing wobble is fine…
        fresh.points[0][3].1 = BenchValue::F64(99.9);
        assert!(baseline.diff(&fresh).is_empty(), "{:?}", baseline.diff(&fresh));
        // …a stable-value drift is not…
        fresh.points[1][1].1 = BenchValue::F64(0.75);
        let problems = baseline.diff(&fresh);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("fraction"), "{problems:?}");
        // …and a renamed field changes the configuration fingerprint too.
        fresh.points[1][1].0 = "ratio".into();
        let problems = baseline.diff(&fresh);
        assert!(problems.iter().any(|p| p.contains("config_hash")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("fields")), "{problems:?}");
    }

    #[test]
    fn volatility_follows_the_naming_convention() {
        for key in [
            "elapsed_ms",
            "duration_us",
            "wall_s",
            "overhead_pct",
            "req_per_s",
            "mean_time",
            "run_seconds",
        ] {
            assert!(is_volatile(key), "{key} should be volatile");
        }
        for key in ["mappings", "workers", "fraction", "bytes", "rounds", "mss"] {
            assert!(!is_volatile(key), "{key} should be stable");
        }
    }

    #[test]
    fn number_comparison_crosses_the_int_float_divide() {
        assert!(BenchValue::U64(2).agrees_with(&BenchValue::F64(2.0)));
        assert!(!BenchValue::U64(2).agrees_with(&BenchValue::F64(2.5)));
        assert!(!BenchValue::Bool(true).agrees_with(&BenchValue::U64(1)));
    }

    #[test]
    fn scale_names_round_trip() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            assert_eq!(parse_scale(scale_name(scale)), Some(scale));
        }
        assert_eq!(parse_scale("warp"), None);
    }
}
