//! # mapcomp-bench
//!
//! Benchmark harness regenerating every figure of the evaluation section of
//! *"Implementing Mapping Composition"* (VLDB 2006, §4).
//!
//! The `figures` binary prints, for each figure, the same series the paper
//! plots; the Criterion benches under `benches/` time representative slices
//! of the same workloads. Two post-paper experiments ride along: Figure 8
//! (incremental vs. cold catalog-chain recomposition) and Figure 9 (naive
//! vs. semi-naive chase scaling in the data-exchange engine, the
//! `ExchangeConfig::strategy` comparison).
//!
//! Scale factors control how many runs/edits are simulated: `Scale::Paper`
//! is the paper's full scale (100 runs × 100 edits per configuration, 500
//! reconciliation tasks per point), `Scale::Quick` reproduces the same
//! qualitative shapes in seconds, and `Scale::Smoke` (the CI default,
//! `figures --smoke all`) runs every experiment end to end at tiny sizes so
//! the bench binaries cannot silently rot.
//!
//! Each `figures` run also persists its points as `BENCH_<figure>.json`
//! documents at the repository root (see [`trajectory`]), and `figures
//! --check BENCH_<fig>.json` re-runs a figure at the file's recorded scale
//! and diffs the fresh points against the committed baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod trajectory;

pub use trajectory::{BenchDoc, BenchValue};

use std::collections::BTreeMap;
use std::time::Duration;

use mapcomp_compose::{ChaseStrategy, ComposeConfig, ExchangeConfig, Registry};
use mapcomp_corpus::problems;
use mapcomp_evolution::{
    run_editing, EditingRun, EventVector, PrimitiveKind, PrimitiveOptions, ReconcileConfig,
    ScenarioConfig,
};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for CI smoke runs: every experiment exercises its code
    /// path end to end in seconds, so bench binaries cannot silently rot.
    Smoke,
    /// Reduced run counts for CI and interactive use.
    Quick,
    /// The run counts reported in the paper.
    Paper,
}

impl Scale {
    /// Number of editing runs per configuration (paper: 100).
    pub fn editing_runs(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Quick => 8,
            Scale::Paper => 100,
        }
    }

    /// Number of edits per run (paper: 100).
    pub fn edits_per_run(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Quick => 40,
            Scale::Paper => 100,
        }
    }

    /// Reconciliation tasks per data point (paper: 500).
    pub fn reconcile_samples(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Quick => 3,
            Scale::Paper => 500,
        }
    }

    /// Edits per reconciliation branch (paper: 100, Figure 7 sweeps it).
    pub fn reconcile_edits(self) -> usize {
        match self {
            Scale::Smoke => 8,
            Scale::Quick => 25,
            Scale::Paper => 100,
        }
    }
}

/// The four configurations of Figures 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Configuration {
    /// All features, no keys (`no keys`).
    NoKeys,
    /// All features, keyed relations (`keys`).
    Keys,
    /// View unfolding disabled (`no unfolding`).
    NoUnfolding,
    /// Right compose disabled (`no right compose`).
    NoRightCompose,
}

impl Configuration {
    /// All four configurations in the paper's order.
    pub const ALL: [Configuration; 4] = [
        Configuration::NoKeys,
        Configuration::Keys,
        Configuration::NoUnfolding,
        Configuration::NoRightCompose,
    ];

    /// Label used in the figures' legends.
    pub fn label(self) -> &'static str {
        match self {
            Configuration::NoKeys => "no keys",
            Configuration::Keys => "keys",
            Configuration::NoUnfolding => "no unfolding",
            Configuration::NoRightCompose => "no right compose",
        }
    }

    /// Scenario configuration for one run of this configuration.
    pub fn scenario(self, scale: Scale, seed: u64) -> ScenarioConfig {
        let (options, compose_config) = match self {
            Configuration::NoKeys => (PrimitiveOptions::default(), ComposeConfig::default()),
            Configuration::Keys => (PrimitiveOptions::with_keys(), ComposeConfig::default()),
            Configuration::NoUnfolding => {
                (PrimitiveOptions::default(), ComposeConfig::without_view_unfolding())
            }
            Configuration::NoRightCompose => {
                (PrimitiveOptions::default(), ComposeConfig::without_right_compose())
            }
        };
        ScenarioConfig {
            schema_size: 30,
            edits: scale.edits_per_run(),
            options,
            event_vector: EventVector::default_vector(),
            compose_config,
            seed,
        }
    }
}

/// Aggregated per-primitive statistics for one configuration (the bars of
/// Figures 2 and 3).
#[derive(Debug, Clone, Default)]
pub struct PrimitiveAggregate {
    /// Eliminated / attempted counts per primitive.
    pub success: BTreeMap<PrimitiveKind, (usize, usize)>,
    /// Total composition time and edit count per primitive.
    pub time: BTreeMap<PrimitiveKind, (Duration, usize)>,
    /// Per-run total composition times (Figure 4).
    pub run_times: Vec<Duration>,
    /// Overall fraction of intermediate symbols eventually eliminated.
    pub overall_fraction: f64,
}

impl PrimitiveAggregate {
    /// Fraction of symbols eliminated for one primitive.
    pub fn fraction(&self, kind: PrimitiveKind) -> Option<f64> {
        self.success.get(&kind).map(|(eliminated, attempted)| {
            if *attempted == 0 {
                1.0
            } else {
                *eliminated as f64 / *attempted as f64
            }
        })
    }

    /// Mean composition time per edit for one primitive, in milliseconds.
    pub fn mean_millis(&self, kind: PrimitiveKind) -> Option<f64> {
        self.time.get(&kind).map(|(total, count)| {
            if *count == 0 {
                0.0
            } else {
                total.as_secs_f64() * 1000.0 / *count as f64
            }
        })
    }

    /// Median per-run composition time in seconds (the paper reports medians
    /// because of outliers, Figure 4).
    pub fn median_run_seconds(&self) -> f64 {
        if self.run_times.is_empty() {
            return 0.0;
        }
        let mut sorted = self.run_times.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2].as_secs_f64()
    }
}

/// Run the schema-editing experiment for one configuration (Figures 2–4).
pub fn editing_experiment(
    configuration: Configuration,
    scale: Scale,
    base_seed: u64,
) -> PrimitiveAggregate {
    let mut aggregate = PrimitiveAggregate::default();
    let mut fraction_sum = 0.0;
    let runs = scale.editing_runs();
    for run_index in 0..runs {
        let scenario = configuration.scenario(scale, base_seed + run_index as u64);
        let run = run_editing(&scenario);
        accumulate(&mut aggregate, &run);
        fraction_sum += run.fraction_eliminated();
    }
    aggregate.overall_fraction = fraction_sum / runs.max(1) as f64;
    aggregate
}

fn accumulate(aggregate: &mut PrimitiveAggregate, run: &EditingRun) {
    for (kind, (eliminated, attempted)) in run.per_primitive_success() {
        let entry = aggregate.success.entry(kind).or_insert((0, 0));
        entry.0 += eliminated;
        entry.1 += attempted;
    }
    for (kind, (total, count)) in run.per_primitive_time() {
        let entry = aggregate.time.entry(kind).or_insert((Duration::ZERO, 0));
        entry.0 += total;
        entry.1 += count;
    }
    aggregate.run_times.push(run.compose_time);
}

/// One point of the Figure 5 sweep (proportion of inclusion edits).
#[derive(Debug, Clone)]
pub struct InclusionPoint {
    /// Proportion of Sub/Sup edits (0.0 – 0.2).
    pub proportion: f64,
    /// Overall fraction of symbols eliminated.
    pub total_fraction: f64,
    /// Per-primitive fractions for the primitives the paper highlights.
    pub per_primitive: BTreeMap<PrimitiveKind, f64>,
    /// Mean per-run composition time in seconds.
    pub mean_time_seconds: f64,
}

/// The primitives highlighted in Figure 5.
pub const FIGURE5_PRIMITIVES: [PrimitiveKind; 4] = [
    PrimitiveKind::AddDefaultForward,
    PrimitiveKind::DropAttribute,
    PrimitiveKind::NormalizeForward,
    PrimitiveKind::HorizontalForward,
];

/// Run the inclusion-proportion sweep of Figure 5.
pub fn inclusion_sweep(scale: Scale, base_seed: u64) -> Vec<InclusionPoint> {
    let proportions: Vec<f64> = (0..=10).map(|i| i as f64 * 0.02).collect();
    let runs = scale.editing_runs().max(2) / 2;
    proportions
        .into_iter()
        .map(|proportion| {
            let mut aggregate = PrimitiveAggregate::default();
            let mut fraction_sum = 0.0;
            let mut time_sum = 0.0;
            for run_index in 0..runs {
                let scenario = ScenarioConfig {
                    schema_size: 30,
                    edits: scale.edits_per_run(),
                    options: PrimitiveOptions::default(),
                    event_vector: EventVector::default_vector()
                        .with_inclusion_proportion(proportion),
                    compose_config: ComposeConfig::default(),
                    seed: base_seed + run_index as u64,
                };
                let run = run_editing(&scenario);
                fraction_sum += run.fraction_eliminated();
                time_sum += run.compose_time.as_secs_f64();
                accumulate(&mut aggregate, &run);
            }
            let per_primitive = FIGURE5_PRIMITIVES
                .iter()
                .filter_map(|kind| aggregate.fraction(*kind).map(|f| (*kind, f)))
                .collect();
            InclusionPoint {
                proportion,
                total_fraction: fraction_sum / runs.max(1) as f64,
                per_primitive,
                mean_time_seconds: time_sum / runs.max(1) as f64,
            }
        })
        .collect()
}

/// One point of the reconciliation sweeps (Figures 6 and 7).
#[derive(Debug, Clone)]
pub struct ReconcilePoint {
    /// The swept parameter (schema size for Figure 6, edit count for
    /// Figure 7).
    pub x: usize,
    /// Fraction of intermediate-schema symbols eliminated.
    pub fraction: f64,
    /// Mean composition time in seconds.
    pub time_seconds: f64,
}

/// Figure 6: fraction eliminated vs. intermediate schema size, for the
/// complete algorithm and the two ablations.
pub fn schema_size_sweep(
    scale: Scale,
    base_seed: u64,
) -> BTreeMap<&'static str, Vec<ReconcilePoint>> {
    let sizes: Vec<usize> = match scale {
        Scale::Smoke => vec![10, 30],
        _ => (1..=10).map(|i| i * 10).collect(),
    };
    let configs: [(&'static str, ComposeConfig); 3] = [
        ("complete", ComposeConfig::default()),
        ("no view unfolding", ComposeConfig::without_view_unfolding()),
        ("no right compose", ComposeConfig::without_right_compose()),
    ];
    let mut out = BTreeMap::new();
    for (label, compose_config) in configs {
        let points = sizes
            .iter()
            .map(|&size| {
                let config = ReconcileConfig {
                    schema_size: size,
                    edits_per_branch: scale.reconcile_edits(),
                    scenario: ScenarioConfig {
                        schema_size: size,
                        edits: scale.reconcile_edits(),
                        compose_config: compose_config.clone(),
                        ..ScenarioConfig::default()
                    },
                    max_branch_retries: 3,
                    seed: base_seed + size as u64,
                };
                let (fraction, time) =
                    mapcomp_evolution::average_reconciliation(&config, scale.reconcile_samples());
                ReconcilePoint { x: size, fraction, time_seconds: time.as_secs_f64() }
            })
            .collect();
        out.insert(label, points);
    }
    out
}

/// Figure 7: fraction eliminated and time vs. number of edits per branch.
pub fn edit_count_sweep(scale: Scale, base_seed: u64) -> Vec<ReconcilePoint> {
    let counts: Vec<usize> = match scale {
        Scale::Smoke => vec![10, 20],
        Scale::Quick => vec![10, 30, 50, 70, 90],
        Scale::Paper => (0..=10).map(|i| 10 + i * 20).collect(),
    };
    counts
        .into_iter()
        .map(|edits| {
            let config = ReconcileConfig {
                schema_size: 30,
                edits_per_branch: edits,
                scenario: ScenarioConfig { schema_size: 30, edits, ..ScenarioConfig::default() },
                max_branch_retries: 3,
                seed: base_seed + edits as u64,
            };
            let (fraction, time) =
                mapcomp_evolution::average_reconciliation(&config, scale.reconcile_samples());
            ReconcilePoint { x: edits, fraction, time_seconds: time.as_secs_f64() }
        })
        .collect()
}

/// Outcome of one corpus problem for the literature-suite report.
#[derive(Debug, Clone)]
pub struct CorpusOutcome {
    /// Problem id.
    pub id: &'static str,
    /// σ2 symbols eliminated.
    pub eliminated: usize,
    /// σ2 symbols in the problem.
    pub total: usize,
    /// Did the result meet the recorded expectation?
    pub expectation_met: bool,
    /// Composition time.
    pub time: Duration,
}

/// Run the 22-problem literature suite.
pub fn corpus_report() -> Vec<CorpusOutcome> {
    let registry = Registry::standard();
    let config = ComposeConfig::default();
    problems()
        .iter()
        .map(|problem| {
            let started = std::time::Instant::now();
            let result = problem.compose(&registry, &config).expect("corpus problem composes");
            CorpusOutcome {
                id: problem.id,
                eliminated: result.eliminated.len(),
                total: result.eliminated.len() + result.remaining.len(),
                expectation_met: problem.check(&result),
                time: started.elapsed(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8 (new experiment): incremental vs. cold chain recomposition
// ---------------------------------------------------------------------------

/// One point of the Figure 8 chain-cache experiment: a composition chain of
/// the given length is built by the evolution simulator and registered in a
/// catalog; we measure composing it cold, then editing the middle link and
/// recomposing incrementally with the warm memo cache.
#[derive(Debug, Clone)]
pub struct ChainCachePoint {
    /// Number of links in the chain.
    pub chain_len: usize,
    /// Pairwise compositions for a cold full fold.
    pub cold_calls: usize,
    /// Wall-clock time of the cold fold.
    pub cold_time: Duration,
    /// Pairwise compositions to recompose after editing the middle link.
    pub incremental_calls: usize,
    /// Wall-clock time of the incremental recompose.
    pub incremental_time: Duration,
    /// Pairwise compositions to recompose with nothing edited (must be 0).
    pub warm_calls: usize,
}

/// Chain lengths measured per scale.
pub fn chain_lengths(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![2, 4],
        Scale::Quick => vec![2, 4, 8, 12],
        Scale::Paper => vec![2, 4, 8, 16, 32, 64],
    }
}

/// Build an evolution-derived catalog chain of (up to) `edits` links and
/// return the replayed session plus the chain's mapping names. Exposed for
/// the criterion bench, which needs the same setup.
pub fn chain_fixture(edits: usize, seed: u64) -> (mapcomp_catalog::Session, Vec<String>) {
    let scenario = ScenarioConfig {
        schema_size: 8,
        edits,
        options: PrimitiveOptions::default(),
        event_vector: EventVector::default_vector(),
        compose_config: ComposeConfig::default(),
        seed,
    };
    let replay = mapcomp_catalog::replay_editing(&scenario).expect("replay succeeds");
    let path =
        replay.final_result.as_ref().map(|result| result.chain.path.clone()).unwrap_or_default();
    (replay.session, path)
}

/// An edited variant of a mapping's constraints: the original plus one
/// trivially-true constraint over a relation of its source schema, so the
/// content hash changes while the mapping stays semantically equivalent.
pub fn edited_variant(
    session: &mapcomp_catalog::Session,
    mapping: &str,
) -> mapcomp_algebra::ConstraintSet {
    let entry = session.catalog().mapping(mapping).expect("mapping exists");
    let source = session.catalog().schema(&entry.source).expect("schema exists");
    let relation = source.signature.names().into_iter().next().expect("non-empty schema");
    let mut constraints = entry.constraints.clone();
    constraints.push(mapcomp_algebra::Constraint::containment(
        mapcomp_algebra::Expr::rel(relation.clone()),
        mapcomp_algebra::Expr::rel(relation),
    ));
    constraints
}

/// Run the Figure 8 experiment: for each chain length, compare cold, warm,
/// and incremental (middle link edited) recomposition.
pub fn chain_cache_experiment(scale: Scale, base_seed: u64) -> Vec<ChainCachePoint> {
    chain_lengths(scale)
        .into_iter()
        .enumerate()
        .filter_map(|(index, edits)| {
            let (mut session, path) = chain_fixture(edits, base_seed + index as u64);
            if path.len() < 2 {
                return None;
            }
            // Cold: a fresh session over the same catalog.
            let catalog = session.catalog().clone();
            let mut cold_session = mapcomp_catalog::Session::new(catalog);
            let started = std::time::Instant::now();
            let cold = cold_session.compose_names(&path).expect("cold chain composes");
            let cold_time = started.elapsed();

            // Warm: the replayed session already composed this chain.
            let warm = session.compose_names(&path).expect("warm chain composes");

            // Incremental: edit the middle link, recompose.
            let middle = path[path.len() / 2].clone();
            let variant = edited_variant(&session, &middle);
            session.update_mapping(&middle, variant).expect("edit applies");
            let started = std::time::Instant::now();
            let incremental = session.compose_names(&path).expect("incremental chain composes");
            let incremental_time = started.elapsed();

            Some(ChainCachePoint {
                chain_len: path.len(),
                cold_calls: cold.compose_calls,
                cold_time,
                incremental_calls: incremental.compose_calls,
                incremental_time,
                warm_calls: warm.compose_calls,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 9 (new experiment): naive vs. semi-naive chase scaling
// ---------------------------------------------------------------------------

/// One point of the Figure 9 chase-scaling experiment: the same
/// data-exchange scenario chased under both strategies of
/// [`mapcomp_compose::ChaseStrategy`].
#[derive(Debug, Clone)]
pub struct ChaseScalingPoint {
    /// Tuples per source relation.
    pub size: usize,
    /// Length of the target-to-target copy chain (≈ chase rounds).
    pub depth: usize,
    /// Wall-clock time of the naive chase.
    pub naive_time: Duration,
    /// Wall-clock time of the semi-naive chase.
    pub semi_time: Duration,
    /// Rounds until fixpoint (identical across strategies by construction).
    pub rounds: usize,
    /// Did the two strategies produce identical targets, skip sets and
    /// convergence flags?
    pub results_agree: bool,
}

impl ChaseScalingPoint {
    /// Naive time over semi-naive time.
    pub fn speedup(&self) -> f64 {
        let semi = self.semi_time.as_secs_f64();
        if semi > 0.0 {
            self.naive_time.as_secs_f64() / semi
        } else {
            f64::INFINITY
        }
    }
}

/// Source-relation sizes per scale.
pub fn chase_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![20, 40],
        Scale::Quick => vec![40, 80, 160, 320],
        Scale::Paper => vec![100, 200, 400, 800],
    }
}

/// Copy-chain depth per scale.
pub fn chase_depth(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 6,
        Scale::Quick => 10,
        Scale::Paper => 12,
    }
}

/// Build the Figure 9 scenario: a source relation copied into a chain of
/// `depth` target-to-target inclusions, plus a final join rule matching the
/// chain's tail against a second source relation. The chain forces one chase
/// round per link (the worst case for full re-evaluation), and the join rule
/// exercises the indexed premise plans.
#[allow(clippy::type_complexity)]
pub fn chase_scenario(
    size: usize,
    depth: usize,
) -> (
    Vec<mapcomp_algebra::Constraint>,
    mapcomp_algebra::Signature,
    mapcomp_algebra::Signature,
    mapcomp_algebra::Instance,
) {
    use mapcomp_algebra::{parse_constraints, Instance, Signature, Value};

    let mut arities: Vec<(String, usize)> =
        vec![("R".to_string(), 2), ("S".to_string(), 2), ("J".to_string(), 2)];
    for link in 0..=depth {
        arities.push((format!("T{link}"), 2));
    }
    let full = Signature::from_arities(arities.clone());
    let target = Signature::from_arities(
        arities.iter().filter(|(name, _)| name != "R" && name != "S").cloned(),
    );

    // Rules are listed against the data-flow direction (join first, chain
    // reversed, the source rule last), so each round unlocks exactly one
    // link: the worst case for a strategy that re-evaluates every rule's
    // full premise every round.
    let mut text = format!("project[0,3](select[#1 = #2](T{depth} * S)) <= J; ");
    for link in (0..depth).rev() {
        text.push_str(&format!("T{link} <= T{}; ", link + 1));
    }
    text.push_str("R <= T0");
    let constraints = parse_constraints(&text).expect("scenario parses").into_vec();

    let mut source = Instance::new();
    for i in 0..size as i64 {
        let key = size as i64 + i;
        source.insert("R", vec![Value::Int(i), Value::Int(key)]);
        source.insert("S", vec![Value::Int(key), Value::Int(i)]);
    }
    (constraints, full, target, source)
}

/// Exchange configuration sized for the Figure 9 scenario (enough rounds for
/// the chain plus the join, and a budget admitting the naive strategy's full
/// `T × S` product at every measured size).
pub fn chase_scaling_config(depth: usize) -> ExchangeConfig {
    ExchangeConfig {
        max_rounds: depth + 5,
        max_nulls: 10_000,
        eval_budget: 5_000_000,
        ..ExchangeConfig::default()
    }
}

/// Run the Figure 9 experiment: chase each scenario under both strategies,
/// timing them and checking the results coincide.
pub fn chase_scaling_experiment(scale: Scale) -> Vec<ChaseScalingPoint> {
    let registry = Registry::standard();
    let depth = chase_depth(scale);
    chase_sizes(scale)
        .into_iter()
        .map(|size| {
            let (constraints, full, target, source) = chase_scenario(size, depth);
            let config = chase_scaling_config(depth);
            let started = std::time::Instant::now();
            let naive = mapcomp_compose::exchange(
                &constraints,
                &full,
                &target,
                &source,
                &registry,
                &config.clone().with_strategy(ChaseStrategy::Naive),
            );
            let naive_time = started.elapsed();
            let started = std::time::Instant::now();
            let semi = mapcomp_compose::exchange(
                &constraints,
                &full,
                &target,
                &source,
                &registry,
                &config.with_strategy(ChaseStrategy::SemiNaive),
            );
            let semi_time = started.elapsed();
            let results_agree = naive.target == semi.target
                && naive.converged
                && semi.converged
                && naive.skipped.is_empty()
                && semi.skipped.is_empty()
                && naive.rounds == semi.rounds;
            ChaseScalingPoint {
                size,
                depth,
                naive_time,
                semi_time,
                rounds: semi.rounds,
                results_agree,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 10 (new experiment): concurrent shared-catalog sessions
// ---------------------------------------------------------------------------

/// One point of the Figure 10 concurrent-sessions experiment: the same batch
/// of chain-composition requests fanned over a shared catalog with a given
/// worker count, cold cache each time.
#[derive(Debug, Clone)]
pub struct ConcurrentSessionsPoint {
    /// Worker threads used for the batch.
    pub workers: usize,
    /// Requests in the batch.
    pub requests: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// Requests that failed (must be 0).
    pub failures: usize,
    /// Did every request produce the same composed constraints as the
    /// single-worker run?
    pub results_consistent: bool,
}

impl ConcurrentSessionsPoint {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds > 0.0 {
            self.requests as f64 / seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Worker counts measured per scale. The smoke tier deliberately includes a
/// worker count above any CI machine's core count, so oversubscription bugs
/// (deadlocks, lost wakeups) cannot hide behind low parallelism.
pub fn concurrent_workers(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![1, 4, 8],
        Scale::Quick => vec![1, 2, 4],
        Scale::Paper => vec![1, 2, 4, 8],
    }
}

/// Build the Figure 10 corpus: `chains` independent evolution-style chains
/// of `hops` links each (two relations carried per schema, so every pairwise
/// composition eliminates two symbols), plus the all-pairs request list —
/// every sub-span of every chain, the traffic shape of many sessions
/// consulting one catalog.
pub fn concurrent_corpus(scale: Scale) -> (mapcomp_catalog::Catalog, Vec<(String, String)>) {
    use mapcomp_algebra::{parse_constraints, Signature};

    let (chains, hops) = match scale {
        Scale::Smoke => (3, 4),
        Scale::Quick => (6, 8),
        Scale::Paper => (12, 10),
    };
    let mut catalog = mapcomp_catalog::Catalog::new();
    let mut requests = Vec::new();
    for chain in 0..chains {
        for i in 0..=hops {
            catalog.add_schema(
                format!("c{chain}v{i}"),
                Signature::from_arities([
                    (format!("A{chain}_{i}"), 2),
                    (format!("B{chain}_{i}"), 1),
                ]),
            );
        }
        for i in 0..hops {
            let constraints = parse_constraints(&format!(
                "A{chain}_{i} <= A{chain}_{next}; project[0](B{chain}_{i}) <= B{chain}_{next}",
                next = i + 1
            ))
            .expect("corpus constraints parse");
            catalog
                .add_mapping(
                    format!("c{chain}m{i}"),
                    &format!("c{chain}v{i}"),
                    &format!("c{chain}v{}", i + 1),
                    constraints,
                )
                .expect("corpus mapping registers");
        }
    }
    // Requests are interleaved chain-first (all chains' 1-hop spans, then
    // all 2-hop spans, …): neighbouring requests belong to *different*
    // chains, so strided batch workers spread across the catalog instead of
    // racing to compose the same segments, and short spans warm the cache
    // before the longer spans that reuse them.
    for len in 1..=hops {
        for i in 0..=(hops - len) {
            let j = i + len;
            for chain in 0..chains {
                requests.push((format!("c{chain}v{i}"), format!("c{chain}v{j}")));
            }
        }
    }
    (catalog, requests)
}

/// Run the Figure 10 experiment: for each worker count, share a cold-cache
/// catalog session and time the whole batch. Results are checked against
/// the single-worker run's composed constraints, so a concurrency bug that
/// corrupts content (rather than just timing) fails the experiment visibly.
pub fn concurrent_sessions_experiment(scale: Scale) -> Vec<ConcurrentSessionsPoint> {
    let (catalog, requests) = concurrent_corpus(scale);
    let mut reference: Option<Vec<String>> = None;
    concurrent_workers(scale)
        .into_iter()
        .map(|workers| {
            let session = mapcomp_catalog::SharedSession::new(catalog.clone(), workers);
            let started = std::time::Instant::now();
            let results = session.compose_batch_parallel(&requests);
            let elapsed = started.elapsed();
            let failures = results.iter().filter(|result| result.is_err()).count();
            let rendered: Vec<String> = results
                .iter()
                .map(|result| match result {
                    Ok(result) => result.chain.mapping.constraints.to_string(),
                    Err(error) => format!("error: {error}"),
                })
                .collect();
            let results_consistent = match &reference {
                Some(reference) => *reference == rendered,
                None => {
                    reference = Some(rendered);
                    true
                }
            };
            ConcurrentSessionsPoint {
                workers,
                requests: requests.len(),
                elapsed,
                failures,
                results_consistent,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 11 (new experiment): service throughput over loopback TCP
// ---------------------------------------------------------------------------

/// One point of the Figure 11 service-throughput experiment: the Figure 10
/// request corpus driven through a loopback TCP server with a given worker
/// count, one client connection per worker, cold cache each time.
#[derive(Debug, Clone)]
pub struct ServiceThroughputPoint {
    /// Server connection-worker threads (and concurrent client connections).
    pub workers: usize,
    /// Requests issued across all clients.
    pub requests: usize,
    /// Wall-clock time from the first request to the last reply.
    pub elapsed: Duration,
    /// Requests that failed (must be 0).
    pub failures: usize,
    /// Did every request produce the same composed chain document as the
    /// single-worker run?
    pub results_consistent: bool,
}

impl ServiceThroughputPoint {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds > 0.0 {
            self.requests as f64 / seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Server worker counts measured per scale (one client connection per
/// worker). Mirrors [`concurrent_workers`], including the smoke tier's
/// deliberate oversubscription.
pub fn service_workers(scale: Scale) -> Vec<usize> {
    concurrent_workers(scale)
}

/// Serve `catalog` on an ephemeral loopback port with `workers` connection
/// workers, fan `requests` across `workers` concurrent client connections
/// (strided, one `compose-path` call per request), shut the server down, and
/// return the per-request chain documents in request order plus the
/// wall-clock time of the client phase. Failed requests render as an
/// `error: …` line so the caller can both count and compare them.
pub fn service_batch_over_loopback(
    catalog: &mapcomp_catalog::Catalog,
    requests: &[(String, String)],
    workers: usize,
) -> (Vec<(String, bool)>, Duration) {
    use mapcomp_service::{Client, LocalService, Request, Response, Server};

    let service = LocalService::new(catalog.clone(), workers);
    let server = Server::bind("127.0.0.1:0").expect("bind a loopback port");
    let addr = server.local_addr().expect("bound address").to_string();
    let clients = workers.max(1);
    let mut outcomes: Vec<(usize, String, bool)> = Vec::with_capacity(requests.len());
    let mut elapsed = Duration::default();
    std::thread::scope(|scope| {
        let (server, service, addr) = (&server, &service, addr.as_str());
        scope.spawn(move || {
            server.run(service, workers).expect("server run");
        });
        let started = std::time::Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let client = Client::connect(addr).expect("connect to loopback server");
                    let mut done = Vec::new();
                    let mut index = client_index;
                    while index < requests.len() {
                        let (from, to) = &requests[index];
                        let request = Request::ComposePath { from: from.clone(), to: to.clone() };
                        done.push(match client.call(request) {
                            Ok(Response::Composed(payload)) => (index, payload.document, true),
                            Ok(other) => (index, format!("error: {}", other.kind()), false),
                            Err(error) => (index, format!("error: {error}"), false),
                        });
                        index += clients;
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            outcomes.extend(handle.join().expect("client thread panicked"));
        }
        elapsed = started.elapsed();
        // All clients are done; stop the server so the scope can close.
        let closer = Client::connect(addr).expect("connect for shutdown");
        closer.call(Request::Shutdown).expect("shutdown accepted");
    });
    outcomes.sort_by_key(|(index, _, _)| *index);
    (outcomes.into_iter().map(|(_, text, ok)| (text, ok)).collect(), elapsed)
}

/// Run the Figure 11 experiment: for each worker count, serve a cold-cache
/// catalog over loopback TCP and time the full request corpus issued by
/// `workers` concurrent client connections. Results are checked against the
/// single-worker run's chain documents, so a concurrency or codec bug that
/// corrupts content fails the experiment visibly.
pub fn service_throughput_experiment(scale: Scale) -> Vec<ServiceThroughputPoint> {
    let (catalog, requests) = concurrent_corpus(scale);
    let mut reference: Option<Vec<String>> = None;
    service_workers(scale)
        .into_iter()
        .map(|workers| {
            let (outcomes, elapsed) = service_batch_over_loopback(&catalog, &requests, workers);
            let failures = outcomes.iter().filter(|(_, ok)| !ok).count();
            let rendered: Vec<String> = outcomes.into_iter().map(|(text, _)| text).collect();
            let results_consistent = match &reference {
                Some(reference) => *reference == rendered,
                None => {
                    reference = Some(rendered);
                    true
                }
            };
            ServiceThroughputPoint {
                workers,
                requests: requests.len(),
                elapsed,
                failures,
                results_consistent,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 11 connection sweep: concurrent connections vs. tail latency
// ---------------------------------------------------------------------------

/// Which TCP front end a connection-sweep point exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepEngine {
    /// The readiness-driven event loop (`EventServer`): one loop thread
    /// multiplexes every connection, a fixed CPU pool composes.
    Event,
    /// The thread-per-connection server (`Server`): concurrency pins at
    /// the worker count, so its sweep point runs at `connections ==
    /// cpu_workers`.
    Threaded,
}

impl SweepEngine {
    /// Stable label recorded in the trajectory.
    pub fn label(self) -> &'static str {
        match self {
            SweepEngine::Event => "event",
            SweepEngine::Threaded => "threaded",
        }
    }
}

/// One point of the Figure 11 connection sweep: `connections` concurrent
/// client connections held open against a server with `cpu_workers`
/// compute threads, with per-request round-trip latencies sampled over
/// the Figure 10 corpus.
#[derive(Debug, Clone)]
pub struct ConnectionSweepPoint {
    /// Which front end served the point.
    pub engine: SweepEngine,
    /// Concurrent client connections held open for the whole point.
    pub connections: usize,
    /// Server CPU worker threads.
    pub cpu_workers: usize,
    /// Requests issued (the concurrency-proof pings plus the composes).
    pub requests: usize,
    /// Requests that failed (must be 0).
    pub failures: usize,
    /// Wall-clock time of the whole point.
    pub elapsed: Duration,
    /// Median compose round-trip latency.
    pub p50: Duration,
    /// 99th-percentile compose round-trip latency.
    pub p99: Duration,
}

/// CPU worker threads used by every connection-sweep point: the ISSUE's
/// acceptance shape is "many connections, few cores".
pub const SWEEP_CPU_WORKERS: usize = 4;

/// Connection counts swept per scale. The smoke tier stops at 256 so CI
/// machines with one core finish promptly; quick and paper go to 1024.
pub fn sweep_connection_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![64, 256],
        Scale::Quick | Scale::Paper => vec![64, 256, 1024],
    }
}

/// A percentile of an already-sorted latency sample (nearest-rank).
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let index = ((sorted.len() as f64 - 1.0) * pct).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

/// Drive one sweep point: open `connections` client sockets against
/// `addr` and keep every one open until the end. Phase 1 proves the
/// concurrency — every connection writes a `ping` before *any* reply is
/// read, so all of them have a request in flight at once. Phase 2 samples
/// latency: the corpus composes, cycled to cover every connection at
/// least twice, issued lock-step round-robin by a small pool of driver
/// threads. Returns (total requests, failures, sorted latencies).
fn drive_connection_sweep(
    addr: &str,
    requests: &[(String, String)],
    connections: usize,
) -> (usize, usize, Vec<Duration>) {
    use mapcomp_service::{decode_reply, encode_request, read_frame, Request, Response};
    use std::io::{BufReader, Write as _};
    use std::net::TcpStream;

    // Connect with retries: a burst of SYNs can overflow the listener
    // backlog, which surfaces as transient refusals.
    let connect = |addr: &str| -> TcpStream {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => return stream,
                Err(error) if std::time::Instant::now() < deadline => {
                    let _ = error;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(error) => panic!("cannot connect to {addr}: {error}"),
            }
        }
    };
    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = (0..connections)
        .map(|_| {
            let stream = connect(addr);
            let _ = stream.set_nodelay(true);
            let reader = BufReader::new(stream.try_clone().expect("clone sweep stream"));
            (stream, reader)
        })
        .collect();

    let mut failures = 0usize;

    // Phase 1: every connection has a ping outstanding simultaneously.
    let ping = encode_request(&Request::Ping);
    for (writer, _) in &mut conns {
        if writer.write_all(ping.as_bytes()).and_then(|()| writer.flush()).is_err() {
            failures += 1;
        }
    }
    for (_, reader) in &mut conns {
        match read_frame(reader) {
            Ok(Some(frame)) => match decode_reply(&frame) {
                Ok(Ok(Response::Pong)) => {}
                _ => failures += 1,
            },
            _ => failures += 1,
        }
    }

    // Phase 2: latency sampling. Cycle the corpus so every connection
    // serves at least two composes.
    let total = requests.len().max(connections * 2);
    let drivers = connections.clamp(1, 8);
    let mut groups: Vec<Vec<(usize, TcpStream, BufReader<TcpStream>)>> =
        (0..drivers).map(|_| Vec::new()).collect();
    for (index, conn) in conns.into_iter().enumerate() {
        groups[index % drivers].push((index, conn.0, conn.1));
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut phase_failures = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter_mut()
            .map(|group| {
                scope.spawn(move || {
                    let mut samples = Vec::new();
                    let mut failed = 0usize;
                    for (index, writer, reader) in group.iter_mut() {
                        // This connection's share of the cycled corpus.
                        let mut item = *index;
                        while item < total {
                            let (from, to) = &requests[item % requests.len()];
                            let request =
                                Request::ComposePath { from: from.clone(), to: to.clone() };
                            let frame = encode_request(&request);
                            let started = std::time::Instant::now();
                            let ok = writer
                                .write_all(frame.as_bytes())
                                .and_then(|()| writer.flush())
                                .is_ok()
                                && matches!(
                                    read_frame(reader),
                                    Ok(Some(reply)) if matches!(
                                        decode_reply(&reply),
                                        Ok(Ok(Response::Composed(_)))
                                    )
                                );
                            samples.push(started.elapsed());
                            if !ok {
                                failed += 1;
                            }
                            item += connections;
                        }
                    }
                    (samples, failed)
                })
            })
            .collect();
        for handle in handles {
            let (samples, failed) = handle.join().expect("sweep driver thread panicked");
            latencies.extend(samples);
            phase_failures += failed;
        }
    });
    failures += phase_failures;
    latencies.sort();
    (connections + total, failures, latencies)
}

/// Measure one connection-sweep point against a freshly bound server of
/// the requested engine, cold cache.
pub fn connection_sweep_over_loopback(
    catalog: &mapcomp_catalog::Catalog,
    requests: &[(String, String)],
    connections: usize,
    cpu_workers: usize,
    engine: SweepEngine,
) -> ConnectionSweepPoint {
    use mapcomp_service::{Client, EventServer, LocalService, Request, Server};

    let service = LocalService::new(catalog.clone(), cpu_workers);
    let mut outcome = None;
    let started = std::time::Instant::now();
    match engine {
        SweepEngine::Event => {
            let mut server = EventServer::bind("127.0.0.1:0").expect("bind a loopback port");
            // The sweep intentionally floods every connection at once;
            // raise the shed threshold so backpressure does not distort
            // the latency sample.
            server.set_queue_limit(connections * 2);
            let addr = server.local_addr().expect("bound address").to_string();
            std::thread::scope(|scope| {
                let (server, service) = (&server, &service);
                scope.spawn(move || server.run(service, cpu_workers).expect("server run"));
                outcome = Some(drive_connection_sweep(&addr, requests, connections));
                let closer = Client::connect(&addr).expect("connect for shutdown");
                closer.call(Request::Shutdown).expect("shutdown accepted");
            });
        }
        SweepEngine::Threaded => {
            let server = Server::bind("127.0.0.1:0").expect("bind a loopback port");
            let addr = server.local_addr().expect("bound address").to_string();
            std::thread::scope(|scope| {
                let (server, service) = (&server, &service);
                scope.spawn(move || server.run(service, cpu_workers).expect("server run"));
                outcome = Some(drive_connection_sweep(&addr, requests, connections));
                let closer = Client::connect(&addr).expect("connect for shutdown");
                closer.call(Request::Shutdown).expect("shutdown accepted");
            });
        }
    }
    let elapsed = started.elapsed();
    let (total, failures, latencies) = outcome.expect("sweep driver ran");
    ConnectionSweepPoint {
        engine,
        connections,
        cpu_workers,
        requests: total,
        failures,
        elapsed,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

/// Run the Figure 11 connection sweep: the event engine at each swept
/// connection count, plus the threaded engine's comparison point at its
/// concurrency ceiling (`connections == cpu_workers` — beyond that its
/// extra connections just queue).
pub fn connection_sweep_experiment(scale: Scale) -> Vec<ConnectionSweepPoint> {
    let (catalog, requests) = concurrent_corpus(scale);
    let mut points: Vec<ConnectionSweepPoint> = sweep_connection_counts(scale)
        .into_iter()
        .map(|connections| {
            connection_sweep_over_loopback(
                &catalog,
                &requests,
                connections,
                SWEEP_CPU_WORKERS,
                SweepEngine::Event,
            )
        })
        .collect();
    points.push(connection_sweep_over_loopback(
        &catalog,
        &requests,
        SWEEP_CPU_WORKERS,
        SWEEP_CPU_WORKERS,
        SweepEngine::Threaded,
    ));
    points
}

// ---------------------------------------------------------------------------
// Figure 12 (new experiment): incremental vs. full-rewrite persistence
// ---------------------------------------------------------------------------

/// One point of the Figure 12 persistence experiment: the durability cost
/// of a state-changing service request at a given catalog size, under the
/// incremental append-only path and under the legacy full-rewrite path
/// (`PersistMode::FullRewrite`). Bytes written per request are
/// deterministic, so the flat-vs-linear claim is assertable exactly; wall
/// times ride along for the report.
#[derive(Debug, Clone)]
pub struct PersistencePoint {
    /// Mappings in the catalog.
    pub mappings: usize,
    /// Mean bytes written to disk per state-changing request, incremental
    /// mode (sidecar append only).
    pub incremental_bytes: u64,
    /// Mean bytes written per state-changing request, full-rewrite mode
    /// (whole document + sidecar).
    pub rewrite_bytes: u64,
    /// Mean wall-clock time per request, incremental mode.
    pub incremental_time: Duration,
    /// Mean wall-clock time per request, full-rewrite mode.
    pub rewrite_time: Duration,
    /// Did a kill (drop without shutdown) and restart replay both modes to
    /// the same catalog document and cumulative cache statistics as before
    /// the kill?
    pub recovered_identical: bool,
}

/// Catalog sizes (mapping counts) per scale. Every scale spans at least a
/// 16x growth so the flat-vs-linear comparison has room to separate.
pub fn persistence_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![12, 192],
        Scale::Quick => vec![12, 48, 192],
        Scale::Paper => vec![16, 64, 256, 512],
    }
}

/// Render the Figure 12 catalog document: a single composition chain of
/// `mappings` one-relation hops, so the document (and therefore the
/// full-rewrite cost) grows linearly in the mapping count while every
/// measured request touches a constant-size two-hop span.
pub fn persistence_document(mappings: usize) -> String {
    let mut text = String::new();
    for i in 0..=mappings {
        text.push_str(&format!("schema pv{i} {{ P{i}/1; }}\n"));
    }
    for i in 0..mappings {
        text.push_str(&format!("mapping pm{i} : pv{i} -> pv{} {{ P{i} <= P{}; }}\n", i + 1, i + 1));
    }
    text
}

/// State-changing requests per measured point.
const PERSISTENCE_REQUESTS: usize = 4;

fn persistence_mode_run(
    mappings: usize,
    mode: mapcomp_service::PersistMode,
    tag: &str,
) -> (u64, Duration, bool) {
    use mapcomp_service::{
        sidecar_path, LocalService, MapcompService as _, PersistPolicy, Request, Response,
    };

    let file = std::env::temp_dir()
        .join(format!("mapcomp_fig12_{}_{tag}_{mappings}.doc", std::process::id()));
    let sidecar = sidecar_path(&file);
    for stale in [&file, &sidecar] {
        let _ = std::fs::remove_file(stale);
    }
    // Thresholds are disabled so the measurement sees the raw per-request
    // cost of each mode, never a mid-run compaction.
    let policy = PersistPolicy { mode, compact_appends: None, compact_bytes: None };
    let open = || {
        LocalService::open_with_policy(
            &file,
            Registry::standard(),
            mapcomp_catalog::SessionConfig::default(),
            1,
            true,
            policy,
        )
        .expect("open persistent service")
    };
    let service = open();
    match service.call(Request::AddDocument { text: persistence_document(mappings) }) {
        Ok(Response::Added { .. }) => {}
        other => panic!("seeding the fig12 catalog failed: {other:?}"),
    }
    let file_bytes = |path: &std::path::Path| std::fs::metadata(path).map_or(0, |meta| meta.len());
    let mut bytes_written = 0u64;
    let started = std::time::Instant::now();
    for request in 0..PERSISTENCE_REQUESTS {
        let from = 2 * request;
        let before_sidecar = file_bytes(&sidecar);
        let reply = service.call(Request::ComposePath {
            from: format!("pv{from}"),
            to: format!("pv{}", from + 2),
        });
        assert!(reply.is_ok(), "fig12 compose failed: {reply:?}");
        bytes_written += match mode {
            // Appends only: the document snapshot is untouched.
            mapcomp_service::PersistMode::Incremental => {
                file_bytes(&sidecar).saturating_sub(before_sidecar)
            }
            // Both files are rewritten whole.
            mapcomp_service::PersistMode::FullRewrite => file_bytes(&file) + file_bytes(&sidecar),
        };
    }
    let elapsed = started.elapsed() / PERSISTENCE_REQUESTS as u32;

    // Kill (no shutdown, no compaction) and restart: recovery must replay
    // the delta tail to the same catalog document and cumulative cache
    // statistics.
    let pre_document = service.session().catalog().snapshot().to_document_string();
    let pre_stats = service.session().cache().stats();
    drop(service);
    let reopened = open();
    let recovered = reopened.session().catalog().snapshot().to_document_string() == pre_document
        && reopened.session().cache().stats() == pre_stats;
    drop(reopened);
    for stale in [&file, &sidecar] {
        let _ = std::fs::remove_file(stale);
    }
    (bytes_written / PERSISTENCE_REQUESTS as u64, elapsed, recovered)
}

/// Run the Figure 12 experiment: at each catalog size, drive the same
/// state-changing request sequence through an incremental-persistence
/// service and a full-rewrite one, recording mean bytes written and wall
/// time per request plus a kill-and-restart recovery check.
pub fn persistence_experiment(scale: Scale) -> Vec<PersistencePoint> {
    use mapcomp_service::PersistMode;
    persistence_sizes(scale)
        .into_iter()
        .map(|mappings| {
            let (incremental_bytes, incremental_time, incremental_ok) =
                persistence_mode_run(mappings, PersistMode::Incremental, "incr");
            let (rewrite_bytes, rewrite_time, rewrite_ok) =
                persistence_mode_run(mappings, PersistMode::FullRewrite, "full");
            PersistencePoint {
                mappings,
                incremental_bytes,
                rewrite_bytes,
                incremental_time,
                rewrite_time,
                recovered_identical: incremental_ok && rewrite_ok,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 13: delta-log replication — follower catch-up and read scaling
// ---------------------------------------------------------------------------

/// One point of the Figure 13 catch-up experiment: a follower that was
/// offline while the leader appended `writes` state-changing requests
/// reconnects and streams the missed delta chunks.
#[derive(Debug, Clone)]
pub struct ReplicationCatchupPoint {
    /// State-changing requests the leader took while the follower was down.
    pub writes: usize,
    /// Positioned records in the leader's log when the follower reconnected
    /// (deterministic: the write workload is fixed).
    pub log_records: u64,
    /// Wall-clock time from follower restart to convergence on the leader's
    /// log-end position.
    pub catchup: Duration,
    /// Did the caught-up follower render the identical catalog document?
    pub converged: bool,
}

/// One point of the Figure 13 read-scaling experiment: a fixed compose
/// corpus fanned over one leader plus `followers` converged read-only
/// replicas, each behind its own event-engine front end.
#[derive(Debug, Clone)]
pub struct ReplicationReadPoint {
    /// Read-only follower endpoints serving alongside the leader.
    pub followers: usize,
    /// Requests issued across all endpoints.
    pub requests: usize,
    /// Requests that failed (must be 0).
    pub failures: usize,
    /// Wall-clock time of the client phase.
    pub elapsed: Duration,
    /// Did every request produce the same composed chain document as the
    /// leader-only run?
    pub results_consistent: bool,
}

impl ReplicationReadPoint {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds > 0.0 {
            self.requests as f64 / seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Delta-log lengths (leader writes taken while the follower is down)
/// swept by the catch-up experiment.
pub fn replication_log_lengths(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![4, 32],
        Scale::Quick => vec![8, 32, 128],
        Scale::Paper => vec![16, 128, 512],
    }
}

/// Follower counts swept by the read-scaling experiment (0 = the
/// leader-only baseline).
pub fn replication_follower_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![0, 2],
        Scale::Quick => vec![0, 1, 2],
        Scale::Paper => vec![0, 1, 2, 4],
    }
}

/// Mappings in the Figure 13 leader catalog (the Figure 12 chain shape:
/// the document grows linearly, every read touches a two-hop span).
const FIG13_CHAIN: usize = 12;

/// Read requests issued per read-scaling point.
fn fig13_read_requests(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 240,
        Scale::Quick => 960,
        Scale::Paper => 4800,
    }
}

/// Compose-span length of the read corpus: long enough that rendering the
/// chain document is real per-request work, so endpoint CPU — not loopback
/// overhead — is what the added followers multiply.
const FIG13_SPAN: usize = 6;

/// The fixed read corpus of the read-scaling experiment: six-hop compose
/// spans cycling over the chain, identical at every follower count so the
/// rendered results can be compared across points.
pub fn replication_read_corpus(scale: Scale) -> Vec<(String, String)> {
    (0..fig13_read_requests(scale))
        .map(|index| {
            let from = index % (FIG13_CHAIN - FIG13_SPAN);
            (format!("pv{from}"), format!("pv{}", from + FIG13_SPAN))
        })
        .collect()
}

/// The `round`-th catch-up write: alternate two bodies of the chain's
/// first mapping, so every write is a contentful edit appending the full
/// declaration + invalidation + version chunk to the delta log.
fn fig13_write_document(round: usize) -> String {
    if round.is_multiple_of(2) {
        "mapping pm0 : pv0 -> pv1 { project[0](P0) <= P1; }\n".to_string()
    } else {
        "mapping pm0 : pv0 -> pv1 { P0 <= P1; }\n".to_string()
    }
}

/// Remove a fig13 catalog file and its persistence artifacts.
fn fig13_cleanup(file: &std::path::Path) {
    let sidecar = mapcomp_service::sidecar_path(file);
    let mut lock = sidecar.clone().into_os_string();
    lock.push(".lock");
    let mut tmp = sidecar.clone().into_os_string();
    tmp.push(".tmp");
    for stale in [file.to_path_buf(), sidecar, lock.into(), tmp.into()] {
        let _ = std::fs::remove_file(stale);
    }
}

/// Open a replicating leader over a fresh temp catalog seeded with the
/// Figure 13 chain. Thresholds are disabled so the log only moves when the
/// experiment writes.
fn fig13_leader(tag: &str) -> (mapcomp_service::LocalService, std::path::PathBuf) {
    use mapcomp_service::{LocalService, MapcompService as _, PersistPolicy, Request, Response};

    let file = std::env::temp_dir().join(format!("mapcomp_fig13_{tag}_{}.doc", std::process::id()));
    fig13_cleanup(&file);
    let policy = PersistPolicy {
        mode: mapcomp_service::PersistMode::Incremental,
        compact_appends: None,
        compact_bytes: None,
    };
    let service = LocalService::open_with_policy(
        &file,
        Registry::standard(),
        mapcomp_catalog::SessionConfig::default(),
        2,
        true,
        policy,
    )
    .expect("open the fig13 leader");
    match service.call(Request::AddDocument { text: persistence_document(FIG13_CHAIN) }) {
        Ok(Response::Added { .. }) => {}
        other => panic!("seeding the fig13 leader failed: {other:?}"),
    }
    service.enable_replication().expect("enable replication on the fig13 leader");
    (service, file)
}

/// Poll a follower until it is streaming at (or past) `target`.
fn fig13_await_catchup(follower: &mapcomp_service::Follower, target: mapcomp_catalog::Position) {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = follower.status();
        if status.state == "streaming" && status.position >= target {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "fig13 follower stalled short of {target} at {} ({})",
            status.position,
            status.state
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn replication_catchup_run(writes: usize) -> ReplicationCatchupPoint {
    use mapcomp_service::{Client, EventServer, Follower, MapcompService as _, Request};

    let (leader, leader_file) = fig13_leader(&format!("catchup_leader_{writes}"));
    let follower_file = std::env::temp_dir()
        .join(format!("mapcomp_fig13_catchup_follower_{writes}_{}.doc", std::process::id()));
    fig13_cleanup(&follower_file);
    let server = EventServer::bind("127.0.0.1:0").expect("bind a loopback port");
    let addr = server.local_addr().expect("bound address").to_string();
    let mut point = ReplicationCatchupPoint {
        writes,
        log_records: 0,
        catchup: Duration::default(),
        converged: false,
    };
    std::thread::scope(|scope| {
        let (server, leader, addr) = (&server, &leader, addr.as_str());
        scope.spawn(move || server.run(leader, 2).expect("leader server run"));

        let open_follower = || {
            Follower::open(
                &follower_file,
                addr,
                Registry::standard(),
                mapcomp_catalog::SessionConfig::default(),
                1,
                None,
            )
            .expect("open the fig13 follower")
        };

        // First life: converge on the seeded catalog, then go offline.
        let follower = open_follower();
        let seeded = leader.replication_hub().expect("replicating leader").position();
        std::thread::scope(|inner| {
            let apply = inner.spawn(|| follower.run());
            fig13_await_catchup(&follower, seeded);
            follower.stop();
            apply.join().expect("apply thread").expect("apply loop");
        });
        drop(follower);

        // The follower is down while the leader appends `writes` edits.
        for round in 0..writes {
            leader
                .call(Request::AddDocument { text: fig13_write_document(round) })
                .expect("fig13 leader write");
        }
        let end = leader.replication_hub().expect("replicating leader").position();
        point.log_records = end.seq;

        // Second life: reconnect and stream exactly the missed chunks.
        let follower = open_follower();
        let started = std::time::Instant::now();
        std::thread::scope(|inner| {
            let apply = inner.spawn(|| follower.run());
            fig13_await_catchup(&follower, end);
            point.catchup = started.elapsed();
            follower.stop();
            apply.join().expect("apply thread").expect("apply loop");
        });
        point.converged = leader.session().catalog().snapshot().to_document_string()
            == follower.catalog_snapshot().to_document_string();

        let closer = Client::connect(addr).expect("connect for shutdown");
        closer.call(Request::Shutdown).expect("shutdown accepted");
    });
    fig13_cleanup(&leader_file);
    fig13_cleanup(&follower_file);
    point
}

/// Run the catch-up half of Figure 13: for each log length, a follower
/// sits out that many leader writes and the time from its restart to
/// byte-identical convergence is measured.
pub fn replication_catchup_experiment(scale: Scale) -> Vec<ReplicationCatchupPoint> {
    replication_log_lengths(scale).into_iter().map(replication_catchup_run).collect()
}

/// Serve the fixed read corpus over one leader plus `followers` converged
/// replicas and return the rendered per-request results plus the point.
///
/// The client side presents `clients` connections at *every* point
/// (round-robin over the endpoints) and each endpoint runs a single CPU
/// worker, so demand is constant and serving capacity is the only
/// variable: added followers are added capacity, and on multi-core
/// hardware throughput scales with them. On a loaded or single-core
/// machine the wall-clock speedup flattens — the same caveat as the
/// Figure 10/11 scaling columns — which is why the trajectory records the
/// rate as volatile and only the correctness fields exactly.
fn replication_read_run(
    followers: usize,
    clients: usize,
    requests: &[(String, String)],
) -> (Vec<String>, ReplicationReadPoint) {
    use mapcomp_service::{Client, EventServer, Follower, ReadOnlyService, Request, Response};

    let (leader, leader_file) = fig13_leader(&format!("reads_leader_{followers}"));
    let leader_server = EventServer::bind("127.0.0.1:0").expect("bind a loopback port");
    let leader_addr = leader_server.local_addr().expect("bound address").to_string();
    let follower_files: Vec<std::path::PathBuf> = (0..followers)
        .map(|index| {
            std::env::temp_dir().join(format!(
                "mapcomp_fig13_reads_follower_{followers}_{index}_{}.doc",
                std::process::id()
            ))
        })
        .collect();
    for file in &follower_files {
        fig13_cleanup(file);
    }
    // Everything scoped threads borrow must outlive the scope, so the
    // follower stack is built up front (`Follower::open` does not dial).
    let follower_handles: Vec<Follower> = follower_files
        .iter()
        .map(|file| {
            Follower::open(
                file,
                leader_addr.as_str(),
                Registry::standard(),
                mapcomp_catalog::SessionConfig::default(),
                2,
                None,
            )
            .expect("open a fig13 follower")
        })
        .collect();
    let follower_services: Vec<ReadOnlyService> =
        follower_handles.iter().map(Follower::service).collect();
    let follower_servers: Vec<EventServer> = (0..followers)
        .map(|_| EventServer::bind("127.0.0.1:0").expect("bind a follower port"))
        .collect();
    let mut endpoints = vec![leader_addr.clone()];
    for server in &follower_servers {
        endpoints.push(server.local_addr().expect("bound follower address").to_string());
    }
    let mut raw: Vec<(usize, String, bool)> = Vec::with_capacity(requests.len());
    let mut elapsed = Duration::default();
    std::thread::scope(|scope| {
        let (leader_server, leader, leader_addr) = (&leader_server, &leader, leader_addr.as_str());
        let (follower_handles, endpoints) = (&follower_handles, &endpoints);
        scope.spawn(move || leader_server.run(leader, 1).expect("leader server run"));

        let apply_handles: Vec<_> =
            follower_handles.iter().map(|follower| scope.spawn(move || follower.run())).collect();
        for (server, service) in follower_servers.iter().zip(&follower_services) {
            scope.spawn(move || server.run(service, 1).expect("follower server run"));
        }
        let target = leader.replication_hub().expect("replicating leader").position();
        for follower in follower_handles {
            fig13_await_catchup(follower, target);
        }

        // Client phase: the whole corpus, strided across the fixed client
        // connections, round-robin over the endpoints.
        let started = std::time::Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                let endpoint = endpoints[client_index % endpoints.len()].clone();
                scope.spawn(move || {
                    let client = Client::connect(&endpoint).expect("connect to an endpoint");
                    let mut done = Vec::new();
                    let mut index = client_index;
                    while index < requests.len() {
                        let (from, to) = &requests[index];
                        let request = Request::ComposePath { from: from.clone(), to: to.clone() };
                        done.push(match client.call(request) {
                            Ok(Response::Composed(payload)) => (index, payload.document, true),
                            Ok(other) => (index, format!("error: {}", other.kind()), false),
                            Err(error) => (index, format!("error: {error}"), false),
                        });
                        index += clients;
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            raw.extend(handle.join().expect("client thread panicked"));
        }
        elapsed = started.elapsed();

        // Teardown: each follower front end first (shutdown also stops its
        // apply loop), then the leader.
        for (index, endpoint) in endpoints[1..].iter().enumerate() {
            let closer = Client::connect(endpoint).expect("connect for follower shutdown");
            closer.call(Request::Shutdown).expect("follower shutdown accepted");
            follower_handles[index].stop();
        }
        for apply in apply_handles {
            apply.join().expect("apply thread").expect("apply loop");
        }
        let closer = Client::connect(leader_addr).expect("connect for shutdown");
        closer.call(Request::Shutdown).expect("shutdown accepted");
    });
    fig13_cleanup(&leader_file);
    for file in &follower_files {
        fig13_cleanup(file);
    }
    raw.sort_by_key(|(index, _, _)| *index);
    let failures = raw.iter().filter(|(_, _, ok)| !ok).count();
    let rendered: Vec<String> = raw.into_iter().map(|(_, text, _)| text).collect();
    let point = ReplicationReadPoint {
        followers,
        requests: requests.len(),
        failures,
        elapsed,
        results_consistent: true,
    };
    (rendered, point)
}

/// Run the read-scaling half of Figure 13: the same read corpus against
/// the leader alone and against the leader plus each swept follower count,
/// with every point's rendered results checked against the leader-only
/// baseline.
pub fn replication_read_experiment(scale: Scale) -> Vec<ReplicationReadPoint> {
    let requests = replication_read_corpus(scale);
    let counts = replication_follower_counts(scale);
    // Constant demand at every point: two connections per endpoint of the
    // *largest* configuration, so the leader-only baseline is saturated
    // rather than client-starved.
    let clients = 2 * (1 + counts.iter().copied().max().unwrap_or(0));
    let mut reference: Option<Vec<String>> = None;
    counts
        .into_iter()
        .map(|followers| {
            let (rendered, mut point) = replication_read_run(followers, clients, &requests);
            point.results_consistent = match &reference {
                Some(reference) => *reference == rendered,
                None => {
                    reference = Some(rendered);
                    true
                }
            };
            point
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 14 (new experiment): differential chase — update cost vs. re-chase
// ---------------------------------------------------------------------------

/// One point of the Figure 14 differential-maintenance experiment: a
/// constant-size signed batch applied incrementally to a maintained target,
/// against a full re-chase over the same post-update source.
#[derive(Debug, Clone)]
pub struct DifferentialUpdatePoint {
    /// Source rows in the instance.
    pub size: usize,
    /// Copy-chain depth.
    pub depth: usize,
    /// Updates in the applied batch (constant across the sweep).
    pub batch: usize,
    /// Binding rows charged by the incremental batch.
    pub delta_work: usize,
    /// Binding rows charged by the full re-chase over the updated source.
    pub rebuild_work: usize,
    /// Wall-clock time of the incremental batch.
    pub delta_time: Duration,
    /// Wall-clock time of the full re-chase.
    pub rebuild_time: Duration,
    /// Did the batch fall back to a full recompute? (Must be false: the
    /// scenario is plannable and non-recursive.)
    pub fallback: bool,
    /// Does the maintained target render byte-identically to the re-chase?
    pub results_identical: bool,
}

impl DifferentialUpdatePoint {
    /// Full re-chase cost over incremental cost (higher is better).
    pub fn work_ratio(&self) -> f64 {
        self.rebuild_work as f64 / self.delta_work.max(1) as f64
    }
}

/// Build the Figure 14 scenario: a source relation copied through a chain of
/// `depth` target-to-target inclusions — the same worst-case round structure
/// as Figure 9, restricted to the plannable, non-recursive fragment so every
/// batch stays on the incremental path.
#[allow(clippy::type_complexity)]
pub fn differential_scenario(
    size: usize,
    depth: usize,
) -> (
    Vec<mapcomp_algebra::Constraint>,
    mapcomp_algebra::Signature,
    mapcomp_algebra::Signature,
    mapcomp_algebra::Instance,
) {
    use mapcomp_algebra::{parse_constraints, Instance, Signature, Value};

    let mut arities: Vec<(String, usize)> = vec![("R".to_string(), 2)];
    for link in 0..=depth {
        arities.push((format!("T{link}"), 2));
    }
    let full = Signature::from_arities(arities.clone());
    let target = Signature::from_arities(arities.iter().filter(|(name, _)| name != "R").cloned());

    // Rules listed against the data-flow direction, as in Figure 9: each
    // full-chase round unlocks exactly one link.
    let mut text = String::new();
    for link in (0..depth).rev() {
        text.push_str(&format!("T{link} <= T{}; ", link + 1));
    }
    text.push_str("R <= T0");
    let constraints = parse_constraints(&text).expect("scenario parses").into_vec();

    let mut source = Instance::new();
    for i in 0..size as i64 {
        source.insert("R", vec![Value::Int(i), Value::Int(size as i64 + i)]);
    }
    (constraints, full, target, source)
}

/// Run the Figure 14 experiment: at each instance size, apply one
/// constant-size signed batch (two fresh inserts, two deletes of live rows)
/// to a maintained engine, then rebuild from scratch over the same updated
/// source. The work counters are deterministic; the timings are volatile.
pub fn differential_update_experiment(scale: Scale) -> Vec<DifferentialUpdatePoint> {
    use mapcomp_algebra::Value;
    use mapcomp_compose::{DifferentialChase, Update};

    let registry = Registry::standard();
    let depth = chase_depth(scale);
    chase_sizes(scale)
        .into_iter()
        .map(|size| {
            let (constraints, full, target, source) = differential_scenario(size, depth);
            let config = chase_scaling_config(depth);
            let mut engine =
                DifferentialChase::new(&constraints, &full, &target, source, &registry, &config);
            assert!(
                engine.incremental_ready() && !engine.recursive(),
                "the fig14 scenario must stay on the incremental path"
            );
            let updates = vec![
                Update::insert("R", vec![Value::Int(-1), Value::Int(-10)]),
                Update::insert("R", vec![Value::Int(-2), Value::Int(-20)]),
                Update::delete("R", vec![Value::Int(0), Value::Int(size as i64)]),
                Update::delete("R", vec![Value::Int(1), Value::Int(size as i64 + 1)]),
            ];
            let batch = updates.len();
            let started = std::time::Instant::now();
            let report = engine.apply(&updates).expect("the fig14 batch applies");
            let delta_time = started.elapsed();
            let maintained = engine.rendered_target();
            let started = std::time::Instant::now();
            engine.rebuild();
            let rebuild_time = started.elapsed();
            DifferentialUpdatePoint {
                size,
                depth,
                batch,
                delta_work: report.work,
                rebuild_work: engine.chase_work(),
                delta_time,
                rebuild_time,
                fallback: report.fallback,
                results_identical: maintained == engine.rendered_target(),
            }
        })
        .collect()
}

/// Formatting helper: a fixed-width row of cells.
pub fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(cell, width)| format!("{cell:>width$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_editing_experiment_produces_data() {
        let aggregate = editing_experiment(Configuration::NoKeys, Scale::Quick, 100);
        assert_eq!(aggregate.run_times.len(), Scale::Quick.editing_runs());
        assert!(aggregate.overall_fraction > 0.3, "fraction {}", aggregate.overall_fraction);
        assert!(!aggregate.success.is_empty());
        // Fractions are well-formed probabilities.
        for kind in PrimitiveKind::ALL {
            if let Some(fraction) = aggregate.fraction(kind) {
                assert!((0.0..=1.0).contains(&fraction), "{kind}: {fraction}");
            }
        }
        assert!(aggregate.median_run_seconds() >= 0.0);
    }

    #[test]
    fn configurations_have_distinct_labels_and_scenarios() {
        let labels: Vec<&str> = Configuration::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 4);
        let keys = Configuration::Keys.scenario(Scale::Quick, 1);
        assert!(keys.options.keys_enabled);
        let ablated = Configuration::NoRightCompose.scenario(Scale::Quick, 1);
        assert!(!ablated.compose_config.enable_right_compose);
    }

    #[test]
    fn corpus_report_covers_all_problems() {
        let report = corpus_report();
        assert_eq!(report.len(), 22);
        assert!(report.iter().all(|o| o.expectation_met));
        assert!(report.iter().all(|o| o.eliminated <= o.total));
    }

    #[test]
    fn format_row_aligns() {
        let row = format_row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(row, "  a    bb");
    }

    #[test]
    fn chase_scaling_semi_naive_beats_naive() {
        let points = chase_scaling_experiment(Scale::Quick);
        assert_eq!(points.len(), chase_sizes(Scale::Quick).len());
        for point in &points {
            assert!(point.results_agree, "strategies disagree at size {}: {point:?}", point.size);
            assert_eq!(point.rounds, point.depth + 3, "chain + join + fixpoint rounds");
        }
        // The acceptance criterion: ≥ 3x on the largest scenario. The gap is
        // structural (the naive strategy re-materialises every premise and
        // the full T × S product every round), so the margin is wide.
        let largest = points.last().expect("non-empty");
        assert!(
            largest.speedup() >= 3.0,
            "semi-naive speedup at size {} is only {:.2}x (naive {:?}, semi-naive {:?})",
            largest.size,
            largest.speedup(),
            largest.naive_time,
            largest.semi_time
        );
    }

    #[test]
    fn semi_naive_frontier_indexes_each_live_row_exactly_once() {
        // Regression guard for the persistent frontier index: one index
        // insert per live tuple of every plan-read relation for the *whole
        // run* — R and S sources plus the depth+1 chain relations, each
        // `size` rows (J is write-only and never indexed). The per-round
        // snapshot clone this replaced cost `rounds × |source ∪ target|`,
        // i.e. this number times the round count.
        let registry = Registry::standard();
        let depth = chase_depth(Scale::Quick);
        for size in chase_sizes(Scale::Quick) {
            let (constraints, full, target, source) = chase_scenario(size, depth);
            let config = chase_scaling_config(depth).with_strategy(ChaseStrategy::SemiNaive);
            let result = mapcomp_compose::exchange(
                &constraints,
                &full,
                &target,
                &source,
                &registry,
                &config,
            );
            assert!(result.converged && result.skipped.is_empty());
            assert_eq!(
                result.frontier_rows,
                (depth + 3) * size,
                "size {size}: per-round allocation must not scale with the round count"
            );
        }
    }

    #[test]
    fn differential_update_cost_is_sublinear_in_instance_size() {
        let points = differential_update_experiment(Scale::Quick);
        assert_eq!(points.len(), chase_sizes(Scale::Quick).len());
        for point in &points {
            assert!(!point.fallback, "size {}: the batch must stay incremental", point.size);
            assert!(
                point.results_identical,
                "size {}: maintained target diverged from the re-chase",
                point.size
            );
            assert!(point.delta_work > 0 && point.rebuild_work > 0);
        }
        let (first, last) = (points.first().unwrap(), points.last().unwrap());
        let growth = last.size as f64 / first.size as f64;
        assert!(growth >= 8.0, "the sweep must span >= 8x instance growth, got {growth}x");
        // The acceptance criterion: a constant-size batch costs the same
        // regardless of instance size, while the re-chase scales with it.
        let delta_growth = last.delta_work as f64 / first.delta_work.max(1) as f64;
        assert!(
            delta_growth < growth / 2.0,
            "incremental batch cost must be sublinear over {growth}x growth, got {delta_growth:.2}x \
             ({} -> {} work)",
            first.delta_work,
            last.delta_work
        );
        let rebuild_growth = last.rebuild_work as f64 / first.rebuild_work.max(1) as f64;
        assert!(
            rebuild_growth > growth / 2.0,
            "the full re-chase baseline must scale with the instance, got {rebuild_growth:.2}x"
        );
        assert!(
            last.work_ratio() >= 8.0,
            "at size {} the re-chase must cost >= 8x the batch, got {:.1}x",
            last.size,
            last.work_ratio()
        );
    }

    #[test]
    fn concurrent_sessions_are_correct_and_scale_with_cores() {
        let points = concurrent_sessions_experiment(Scale::Quick);
        assert_eq!(points.len(), concurrent_workers(Scale::Quick).len());
        for point in &points {
            assert_eq!(point.failures, 0, "workers {}: requests failed", point.workers);
            assert!(
                point.results_consistent,
                "workers {}: composed content diverged from the single-worker run",
                point.workers
            );
            assert!(point.requests > 100, "the corpus must be big enough to measure");
        }
    }

    /// The acceptance criterion — throughput scaling > 2x from 1 to 4
    /// workers — is a wall-clock statement about *idle* parallel hardware:
    /// inside a loaded `cargo test` run the sibling test threads contend
    /// with the workers and the ratio flakes, so this is `#[ignore]`d from
    /// the default suite. Run it alone on an idle ≥ 4-core machine
    /// (`cargo test -p mapcomp-bench --release -- --ignored`), or read the
    /// same numbers off `figures fig10`, which CI smokes in release mode.
    #[test]
    #[ignore = "wall-clock scaling assertion; run alone on an idle >=4-core machine"]
    fn concurrent_sessions_scale_beyond_2x_on_4_workers() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cores < 4 {
            eprintln!("skipping: only {cores} core(s) available");
            return;
        }
        let points = concurrent_sessions_experiment(Scale::Quick);
        let t1 = points.iter().find(|p| p.workers == 1).expect("1-worker point");
        let t4 = points.iter().find(|p| p.workers == 4).expect("4-worker point");
        let scaling = t4.throughput() / t1.throughput();
        assert!(
            scaling > 2.0,
            "throughput must scale > 2x from 1 to 4 workers on {cores} cores, got {scaling:.2}x \
             ({:.1} vs {:.1} req/s)",
            t1.throughput(),
            t4.throughput()
        );
    }

    #[test]
    fn service_throughput_matches_in_process_results() {
        let points = service_throughput_experiment(Scale::Smoke);
        assert_eq!(points.len(), service_workers(Scale::Smoke).len());
        for point in &points {
            assert_eq!(point.failures, 0, "workers {}: requests failed", point.workers);
            assert!(
                point.results_consistent,
                "workers {}: composed content diverged from the single-worker run",
                point.workers
            );
            assert!(point.requests > 0);
        }
    }

    #[test]
    fn persistence_cost_is_flat_incremental_and_linear_on_rewrite() {
        let points = persistence_experiment(Scale::Smoke);
        assert_eq!(points.len(), persistence_sizes(Scale::Smoke).len());
        for point in &points {
            assert!(
                point.recovered_identical,
                "size {}: kill-and-restart recovery diverged",
                point.mappings
            );
            assert!(point.incremental_bytes > 0, "incremental requests must append something");
        }
        let (first, last) = (points.first().unwrap(), points.last().unwrap());
        let growth = last.mappings as f64 / first.mappings as f64;
        assert!(growth >= 16.0, "the sweep must span >= 16x catalog growth, got {growth}x");
        // Incremental: per-request bytes flat in catalog size (the only
        // drift is schema-name digit width inside the appended entry).
        let incremental_ratio = last.incremental_bytes as f64 / first.incremental_bytes as f64;
        assert!(
            incremental_ratio < 2.0,
            "incremental per-request bytes must stay flat over {growth}x growth, got \
             {incremental_ratio:.2}x ({} -> {} bytes)",
            first.incremental_bytes,
            last.incremental_bytes
        );
        // Full rewrite: per-request bytes grow with the catalog.
        let rewrite_ratio = last.rewrite_bytes as f64 / first.rewrite_bytes as f64;
        assert!(
            rewrite_ratio > 4.0,
            "full-rewrite per-request bytes must grow with the catalog over {growth}x growth, \
             got {rewrite_ratio:.2}x ({} -> {} bytes)",
            first.rewrite_bytes,
            last.rewrite_bytes
        );
        // And at scale the incremental path writes far less per request.
        assert!(last.incremental_bytes * 4 < last.rewrite_bytes);
    }

    #[test]
    fn replication_catchup_converges_at_every_log_length() {
        let points = replication_catchup_experiment(Scale::Smoke);
        assert_eq!(points.len(), replication_log_lengths(Scale::Smoke).len());
        for point in &points {
            assert!(point.converged, "writes {}: follower diverged after catch-up", point.writes);
            assert!(
                point.log_records >= point.writes as u64,
                "writes {}: only {} log records — every write must append at least one",
                point.writes,
                point.log_records
            );
        }
    }

    #[test]
    fn chain_cache_experiment_shows_incremental_win() {
        let points = chain_cache_experiment(Scale::Quick, 4242);
        assert!(!points.is_empty());
        for point in &points {
            assert_eq!(point.cold_calls, point.chain_len - 1);
            assert_eq!(point.warm_calls, 0, "unedited recompose must be free");
            assert!(
                point.incremental_calls < point.cold_calls || point.chain_len <= 2,
                "len {}: incremental {} vs cold {}",
                point.chain_len,
                point.incremental_calls,
                point.cold_calls
            );
        }
    }
}
