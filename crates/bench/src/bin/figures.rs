//! Regenerate the figures of the paper's evaluation section as text tables.
//!
//! Usage:
//!
//! ```text
//! figures [--paper | --smoke] [fig2] [fig3] [fig4] [fig5] [fig6] [fig7] [fig8] [fig9]
//!         [fig10] [fig11] [fig12] [corpus] [claims] [all]
//! ```
//!
//! Without arguments every figure is produced at the quick scale; `--paper`
//! switches to the run counts used in the paper (much slower), `--smoke` to
//! tiny sizes (CI uses this to keep every experiment path exercised).

use std::time::Instant;

use mapcomp_bench::{
    chain_cache_experiment, chase_scaling_experiment, concurrent_sessions_experiment,
    corpus_report, edit_count_sweep, editing_experiment, format_row, inclusion_sweep,
    persistence_experiment, schema_size_sweep, service_throughput_experiment, Configuration, Scale,
    FIGURE5_PRIMITIVES,
};
use mapcomp_compose::ComposeConfig;
use mapcomp_evolution::{run_editing, PrimitiveKind, ScenarioConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Quick
    };
    let requested: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| *a != "--paper" && *a != "--smoke").collect();
    let want = |name: &str| {
        requested.is_empty() || requested.contains(&name) || requested.contains(&"all")
    };

    println!("mapping-composition experiment harness (scale: {scale:?})");
    println!("=========================================================");

    let started = Instant::now();
    if want("fig2") || want("fig3") || want("fig4") {
        figures_2_3_4(scale);
    }
    if want("fig5") {
        figure_5(scale);
    }
    if want("fig6") {
        figure_6(scale);
    }
    if want("fig7") {
        figure_7(scale);
    }
    if want("fig8") {
        figure_8(scale);
    }
    if want("fig9") {
        figure_9(scale);
    }
    if want("fig10") {
        figure_10(scale);
    }
    if want("fig11") {
        figure_11(scale);
    }
    if want("fig12") {
        figure_12(scale);
    }
    if want("corpus") {
        corpus_table();
    }
    if want("claims") {
        claims(scale);
    }
    println!("\ntotal harness time: {:.1}s", started.elapsed().as_secs_f64());
}

fn figures_2_3_4(scale: Scale) {
    println!("\nFigure 2: fraction of symbols eliminated per primitive");
    println!("Figure 3: composition time per edit (ms) per primitive");
    let configurations = Configuration::ALL;
    let aggregates: Vec<_> = configurations
        .iter()
        .map(|configuration| (configuration, editing_experiment(*configuration, scale, 1000)))
        .collect();

    let primitives: Vec<PrimitiveKind> =
        PrimitiveKind::ALL.iter().copied().filter(|kind| kind.consumes_input()).collect();

    // Figure 2 table.
    let widths = vec![6, 10, 10, 14, 18];
    let mut header = vec!["prim".to_string()];
    header.extend(configurations.iter().map(|c| c.label().to_string()));
    println!("\n[Figure 2] fraction of symbols eliminated");
    println!("{}", format_row(&header, &widths));
    for kind in &primitives {
        let mut row = vec![kind.label().to_string()];
        for (_, aggregate) in &aggregates {
            row.push(match aggregate.fraction(*kind) {
                Some(fraction) => format!("{fraction:.2}"),
                None => "-".to_string(),
            });
        }
        println!("{}", format_row(&row, &widths));
    }
    let mut total_row = vec!["TOTAL".to_string()];
    for (_, aggregate) in &aggregates {
        total_row.push(format!("{:.2}", aggregate.overall_fraction));
    }
    println!("{}", format_row(&total_row, &widths));

    // Figure 3 table.
    println!("\n[Figure 3] time per edit (ms)");
    println!("{}", format_row(&header, &widths));
    for kind in &primitives {
        let mut row = vec![kind.label().to_string()];
        for (_, aggregate) in &aggregates {
            row.push(match aggregate.mean_millis(*kind) {
                Some(ms) => format!("{ms:.2}"),
                None => "-".to_string(),
            });
        }
        println!("{}", format_row(&row, &widths));
    }
    let mut median_row = vec!["median/run(s)".to_string()];
    for (_, aggregate) in &aggregates {
        median_row.push(format!("{:.3}", aggregate.median_run_seconds()));
    }
    println!("{}", format_row(&median_row, &[14, 10, 10, 14, 18]));

    // Figure 4: sorted per-run times for the `no keys` configuration.
    println!("\n[Figure 4] sorted per-run composition time (s), configuration `no keys`");
    let mut times: Vec<f64> = aggregates
        .iter()
        .find(|(c, _)| **c == Configuration::NoKeys)
        .map(|(_, a)| a.run_times.iter().map(|d| d.as_secs_f64()).collect())
        .unwrap_or_default();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for (index, time) in times.iter().enumerate() {
        println!("  run {:>3}: {:.4}s", index + 1, time);
    }
}

fn figure_5(scale: Scale) {
    println!("\n[Figure 5] increasing proportion of inclusion (Sub/Sup) edits");
    let points = inclusion_sweep(scale, 3000);
    let mut header = vec!["prop".to_string(), "total".to_string()];
    header.extend(FIGURE5_PRIMITIVES.iter().map(|k| k.label().to_string()));
    header.push("time(s)".to_string());
    let widths = vec![6, 7, 7, 7, 7, 7, 9];
    println!("{}", format_row(&header, &widths));
    for point in points {
        let mut row =
            vec![format!("{:.2}", point.proportion), format!("{:.2}", point.total_fraction)];
        for kind in FIGURE5_PRIMITIVES {
            row.push(
                point
                    .per_primitive
                    .get(&kind)
                    .map(|f| format!("{f:.2}"))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        row.push(format!("{:.3}", point.mean_time_seconds));
        println!("{}", format_row(&row, &widths));
    }
}

fn figure_6(scale: Scale) {
    println!("\n[Figure 6] reconciliation: fraction eliminated vs. intermediate schema size");
    let series = schema_size_sweep(scale, 6000);
    let labels: Vec<&str> = series.keys().copied().collect();
    let mut header = vec!["size".to_string()];
    header.extend(labels.iter().map(|l| l.to_string()));
    let widths = vec![6, 10, 20, 18];
    println!("{}", format_row(&header, &widths));
    if let Some(first) = series.values().next() {
        for (index, point) in first.iter().enumerate() {
            let mut row = vec![point.x.to_string()];
            for label in &labels {
                row.push(format!("{:.2}", series[label][index].fraction));
            }
            println!("{}", format_row(&row, &widths));
        }
    }
}

fn figure_7(scale: Scale) {
    println!("\n[Figure 7] reconciliation: varying the number of edits");
    let points = edit_count_sweep(scale, 7000);
    let widths = vec![7, 10, 10];
    println!(
        "{}",
        format_row(&["edits".to_string(), "fraction".to_string(), "time(s)".to_string()], &widths)
    );
    for point in points {
        println!(
            "{}",
            format_row(
                &[
                    point.x.to_string(),
                    format!("{:.2}", point.fraction),
                    format!("{:.3}", point.time_seconds)
                ],
                &widths
            )
        );
    }
}

fn figure_8(scale: Scale) {
    println!("\n[Figure 8] catalog chains: incremental vs. cold recomposition after one edit");
    let points = chain_cache_experiment(scale, 8000);
    let widths = vec![7, 11, 11, 12, 12, 9];
    println!(
        "{}",
        format_row(
            &[
                "links".to_string(),
                "cold calls".to_string(),
                "incr calls".to_string(),
                "cold (ms)".to_string(),
                "incr (ms)".to_string(),
                "speedup".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        let cold_ms = point.cold_time.as_secs_f64() * 1000.0;
        let incr_ms = point.incremental_time.as_secs_f64() * 1000.0;
        let speedup =
            if incr_ms > 0.0 { format!("{:.1}x", cold_ms / incr_ms) } else { "-".to_string() };
        println!(
            "{}",
            format_row(
                &[
                    point.chain_len.to_string(),
                    point.cold_calls.to_string(),
                    point.incremental_calls.to_string(),
                    format!("{cold_ms:.2}"),
                    format!("{incr_ms:.2}"),
                    speedup,
                ],
                &widths
            )
        );
    }
}

fn figure_9(scale: Scale) {
    println!("\n[Figure 9] chase scaling: naive vs. semi-naive data exchange");
    let points = chase_scaling_experiment(scale);
    let widths = vec![7, 7, 8, 12, 12, 9, 7];
    println!(
        "{}",
        format_row(
            &[
                "tuples".to_string(),
                "depth".to_string(),
                "rounds".to_string(),
                "naive (ms)".to_string(),
                "semi (ms)".to_string(),
                "speedup".to_string(),
                "equal".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        println!(
            "{}",
            format_row(
                &[
                    point.size.to_string(),
                    point.depth.to_string(),
                    point.rounds.to_string(),
                    format!("{:.2}", point.naive_time.as_secs_f64() * 1000.0),
                    format!("{:.2}", point.semi_time.as_secs_f64() * 1000.0),
                    format!("{:.1}x", point.speedup()),
                    if point.results_agree { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
    }
}

fn figure_10(scale: Scale) {
    println!("\n[Figure 10] concurrent sessions: batch-composition throughput vs. worker count");
    let points = concurrent_sessions_experiment(scale);
    let baseline = points.first().map(|point| point.throughput());
    let widths = vec![8, 9, 10, 11, 9, 7];
    println!(
        "{}",
        format_row(
            &[
                "workers".to_string(),
                "requests".to_string(),
                "time (ms)".to_string(),
                "req/s".to_string(),
                "speedup".to_string(),
                "equal".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        assert_eq!(point.failures, 0, "fig10 batch requests must all succeed");
        let speedup = baseline
            .map(|base| format!("{:.1}x", point.throughput() / base))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{}",
            format_row(
                &[
                    point.workers.to_string(),
                    point.requests.to_string(),
                    format!("{:.2}", point.elapsed.as_secs_f64() * 1000.0),
                    format!("{:.0}", point.throughput()),
                    speedup,
                    if point.results_consistent { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
    }
}

fn figure_11(scale: Scale) {
    println!(
        "\n[Figure 11] service layer: request throughput over loopback TCP vs. server workers"
    );
    let points = service_throughput_experiment(scale);
    let baseline = points.first().map(|point| point.throughput());
    let widths = vec![8, 9, 10, 11, 9, 7];
    println!(
        "{}",
        format_row(
            &[
                "workers".to_string(),
                "requests".to_string(),
                "time (ms)".to_string(),
                "req/s".to_string(),
                "speedup".to_string(),
                "equal".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        assert_eq!(point.failures, 0, "fig11 service requests must all succeed");
        let speedup = baseline
            .map(|base| format!("{:.1}x", point.throughput() / base))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{}",
            format_row(
                &[
                    point.workers.to_string(),
                    point.requests.to_string(),
                    format!("{:.2}", point.elapsed.as_secs_f64() * 1000.0),
                    format!("{:.0}", point.throughput()),
                    speedup,
                    if point.results_consistent { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
    }
}

fn figure_12(scale: Scale) {
    println!(
        "\n[Figure 12] persistence: bytes written per state-changing request vs. catalog size"
    );
    let points = persistence_experiment(scale);
    let widths = vec![9, 12, 14, 11, 13, 10];
    println!(
        "{}",
        format_row(
            &[
                "mappings".to_string(),
                "incr B/req".to_string(),
                "rewrite B/req".to_string(),
                "incr (ms)".to_string(),
                "rewrite (ms)".to_string(),
                "recovered".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        assert!(point.recovered_identical, "fig12 kill-and-restart recovery must round-trip");
        println!(
            "{}",
            format_row(
                &[
                    point.mappings.to_string(),
                    point.incremental_bytes.to_string(),
                    point.rewrite_bytes.to_string(),
                    format!("{:.3}", point.incremental_time.as_secs_f64() * 1000.0),
                    format!("{:.3}", point.rewrite_time.as_secs_f64() * 1000.0),
                    "yes".to_string(),
                ],
                &widths
            )
        );
    }
}

fn corpus_table() {
    println!("\n[Literature suite] the 22 composition problems of §4");
    let widths = vec![32, 12, 8, 10];
    println!(
        "{}",
        format_row(
            &[
                "problem".to_string(),
                "eliminated".to_string(),
                "ok".to_string(),
                "time(ms)".to_string()
            ],
            &widths
        )
    );
    for outcome in corpus_report() {
        println!(
            "{}",
            format_row(
                &[
                    outcome.id.to_string(),
                    format!("{}/{}", outcome.eliminated, outcome.total),
                    if outcome.expectation_met { "yes" } else { "NO" }.to_string(),
                    format!("{:.2}", outcome.time.as_secs_f64() * 1000.0)
                ],
                &widths
            )
        );
    }
}

fn claims(scale: Scale) {
    println!("\n[Key claims] blow-up aborts, leftover recovery, order invariance");
    // Blow-up aborts and leftover recovery over one batch of editing runs.
    let mut edits_total = 0usize;
    let mut leftovers_recovered = 0usize;
    let mut pending_created = 0usize;
    for seed in 0..scale.editing_runs() as u64 {
        let run = run_editing(&ScenarioConfig {
            schema_size: 30,
            edits: scale.edits_per_run(),
            seed: 9000 + seed,
            ..ScenarioConfig::default()
        });
        edits_total += run.records.len();
        leftovers_recovered += run.records.iter().map(|r| r.leftover_eliminated).sum::<usize>();
        pending_created +=
            run.records.iter().filter(|r| r.consumed_intermediate && !r.eliminated_now).count();
    }
    println!("  edits simulated: {edits_total}");
    println!("  symbols left pending at their own edit: {pending_created}");
    println!("  pending symbols recovered by later compositions: {leftovers_recovered}");

    // Order invariance on the literature suite: eliminate the σ2 symbols in
    // the default order and in the reversed order and compare how many go
    // (the paper reports the algorithm appears order-invariant on its data
    // sets; the corpus contains one deliberate counterexample).
    let registry = mapcomp_compose::Registry::standard();
    let mut same = 0usize;
    let mut different = 0usize;
    for problem in mapcomp_corpus::problems() {
        let task = problem.task().expect("parses");
        let forward = mapcomp_compose::compose(&task, &registry, &ComposeConfig::default())
            .expect("composes");
        let mut reversed_order = task.elimination_order();
        reversed_order.reverse();
        let reversed = mapcomp_compose::compose(
            &task,
            &registry,
            &ComposeConfig { symbol_order: Some(reversed_order), ..ComposeConfig::default() },
        )
        .expect("composes");
        if forward.eliminated.len() == reversed.eliminated.len() {
            same += 1;
        } else {
            different += 1;
        }
    }
    println!(
        "  order invariance on the literature suite: {same} problems eliminate the same number of symbols under both orders, {different} differ"
    );
}
