//! Regenerate the figures of the paper's evaluation section as text tables.
//!
//! Usage:
//!
//! ```text
//! figures [--paper | --smoke] [fig2] [fig3] [fig4] [fig5] [fig6] [fig7] [fig8] [fig9]
//!         [fig10] [fig11] [fig12] [fig13] [fig14] [corpus] [claims] [all]
//! figures --check BENCH_<fig>.json [BENCH_<fig>.json ...]
//! ```
//!
//! Without arguments every figure is produced at the quick scale; `--paper`
//! switches to the run counts used in the paper (much slower), `--smoke` to
//! tiny sizes (CI uses this to keep every experiment path exercised).
//!
//! Every figure run also writes its points as `BENCH_<figure>.json` at the
//! repository root — the committed perf trajectory. `--check` re-runs each
//! named file's figure at the file's *recorded* scale and diffs the fresh
//! points against it (seeded counts/fractions/bytes exactly, timing fields
//! presence-only; see `mapcomp_bench::trajectory`), exiting non-zero on any
//! drift. It never overwrites the files it checks.

use std::path::Path;
use std::time::Instant;

use mapcomp_bench::{
    chain_cache_experiment, chase_scaling_experiment, concurrent_sessions_experiment,
    connection_sweep_experiment, corpus_report, differential_update_experiment, edit_count_sweep,
    editing_experiment, format_row, inclusion_sweep, persistence_experiment,
    replication_catchup_experiment, replication_read_experiment, schema_size_sweep,
    service_throughput_experiment,
    trajectory::{parse_scale, BenchDoc, BenchValue},
    Configuration, ReplicationReadPoint, Scale, FIGURE5_PRIMITIVES,
};
use mapcomp_compose::ComposeConfig;
use mapcomp_evolution::{run_editing, PrimitiveKind, ScenarioConfig};

/// Run one figure's experiment, printing its table and returning its
/// trajectory document (`None` for `claims`, which asserts instead of
/// measuring).
fn run_figure(name: &str, scale: Scale) -> Option<BenchDoc> {
    match name {
        "fig2" | "fig3" | "fig4" => Some(figures_2_3_4(scale)),
        "fig5" => Some(figure_5(scale)),
        "fig6" => Some(figure_6(scale)),
        "fig7" => Some(figure_7(scale)),
        "fig8" => Some(figure_8(scale)),
        "fig9" => Some(figure_9(scale)),
        "fig10" => Some(figure_10(scale)),
        "fig11" => Some(figure_11(scale)),
        "fig12" => Some(figure_12(scale)),
        "fig13" => Some(figure_13(scale)),
        "fig14" => Some(figure_14(scale)),
        "corpus" => Some(corpus_table(scale)),
        _ => None,
    }
}

/// `--check` mode: re-run each file's figure at its recorded scale and
/// diff. Returns process-exit success.
fn check_trajectories(files: &[&str]) -> bool {
    let mut ok = true;
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("check {file}: cannot read: {error}");
                ok = false;
                continue;
            }
        };
        let baseline = match BenchDoc::parse(&text) {
            Ok(doc) => doc,
            Err(error) => {
                eprintln!("check {file}: cannot parse: {error}");
                ok = false;
                continue;
            }
        };
        let Some(scale) = parse_scale(&baseline.scale) else {
            eprintln!("check {file}: unknown scale `{}`", baseline.scale);
            ok = false;
            continue;
        };
        println!("\n--- checking {file} ({} at {} scale) ---", baseline.figure, baseline.scale);
        let Some(fresh) = run_figure(&baseline.figure, scale) else {
            eprintln!("check {file}: unknown figure `{}`", baseline.figure);
            ok = false;
            continue;
        };
        let problems = baseline.diff(&fresh);
        if problems.is_empty() {
            println!("check {file}: OK ({} points)", baseline.points.len());
        } else {
            ok = false;
            eprintln!("check {file}: {} mismatches", problems.len());
            for problem in problems {
                eprintln!("  {problem}");
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--check") {
        let files: Vec<&str> = args[1..].iter().map(String::as_str).collect();
        if files.is_empty() {
            eprintln!("usage: figures --check BENCH_<fig>.json [...]");
            std::process::exit(2);
        }
        if !check_trajectories(&files) {
            std::process::exit(1);
        }
        return;
    }
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Quick
    };
    let requested: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| *a != "--paper" && *a != "--smoke").collect();
    let want = |name: &str| {
        requested.is_empty() || requested.contains(&name) || requested.contains(&"all")
    };

    println!("mapping-composition experiment harness (scale: {scale:?})");
    println!("=========================================================");

    // The committed trajectory lives at the repository root, two levels up
    // from this crate.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut written = Vec::new();
    let mut emit = |doc: BenchDoc| match doc.write_to(&repo_root) {
        Ok(path) => written.push(path),
        Err(error) => eprintln!("warning: cannot write BENCH_{}.json: {error}", doc.figure),
    };

    let started = Instant::now();
    if want("fig2") || want("fig3") || want("fig4") {
        emit(figures_2_3_4(scale));
    }
    if want("fig5") {
        emit(figure_5(scale));
    }
    if want("fig6") {
        emit(figure_6(scale));
    }
    if want("fig7") {
        emit(figure_7(scale));
    }
    if want("fig8") {
        emit(figure_8(scale));
    }
    if want("fig9") {
        emit(figure_9(scale));
    }
    if want("fig10") {
        emit(figure_10(scale));
    }
    if want("fig11") {
        emit(figure_11(scale));
    }
    if want("fig12") {
        emit(figure_12(scale));
    }
    if want("fig13") {
        emit(figure_13(scale));
    }
    if want("fig14") {
        emit(figure_14(scale));
    }
    if want("corpus") {
        emit(corpus_table(scale));
    }
    if want("claims") {
        claims(scale);
    }
    for path in &written {
        println!("trajectory  : wrote {}", path.display());
    }
    println!("\ntotal harness time: {:.1}s", started.elapsed().as_secs_f64());
}

fn figures_2_3_4(scale: Scale) -> BenchDoc {
    println!("\nFigure 2: fraction of symbols eliminated per primitive");
    println!("Figure 3: composition time per edit (ms) per primitive");
    let configurations = Configuration::ALL;
    let aggregates: Vec<_> = configurations
        .iter()
        .map(|configuration| (configuration, editing_experiment(*configuration, scale, 1000)))
        .collect();

    let primitives: Vec<PrimitiveKind> =
        PrimitiveKind::ALL.iter().copied().filter(|kind| kind.consumes_input()).collect();

    // Figure 2 table.
    let widths = vec![6, 10, 10, 14, 18];
    let mut header = vec!["prim".to_string()];
    header.extend(configurations.iter().map(|c| c.label().to_string()));
    println!("\n[Figure 2] fraction of symbols eliminated");
    println!("{}", format_row(&header, &widths));
    for kind in &primitives {
        let mut row = vec![kind.label().to_string()];
        for (_, aggregate) in &aggregates {
            row.push(match aggregate.fraction(*kind) {
                Some(fraction) => format!("{fraction:.2}"),
                None => "-".to_string(),
            });
        }
        println!("{}", format_row(&row, &widths));
    }
    let mut total_row = vec!["TOTAL".to_string()];
    for (_, aggregate) in &aggregates {
        total_row.push(format!("{:.2}", aggregate.overall_fraction));
    }
    println!("{}", format_row(&total_row, &widths));

    // The trajectory records the seeded elimination fractions (Figure 2);
    // the per-edit times of Figures 3/4 are machine noise, not trajectory.
    let mut doc = BenchDoc::new("fig2", scale);
    for (configuration, aggregate) in &aggregates {
        for kind in &primitives {
            let Some(fraction) = aggregate.fraction(*kind) else { continue };
            doc.push_point(vec![
                ("configuration", BenchValue::Str(configuration.label().to_string())),
                ("primitive", BenchValue::Str(kind.label().to_string())),
                ("fraction", BenchValue::F64(fraction)),
            ]);
        }
        doc.push_point(vec![
            ("configuration", BenchValue::Str(configuration.label().to_string())),
            ("primitive", BenchValue::Str("TOTAL".to_string())),
            ("fraction", BenchValue::F64(aggregate.overall_fraction)),
        ]);
    }

    // Figure 3 table.
    println!("\n[Figure 3] time per edit (ms)");
    println!("{}", format_row(&header, &widths));
    for kind in &primitives {
        let mut row = vec![kind.label().to_string()];
        for (_, aggregate) in &aggregates {
            row.push(match aggregate.mean_millis(*kind) {
                Some(ms) => format!("{ms:.2}"),
                None => "-".to_string(),
            });
        }
        println!("{}", format_row(&row, &widths));
    }
    let mut median_row = vec!["median/run(s)".to_string()];
    for (_, aggregate) in &aggregates {
        median_row.push(format!("{:.3}", aggregate.median_run_seconds()));
    }
    println!("{}", format_row(&median_row, &[14, 10, 10, 14, 18]));

    // Figure 4: sorted per-run times for the `no keys` configuration.
    println!("\n[Figure 4] sorted per-run composition time (s), configuration `no keys`");
    let mut times: Vec<f64> = aggregates
        .iter()
        .find(|(c, _)| **c == Configuration::NoKeys)
        .map(|(_, a)| a.run_times.iter().map(std::time::Duration::as_secs_f64).collect())
        .unwrap_or_default();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for (index, time) in times.iter().enumerate() {
        println!("  run {:>3}: {:.4}s", index + 1, time);
    }
    doc
}

fn figure_5(scale: Scale) -> BenchDoc {
    println!("\n[Figure 5] increasing proportion of inclusion (Sub/Sup) edits");
    let mut doc = BenchDoc::new("fig5", scale);
    let points = inclusion_sweep(scale, 3000);
    let mut header = vec!["prop".to_string(), "total".to_string()];
    header.extend(FIGURE5_PRIMITIVES.iter().map(|k| k.label().to_string()));
    header.push("time(s)".to_string());
    let widths = vec![6, 7, 7, 7, 7, 7, 9];
    println!("{}", format_row(&header, &widths));
    for point in points {
        let mut row =
            vec![format!("{:.2}", point.proportion), format!("{:.2}", point.total_fraction)];
        for kind in FIGURE5_PRIMITIVES {
            row.push(
                point
                    .per_primitive
                    .get(&kind)
                    .map_or_else(|| "-".to_string(), |f| format!("{f:.2}")),
            );
        }
        row.push(format!("{:.3}", point.mean_time_seconds));
        println!("{}", format_row(&row, &widths));
        let mut fields = vec![
            ("proportion", BenchValue::F64(point.proportion)),
            ("total_fraction", BenchValue::F64(point.total_fraction)),
        ];
        for kind in FIGURE5_PRIMITIVES {
            if let Some(&fraction) = point.per_primitive.get(&kind) {
                fields.push((kind.label(), BenchValue::F64(fraction)));
            }
        }
        fields.push(("mean_time_seconds", BenchValue::F64(point.mean_time_seconds)));
        doc.push_point(fields);
    }
    doc
}

fn figure_6(scale: Scale) -> BenchDoc {
    println!("\n[Figure 6] reconciliation: fraction eliminated vs. intermediate schema size");
    let mut doc = BenchDoc::new("fig6", scale);
    let series = schema_size_sweep(scale, 6000);
    let labels: Vec<&str> = series.keys().copied().collect();
    let mut header = vec!["size".to_string()];
    header.extend(labels.iter().map(std::string::ToString::to_string));
    let widths = vec![6, 10, 20, 18];
    println!("{}", format_row(&header, &widths));
    if let Some(first) = series.values().next() {
        for (index, point) in first.iter().enumerate() {
            let mut row = vec![point.x.to_string()];
            for label in &labels {
                row.push(format!("{:.2}", series[label][index].fraction));
            }
            println!("{}", format_row(&row, &widths));
            let mut fields = vec![("size", BenchValue::U64(point.x as u64))];
            for label in &labels {
                fields.push((*label, BenchValue::F64(series[label][index].fraction)));
            }
            doc.push_point(fields);
        }
    }
    doc
}

fn figure_7(scale: Scale) -> BenchDoc {
    println!("\n[Figure 7] reconciliation: varying the number of edits");
    let mut doc = BenchDoc::new("fig7", scale);
    let points = edit_count_sweep(scale, 7000);
    let widths = vec![7, 10, 10];
    println!(
        "{}",
        format_row(&["edits".to_string(), "fraction".to_string(), "time(s)".to_string()], &widths)
    );
    for point in points {
        println!(
            "{}",
            format_row(
                &[
                    point.x.to_string(),
                    format!("{:.2}", point.fraction),
                    format!("{:.3}", point.time_seconds)
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("edits", BenchValue::U64(point.x as u64)),
            ("fraction", BenchValue::F64(point.fraction)),
            ("time_seconds", BenchValue::F64(point.time_seconds)),
        ]);
    }
    doc
}

fn figure_8(scale: Scale) -> BenchDoc {
    println!("\n[Figure 8] catalog chains: incremental vs. cold recomposition after one edit");
    let mut doc = BenchDoc::new("fig8", scale);
    let points = chain_cache_experiment(scale, 8000);
    let widths = vec![7, 11, 11, 12, 12, 9];
    println!(
        "{}",
        format_row(
            &[
                "links".to_string(),
                "cold calls".to_string(),
                "incr calls".to_string(),
                "cold (ms)".to_string(),
                "incr (ms)".to_string(),
                "speedup".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        let cold_ms = point.cold_time.as_secs_f64() * 1000.0;
        let incr_ms = point.incremental_time.as_secs_f64() * 1000.0;
        let speedup =
            if incr_ms > 0.0 { format!("{:.1}x", cold_ms / incr_ms) } else { "-".to_string() };
        println!(
            "{}",
            format_row(
                &[
                    point.chain_len.to_string(),
                    point.cold_calls.to_string(),
                    point.incremental_calls.to_string(),
                    format!("{cold_ms:.2}"),
                    format!("{incr_ms:.2}"),
                    speedup,
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("links", BenchValue::U64(point.chain_len as u64)),
            ("cold_calls", BenchValue::U64(point.cold_calls as u64)),
            ("incremental_calls", BenchValue::U64(point.incremental_calls as u64)),
            ("cold_ms", BenchValue::F64(cold_ms)),
            ("incremental_ms", BenchValue::F64(incr_ms)),
        ]);
    }
    doc
}

fn figure_9(scale: Scale) -> BenchDoc {
    println!("\n[Figure 9] chase scaling: naive vs. semi-naive data exchange");
    let mut doc = BenchDoc::new("fig9", scale);
    let points = chase_scaling_experiment(scale);
    let widths = vec![7, 7, 8, 12, 12, 9, 7];
    println!(
        "{}",
        format_row(
            &[
                "tuples".to_string(),
                "depth".to_string(),
                "rounds".to_string(),
                "naive (ms)".to_string(),
                "semi (ms)".to_string(),
                "speedup".to_string(),
                "equal".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        println!(
            "{}",
            format_row(
                &[
                    point.size.to_string(),
                    point.depth.to_string(),
                    point.rounds.to_string(),
                    format!("{:.2}", point.naive_time.as_secs_f64() * 1000.0),
                    format!("{:.2}", point.semi_time.as_secs_f64() * 1000.0),
                    format!("{:.1}x", point.speedup()),
                    if point.results_agree { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("tuples", BenchValue::U64(point.size as u64)),
            ("depth", BenchValue::U64(point.depth as u64)),
            ("rounds", BenchValue::U64(point.rounds as u64)),
            ("naive_ms", BenchValue::F64(point.naive_time.as_secs_f64() * 1000.0)),
            ("semi_ms", BenchValue::F64(point.semi_time.as_secs_f64() * 1000.0)),
            ("results_agree", BenchValue::Bool(point.results_agree)),
        ]);
    }
    doc
}

fn figure_10(scale: Scale) -> BenchDoc {
    println!("\n[Figure 10] concurrent sessions: batch-composition throughput vs. worker count");
    let mut doc = BenchDoc::new("fig10", scale);
    let points = concurrent_sessions_experiment(scale);
    let baseline = points.first().map(mapcomp_bench::ConcurrentSessionsPoint::throughput);
    let widths = vec![8, 9, 10, 11, 9, 7];
    println!(
        "{}",
        format_row(
            &[
                "workers".to_string(),
                "requests".to_string(),
                "time (ms)".to_string(),
                "req/s".to_string(),
                "speedup".to_string(),
                "equal".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        assert_eq!(point.failures, 0, "fig10 batch requests must all succeed");
        let speedup = baseline
            .map_or_else(|| "-".to_string(), |base| format!("{:.1}x", point.throughput() / base));
        println!(
            "{}",
            format_row(
                &[
                    point.workers.to_string(),
                    point.requests.to_string(),
                    format!("{:.2}", point.elapsed.as_secs_f64() * 1000.0),
                    format!("{:.0}", point.throughput()),
                    speedup,
                    if point.results_consistent { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("workers", BenchValue::U64(point.workers as u64)),
            ("requests", BenchValue::U64(point.requests as u64)),
            ("failures", BenchValue::U64(point.failures as u64)),
            ("elapsed_ms", BenchValue::F64(point.elapsed.as_secs_f64() * 1000.0)),
            ("req_per_s", BenchValue::F64(point.throughput())),
            ("results_consistent", BenchValue::Bool(point.results_consistent)),
        ]);
    }
    doc
}

fn figure_11(scale: Scale) -> BenchDoc {
    println!(
        "\n[Figure 11] service layer: request throughput over loopback TCP vs. server workers"
    );
    let mut doc = BenchDoc::new("fig11", scale);
    let points = service_throughput_experiment(scale);
    let baseline = points.first().map(mapcomp_bench::ServiceThroughputPoint::throughput);
    let widths = vec![8, 9, 10, 11, 9, 7];
    println!(
        "{}",
        format_row(
            &[
                "workers".to_string(),
                "requests".to_string(),
                "time (ms)".to_string(),
                "req/s".to_string(),
                "speedup".to_string(),
                "equal".to_string(),
            ],
            &widths
        )
    );
    for point in &points {
        assert_eq!(point.failures, 0, "fig11 service requests must all succeed");
        let speedup = baseline
            .map_or_else(|| "-".to_string(), |base| format!("{:.1}x", point.throughput() / base));
        println!(
            "{}",
            format_row(
                &[
                    point.workers.to_string(),
                    point.requests.to_string(),
                    format!("{:.2}", point.elapsed.as_secs_f64() * 1000.0),
                    format!("{:.0}", point.throughput()),
                    speedup,
                    if point.results_consistent { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("workers", BenchValue::U64(point.workers as u64)),
            ("requests", BenchValue::U64(point.requests as u64)),
            ("failures", BenchValue::U64(point.failures as u64)),
            ("elapsed_ms", BenchValue::F64(point.elapsed.as_secs_f64() * 1000.0)),
            ("req_per_s", BenchValue::F64(point.throughput())),
            ("results_consistent", BenchValue::Bool(point.results_consistent)),
        ]);
    }

    // Telemetry overhead: the same experiment with every metric and span
    // update short-circuited by the kill switch. This is the PR's
    // acceptance gauge — instrumentation on the request hot path must stay
    // within noise (~5%) of the uninstrumented baseline. Run in this
    // binary, not the bench lib, so lib tests never race on the global
    // switch.
    let enabled_total: f64 =
        points.iter().map(mapcomp_bench::ServiceThroughputPoint::throughput).sum();
    mapcomp_telemetry::metrics::set_enabled(false);
    let disabled_points = service_throughput_experiment(scale);
    mapcomp_telemetry::metrics::set_enabled(true);
    let disabled_total: f64 =
        disabled_points.iter().map(mapcomp_bench::ServiceThroughputPoint::throughput).sum();
    let overhead_pct = if disabled_total > 0.0 {
        (disabled_total - enabled_total) / disabled_total * 100.0
    } else {
        0.0
    };
    println!(
        "telemetry overhead: {:.0} req/s instrumented vs {:.0} req/s with the kill switch \
         ({overhead_pct:+.1}% overhead; acceptance bound 5%)",
        enabled_total / points.len().max(1) as f64,
        disabled_total / disabled_points.len().max(1) as f64,
    );
    doc.push_point(vec![
        ("comparison", BenchValue::Str("telemetry-overhead".to_string())),
        ("enabled_req_per_s", BenchValue::F64(enabled_total)),
        ("disabled_req_per_s", BenchValue::F64(disabled_total)),
        ("overhead_pct", BenchValue::F64(overhead_pct)),
    ]);

    // Connection sweep: concurrent connections vs. tail latency, event
    // engine against the threaded engine's concurrency ceiling. The event
    // loop must hold every swept connection count open with a fixed
    // 4-thread CPU pool; the threaded engine pins at connections ==
    // workers, so it contributes a single comparison point.
    println!(
        "\nconnection sweep: concurrent connections vs. compose tail latency \
         ({} CPU workers)",
        mapcomp_bench::SWEEP_CPU_WORKERS
    );
    let sweep = connection_sweep_experiment(scale);
    let widths = vec![9, 12, 9, 10, 9, 9, 9];
    println!(
        "{}",
        format_row(
            &[
                "engine".to_string(),
                "connections".to_string(),
                "requests".to_string(),
                "time (ms)".to_string(),
                "p50 (us)".to_string(),
                "p99 (us)".to_string(),
                "failed".to_string(),
            ],
            &widths
        )
    );
    for point in &sweep {
        assert_eq!(point.failures, 0, "fig11 sweep requests must all succeed");
        println!(
            "{}",
            format_row(
                &[
                    point.engine.label().to_string(),
                    point.connections.to_string(),
                    point.requests.to_string(),
                    format!("{:.2}", point.elapsed.as_secs_f64() * 1000.0),
                    format!("{:.0}", point.p50.as_secs_f64() * 1e6),
                    format!("{:.0}", point.p99.as_secs_f64() * 1e6),
                    point.failures.to_string(),
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("engine", BenchValue::Str(point.engine.label().to_string())),
            ("connections", BenchValue::U64(point.connections as u64)),
            ("cpu_workers", BenchValue::U64(point.cpu_workers as u64)),
            ("requests", BenchValue::U64(point.requests as u64)),
            ("failures", BenchValue::U64(point.failures as u64)),
            ("elapsed_ms", BenchValue::F64(point.elapsed.as_secs_f64() * 1000.0)),
            ("p50_us", BenchValue::F64(point.p50.as_secs_f64() * 1e6)),
            ("p99_us", BenchValue::F64(point.p99.as_secs_f64() * 1e6)),
        ]);
    }
    doc
}

fn figure_12(scale: Scale) -> BenchDoc {
    println!(
        "\n[Figure 12] persistence: bytes written per state-changing request vs. catalog size"
    );
    let mut doc = BenchDoc::new("fig12", scale);
    let points = persistence_experiment(scale);
    let widths = vec![9, 12, 14, 11, 13, 10];
    println!(
        "{}",
        format_row(
            &[
                "mappings".to_string(),
                "incr B/req".to_string(),
                "rewrite B/req".to_string(),
                "incr (ms)".to_string(),
                "rewrite (ms)".to_string(),
                "recovered".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        assert!(point.recovered_identical, "fig12 kill-and-restart recovery must round-trip");
        println!(
            "{}",
            format_row(
                &[
                    point.mappings.to_string(),
                    point.incremental_bytes.to_string(),
                    point.rewrite_bytes.to_string(),
                    format!("{:.3}", point.incremental_time.as_secs_f64() * 1000.0),
                    format!("{:.3}", point.rewrite_time.as_secs_f64() * 1000.0),
                    "yes".to_string(),
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("mappings", BenchValue::U64(point.mappings as u64)),
            ("incremental_bytes", BenchValue::U64(point.incremental_bytes)),
            ("rewrite_bytes", BenchValue::U64(point.rewrite_bytes)),
            ("incremental_ms", BenchValue::F64(point.incremental_time.as_secs_f64() * 1000.0)),
            ("rewrite_ms", BenchValue::F64(point.rewrite_time.as_secs_f64() * 1000.0)),
            ("recovered", BenchValue::Bool(point.recovered_identical)),
        ]);
    }
    doc
}

fn figure_13(scale: Scale) -> BenchDoc {
    println!("\n[Figure 13] replication: follower catch-up and horizontal read scaling");
    let mut doc = BenchDoc::new("fig13", scale);

    // Catch-up: a follower that sat out N leader writes restarts and
    // streams the missed chunks; time-to-convergence vs log length.
    println!("\ncatch-up: a restarted follower streams the delta chunks it missed");
    let widths = vec![7, 9, 14, 10];
    println!(
        "{}",
        format_row(
            &[
                "writes".to_string(),
                "records".to_string(),
                "catch-up (ms)".to_string(),
                "converged".to_string(),
            ],
            &widths
        )
    );
    for point in replication_catchup_experiment(scale) {
        assert!(point.converged, "fig13 follower must converge byte-identically");
        println!(
            "{}",
            format_row(
                &[
                    point.writes.to_string(),
                    point.log_records.to_string(),
                    format!("{:.2}", point.catchup.as_secs_f64() * 1000.0),
                    "yes".to_string(),
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("phase", BenchValue::Str("catchup".to_string())),
            ("writes", BenchValue::U64(point.writes as u64)),
            ("log_records", BenchValue::U64(point.log_records)),
            ("catchup_ms", BenchValue::F64(point.catchup.as_secs_f64() * 1000.0)),
            ("converged", BenchValue::Bool(point.converged)),
        ]);
    }

    // Read scaling: the same read corpus against the leader alone and
    // against the leader plus N converged followers.
    println!("\nread throughput: a fixed compose corpus over one leader + N followers");
    let points = replication_read_experiment(scale);
    let baseline = points.first().map(ReplicationReadPoint::throughput);
    let widths = vec![10, 9, 10, 11, 9, 7];
    println!(
        "{}",
        format_row(
            &[
                "followers".to_string(),
                "requests".to_string(),
                "time (ms)".to_string(),
                "req/s".to_string(),
                "speedup".to_string(),
                "equal".to_string(),
            ],
            &widths
        )
    );
    for point in &points {
        assert_eq!(point.failures, 0, "fig13 read requests must all succeed");
        let speedup = baseline
            .map_or_else(|| "-".to_string(), |base| format!("{:.1}x", point.throughput() / base));
        println!(
            "{}",
            format_row(
                &[
                    point.followers.to_string(),
                    point.requests.to_string(),
                    format!("{:.2}", point.elapsed.as_secs_f64() * 1000.0),
                    format!("{:.0}", point.throughput()),
                    speedup,
                    if point.results_consistent { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("phase", BenchValue::Str("reads".to_string())),
            ("followers", BenchValue::U64(point.followers as u64)),
            ("requests", BenchValue::U64(point.requests as u64)),
            ("failures", BenchValue::U64(point.failures as u64)),
            ("elapsed_ms", BenchValue::F64(point.elapsed.as_secs_f64() * 1000.0)),
            ("req_per_s", BenchValue::F64(point.throughput())),
            ("results_consistent", BenchValue::Bool(point.results_consistent)),
        ]);
    }
    doc
}

fn figure_14(scale: Scale) -> BenchDoc {
    println!("\n[Figure 14] differential chase: constant-size update batch vs. full re-chase");
    let mut doc = BenchDoc::new("fig14", scale);
    let points = differential_update_experiment(scale);
    let widths = vec![7, 7, 7, 11, 13, 8, 11, 13, 10];
    println!(
        "{}",
        format_row(
            &[
                "tuples".to_string(),
                "depth".to_string(),
                "batch".to_string(),
                "delta work".to_string(),
                "rechase work".to_string(),
                "ratio".to_string(),
                "delta (ms)".to_string(),
                "rechase (ms)".to_string(),
                "identical".to_string(),
            ],
            &widths
        )
    );
    for point in points {
        assert!(!point.fallback, "fig14 batches must stay on the incremental path");
        assert!(point.results_identical, "fig14 maintained target must equal the re-chase");
        println!(
            "{}",
            format_row(
                &[
                    point.size.to_string(),
                    point.depth.to_string(),
                    point.batch.to_string(),
                    point.delta_work.to_string(),
                    point.rebuild_work.to_string(),
                    format!("{:.1}x", point.work_ratio()),
                    format!("{:.3}", point.delta_time.as_secs_f64() * 1000.0),
                    format!("{:.3}", point.rebuild_time.as_secs_f64() * 1000.0),
                    if point.results_identical { "yes" } else { "NO" }.to_string(),
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("tuples", BenchValue::U64(point.size as u64)),
            ("depth", BenchValue::U64(point.depth as u64)),
            ("batch", BenchValue::U64(point.batch as u64)),
            ("delta_work", BenchValue::U64(point.delta_work as u64)),
            ("rechase_work", BenchValue::U64(point.rebuild_work as u64)),
            ("delta_ms", BenchValue::F64(point.delta_time.as_secs_f64() * 1000.0)),
            ("rechase_ms", BenchValue::F64(point.rebuild_time.as_secs_f64() * 1000.0)),
            ("results_identical", BenchValue::Bool(point.results_identical)),
        ]);
    }
    doc
}

fn corpus_table(scale: Scale) -> BenchDoc {
    println!("\n[Literature suite] the 22 composition problems of §4");
    let mut doc = BenchDoc::new("corpus", scale);
    let widths = vec![32, 12, 8, 10];
    println!(
        "{}",
        format_row(
            &[
                "problem".to_string(),
                "eliminated".to_string(),
                "ok".to_string(),
                "time(ms)".to_string()
            ],
            &widths
        )
    );
    for outcome in corpus_report() {
        println!(
            "{}",
            format_row(
                &[
                    outcome.id.to_string(),
                    format!("{}/{}", outcome.eliminated, outcome.total),
                    if outcome.expectation_met { "yes" } else { "NO" }.to_string(),
                    format!("{:.2}", outcome.time.as_secs_f64() * 1000.0)
                ],
                &widths
            )
        );
        doc.push_point(vec![
            ("problem", BenchValue::Str(outcome.id.to_string())),
            ("eliminated", BenchValue::U64(outcome.eliminated as u64)),
            ("total", BenchValue::U64(outcome.total as u64)),
            ("expectation_met", BenchValue::Bool(outcome.expectation_met)),
            ("time_ms", BenchValue::F64(outcome.time.as_secs_f64() * 1000.0)),
        ]);
    }
    doc
}

fn claims(scale: Scale) {
    println!("\n[Key claims] blow-up aborts, leftover recovery, order invariance");
    // Blow-up aborts and leftover recovery over one batch of editing runs.
    let mut edits_total = 0usize;
    let mut leftovers_recovered = 0usize;
    let mut pending_created = 0usize;
    for seed in 0..scale.editing_runs() as u64 {
        let run = run_editing(&ScenarioConfig {
            schema_size: 30,
            edits: scale.edits_per_run(),
            seed: 9000 + seed,
            ..ScenarioConfig::default()
        });
        edits_total += run.records.len();
        leftovers_recovered += run.records.iter().map(|r| r.leftover_eliminated).sum::<usize>();
        pending_created +=
            run.records.iter().filter(|r| r.consumed_intermediate && !r.eliminated_now).count();
    }
    println!("  edits simulated: {edits_total}");
    println!("  symbols left pending at their own edit: {pending_created}");
    println!("  pending symbols recovered by later compositions: {leftovers_recovered}");

    // Order invariance on the literature suite: eliminate the σ2 symbols in
    // the default order and in the reversed order and compare how many go
    // (the paper reports the algorithm appears order-invariant on its data
    // sets; the corpus contains one deliberate counterexample).
    let registry = mapcomp_compose::Registry::standard();
    let mut same = 0usize;
    let mut different = 0usize;
    for problem in mapcomp_corpus::problems() {
        let task = problem.task().expect("parses");
        let forward = mapcomp_compose::compose(&task, &registry, &ComposeConfig::default())
            .expect("composes");
        let mut reversed_order = task.elimination_order();
        reversed_order.reverse();
        let reversed = mapcomp_compose::compose(
            &task,
            &registry,
            &ComposeConfig { symbol_order: Some(reversed_order), ..ComposeConfig::default() },
        )
        .expect("composes");
        if forward.eliminated.len() == reversed.eliminated.len() {
            same += 1;
        } else {
            different += 1;
        }
    }
    println!(
        "  order invariance on the literature suite: {same} problems eliminate the same number of symbols under both orders, {different} differ"
    );
}
