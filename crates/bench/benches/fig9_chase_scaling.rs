//! Figure 9 micro-benchmark (new experiment): naive vs. semi-naive chase.
//!
//! Each size builds the Figure 9 exchange scenario (a reversed copy chain
//! plus a join rule, so the naive strategy pays a full re-evaluation of
//! every rule per round) and times `exchange` under both strategies of
//! `ExchangeConfig::strategy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_bench::{chase_depth, chase_scaling_config, chase_scenario, chase_sizes, Scale};
use mapcomp_compose::{exchange, ChaseStrategy, Registry};

fn bench_chase_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_chase_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let registry = Registry::standard();
    let depth = chase_depth(Scale::Quick);
    for size in chase_sizes(Scale::Quick) {
        let (constraints, full, target, source) = chase_scenario(size, depth);
        let config = chase_scaling_config(depth);
        for (label, strategy) in
            [("naive", ChaseStrategy::Naive), ("semi_naive", ChaseStrategy::SemiNaive)]
        {
            let config = config.clone().with_strategy(strategy);
            group.bench_with_input(BenchmarkId::new(label, size), &size, |b, _| {
                b.iter(|| {
                    let result =
                        exchange(&constraints, &full, &target, &source, &registry, &config);
                    assert!(result.converged && result.skipped.is_empty());
                    result
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chase_scaling);
criterion_main!(benches);
