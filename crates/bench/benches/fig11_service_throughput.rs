//! Figure 11 micro-benchmark (new experiment): service throughput over
//! loopback TCP.
//!
//! The Figure 10 all-pairs request corpus is driven through a freshly bound
//! loopback server per iteration — requests encoded, framed, decoded,
//! composed by the shared-session backend, and the replies decoded again —
//! with one client connection per server worker. Throughput should rise
//! with worker count up to the machine's core count; the wire round trip is
//! the measured overhead over `fig10`'s in-process batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_bench::{
    concurrent_corpus, connection_sweep_over_loopback, service_batch_over_loopback,
    service_workers, Scale, SweepEngine, SWEEP_CPU_WORKERS,
};

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_service_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let (catalog, requests) = concurrent_corpus(Scale::Quick);
    for workers in service_workers(Scale::Quick) {
        group.bench_with_input(
            BenchmarkId::new("batch", workers),
            &requests,
            |bencher, requests| {
                bencher.iter(|| {
                    let (outcomes, _elapsed) =
                        service_batch_over_loopback(&catalog, requests, workers);
                    assert!(outcomes.iter().all(|(_, ok)| *ok), "service request failed");
                    outcomes.len()
                });
            },
        );
    }
    group.finish();
}

fn bench_connection_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_connection_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Small connection counts only: criterion re-runs each point many
    // times, so the 1024-connection tier stays in the figures binary.
    let (catalog, requests) = concurrent_corpus(Scale::Quick);
    for connections in [16usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("event", connections),
            &requests,
            |bencher, requests| {
                bencher.iter(|| {
                    let point = connection_sweep_over_loopback(
                        &catalog,
                        requests,
                        connections,
                        SWEEP_CPU_WORKERS,
                        SweepEngine::Event,
                    );
                    assert_eq!(point.failures, 0, "sweep request failed");
                    point.requests
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput, bench_connection_sweep);
criterion_main!(benches);
