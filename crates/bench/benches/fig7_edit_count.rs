//! Figure 7 micro-benchmark: reconciliation cost as the number of edits per
//! branch grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_evolution::{run_reconciliation, ReconcileConfig, ScenarioConfig};

fn bench_edit_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_reconcile_edit_count");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for edits in [10usize, 20, 40] {
        let config = ReconcileConfig {
            schema_size: 30,
            edits_per_branch: edits,
            scenario: ScenarioConfig { schema_size: 30, edits, ..ScenarioConfig::default() },
            max_branch_retries: 2,
            seed: 71,
        };
        group.bench_with_input(BenchmarkId::from_parameter(edits), &config, |b, config| {
            b.iter(|| run_reconciliation(config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_edit_counts);
criterion_main!(benches);
