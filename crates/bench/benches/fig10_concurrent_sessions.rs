//! Figure 10 micro-benchmark (new experiment): concurrent shared-catalog
//! sessions.
//!
//! The same all-pairs batch of chain-composition requests is fanned over a
//! shared catalog with increasing worker counts; every iteration starts
//! from a cold sharded memo cache, so the measured work is the real
//! composition traffic of many sessions sharing one catalog, not cache
//! replay. Throughput should rise with worker count up to the machine's
//! core count and must never change the composed results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_bench::{concurrent_corpus, concurrent_workers, Scale};
use mapcomp_catalog::SharedSession;

fn bench_concurrent_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_concurrent_sessions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let (catalog, requests) = concurrent_corpus(Scale::Quick);
    for workers in concurrent_workers(Scale::Quick) {
        group.bench_with_input(
            BenchmarkId::new("batch", workers),
            &requests,
            |bencher, requests| {
                bencher.iter(|| {
                    let session = SharedSession::new(catalog.clone(), workers);
                    let results = session.compose_batch_parallel(requests);
                    assert!(results.iter().all(Result::is_ok), "batch request failed");
                    results.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_sessions);
criterion_main!(benches);
