//! Figure 8 micro-benchmark (new experiment): incremental vs. cold
//! composition-chain recomposition through the mapping catalog.
//!
//! For each chain length an evolution-derived catalog chain is built; the
//! `cold` series folds it in a fresh session every iteration, while the
//! `incremental` series alternates two content-variants of the middle link
//! in a warm session, so every iteration pays invalidation plus the
//! downstream refold only — the steady-state cost of "one spec changed,
//! update the whole data flow".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_bench::{chain_fixture, chain_lengths, edited_variant, Scale};
use mapcomp_catalog::Session;

fn bench_chain_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_chain_cache");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for (index, edits) in chain_lengths(Scale::Quick).into_iter().enumerate() {
        let (mut session, path) = chain_fixture(edits, 9000 + index as u64);
        if path.len() < 2 {
            continue;
        }
        let catalog = session.catalog().clone();

        group.bench_with_input(BenchmarkId::new("cold", path.len()), &path, |b, path| {
            b.iter(|| {
                let mut cold = Session::new(catalog.clone());
                cold.compose_names(path).expect("composes")
            });
        });

        // Two content-variants of the middle link to alternate between.
        let middle = path[path.len() / 2].clone();
        let base = session.catalog().mapping(&middle).expect("exists").constraints.clone();
        let variant = edited_variant(&session, &middle);
        session.compose_names(&path).expect("warm-up");
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("incremental", path.len()), &path, |b, path| {
            b.iter(|| {
                flip = !flip;
                let next = if flip { variant.clone() } else { base.clone() };
                session.update_mapping(&middle, next).expect("edit applies");
                session.compose_names(path).expect("composes")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_cache);
criterion_main!(benches);
