//! Literature-suite micro-benchmark: composition time of each of the 22
//! corpus problems (paper §4, first data set).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_compose::{compose, ComposeConfig, Registry};
use mapcomp_corpus::problems;

fn bench_corpus(c: &mut Criterion) {
    let registry = Registry::standard();
    let config = ComposeConfig::default();
    let mut group = c.benchmark_group("corpus_problem");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for problem in problems() {
        let task = problem.task().expect("corpus problem parses");
        group.bench_with_input(BenchmarkId::from_parameter(problem.id), &task, |b, task| {
            b.iter(|| compose(task, &registry, &config).expect("composes"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_corpus);
criterion_main!(benches);
