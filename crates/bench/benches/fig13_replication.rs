//! Figure 13 micro-benchmark: the cost of the replication seam on the
//! leader's write path.
//!
//! A warm state-changing `compose-path` request is timed on an incremental
//! leader twice — once plain, once with replication enabled and one live
//! streaming follower attached over loopback. The delta between the two is
//! what publication to the hub (and waking the event loop that fans the
//! chunk out) adds to every write; it should be small and flat, since the
//! publication happens under the persistence mutex the append already
//! holds. `figures fig13` reports the follower-side numbers (catch-up
//! time, read scaling), which are deterministic where these are not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_bench::persistence_document;
use mapcomp_catalog::SessionConfig;
use mapcomp_compose::Registry;
use mapcomp_service::{
    sidecar_path, Client, EventServer, Follower, LocalService, MapcompService as _, PersistMode,
    PersistPolicy, Request, Response,
};

const CHAIN: usize = 12;

fn temp_file(tag: &str) -> std::path::PathBuf {
    let file =
        std::env::temp_dir().join(format!("mapcomp_fig13_bench_{tag}_{}.doc", std::process::id()));
    cleanup(&file);
    file
}

fn cleanup(file: &std::path::Path) {
    let sidecar = sidecar_path(file);
    let mut lock = sidecar.clone().into_os_string();
    lock.push(".lock");
    for stale in [file.to_path_buf(), sidecar, lock.into()] {
        let _ = std::fs::remove_file(stale);
    }
}

fn open_leader(file: &std::path::Path) -> LocalService {
    let policy = PersistPolicy {
        mode: PersistMode::Incremental,
        compact_appends: None,
        compact_bytes: None,
    };
    let service = LocalService::open_with_policy(
        file,
        Registry::standard(),
        SessionConfig::default(),
        1,
        true,
        policy,
    )
    .expect("open persistent service");
    service.call(Request::AddDocument { text: persistence_document(CHAIN) }).expect("seed catalog");
    service
}

fn warm_request(service: &LocalService) -> Request {
    let request = Request::ComposePath { from: "pv0".into(), to: "pv2".into() };
    service.call(request.clone()).expect("warm compose");
    request
}

fn timed_call(service: &LocalService, request: &Request) -> usize {
    match service.call(request.clone()) {
        Ok(Response::Composed(payload)) => payload.cache_hits,
        other => panic!("unexpected reply: {other:?}"),
    }
}

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_replication");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Baseline: the same warm write on a leader that is not replicating.
    {
        let file = temp_file("plain");
        let service = open_leader(&file);
        let request = warm_request(&service);
        group.bench_with_input(
            BenchmarkId::new("no-replication", CHAIN),
            &request,
            |bencher, request| bencher.iter(|| timed_call(&service, request)),
        );
        cleanup(&file);
    }

    // The same write while one follower streams the log live.
    {
        let leader_file = temp_file("leader");
        let follower_file = temp_file("follower");
        let service = open_leader(&leader_file);
        service.enable_replication().expect("enable replication");
        let server = EventServer::bind("127.0.0.1:0").expect("bind a loopback port");
        let addr = server.local_addr().expect("bound address").to_string();
        let follower = Follower::open(
            &follower_file,
            addr.as_str(),
            Registry::standard(),
            SessionConfig::default(),
            1,
            None,
        )
        .expect("open follower");
        std::thread::scope(|scope| {
            let (server, service, addr, follower) = (&server, &service, addr.as_str(), &follower);
            scope.spawn(move || server.run(service, 1).expect("leader server run"));
            let apply = scope.spawn(move || follower.run());
            let target = service.replication_hub().expect("replicating leader").position();
            while follower.status().state != "streaming" || follower.status().position < target {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let request = warm_request(service);
            group.bench_with_input(
                BenchmarkId::new("replicating-1-follower", CHAIN),
                &request,
                |bencher, request| bencher.iter(|| timed_call(service, request)),
            );
            follower.stop();
            apply.join().expect("apply thread").expect("apply loop");
            let closer = Client::connect(addr).expect("connect for shutdown");
            closer.call(Request::Shutdown).expect("shutdown accepted");
        });
        cleanup(&leader_file);
        cleanup(&follower_file);
    }
    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
