//! Figure 3 micro-benchmark: cost of composing away the mapping produced by a
//! single schema-evolution primitive (time per edit, paper §4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_algebra::Signature;
use mapcomp_compose::{compose_constraints, ComposeConfig, Registry};
use mapcomp_evolution::{apply_primitive, NameSource, PrimitiveKind, PrimitiveOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_primitive_composition(c: &mut Criterion) {
    let registry = Registry::standard();
    let config = ComposeConfig::default();
    let options = PrimitiveOptions::with_keys();
    let mut group = c.benchmark_group("fig3_per_primitive");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for kind in [
        PrimitiveKind::AddAttribute,
        PrimitiveKind::DropAttribute,
        PrimitiveKind::AddDefault,
        PrimitiveKind::Horizontal,
        PrimitiveKind::Vertical,
        PrimitiveKind::Normalize,
        PrimitiveKind::Subset,
    ] {
        // Build a two-step workload: the primitive is applied to an upstream
        // relation and then its output is consumed by another AddAttribute,
        // so composing must actually eliminate the intermediate symbol.
        let mut names = NameSource::new();
        let mut rng = StdRng::seed_from_u64(5);
        let base_info = mapcomp_algebra::RelInfo::with_key(5, vec![0]);
        let first =
            apply_primitive(kind, Some(("Base", &base_info)), &options, &mut names, &mut rng);
        let mut sig = Signature::new();
        sig.add("Base", base_info.clone());
        let mut constraints = first.constraints.clone();
        let mut symbols = Vec::new();
        for (name, info) in &first.created {
            sig.add(name.clone(), info.clone());
            let follow = apply_primitive(
                PrimitiveKind::AddAttribute,
                Some((name, info)),
                &options,
                &mut names,
                &mut rng,
            );
            for (n2, i2) in &follow.created {
                sig.add(n2.clone(), i2.clone());
            }
            constraints.extend(follow.constraints);
            symbols.push(name.clone());
        }

        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            b.iter(|| compose_constraints(&sig, &symbols, constraints.clone(), &registry, &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitive_composition);
criterion_main!(benches);
