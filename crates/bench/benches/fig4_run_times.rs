//! Figure 4 micro-benchmark: full-run composition time distribution for the
//! `no keys` configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use mapcomp_bench::{Configuration, Scale};
use mapcomp_evolution::run_editing;

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_full_run_no_keys");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let scenario = Configuration::NoKeys.scenario(Scale::Quick, 2024);
    group.bench_function("editing_run", |b| b.iter(|| run_editing(&scenario)));
    group.finish();
}

criterion_group!(benches, bench_full_run);
criterion_main!(benches);
