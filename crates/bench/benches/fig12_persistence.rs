//! Figure 12 micro-benchmark (new experiment): durability cost of a
//! state-changing service request, incremental append vs. legacy full
//! rewrite.
//!
//! A persistent `LocalService` is seeded with the Figure 12 chain catalog;
//! the timed body issues one warm `compose-path` request (a cache hit, so
//! the composition itself is free and the measurement isolates the
//! durability path: one small sidecar append in incremental mode, a whole
//! document + sidecar rewrite in full-rewrite mode). The gap should widen
//! linearly with catalog size; `figures fig12` reports the same comparison
//! as bytes written, which is deterministic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_bench::{persistence_document, persistence_sizes, Scale};
use mapcomp_catalog::SessionConfig;
use mapcomp_compose::Registry;
use mapcomp_service::{
    LocalService, MapcompService as _, PersistMode, PersistPolicy, Request, Response,
};

fn bench_persistence(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_persistence");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    let mappings = *persistence_sizes(Scale::Quick).last().expect("non-empty sweep");
    for (label, mode) in
        [("incremental", PersistMode::Incremental), ("full-rewrite", PersistMode::FullRewrite)]
    {
        let file = std::env::temp_dir()
            .join(format!("mapcomp_fig12_bench_{}_{label}.doc", std::process::id()));
        let sidecar = mapcomp_service::sidecar_path(&file);
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(&sidecar);
        let policy = PersistPolicy { mode, compact_appends: None, compact_bytes: None };
        let service = LocalService::open_with_policy(
            &file,
            Registry::standard(),
            SessionConfig::default(),
            1,
            true,
            policy,
        )
        .expect("open persistent service");
        service
            .call(Request::AddDocument { text: persistence_document(mappings) })
            .expect("seed catalog");
        // Warm the span once so the timed body is pure durability cost.
        let request = Request::ComposePath { from: "pv0".into(), to: "pv2".into() };
        service.call(request.clone()).expect("warm compose");

        group.bench_with_input(BenchmarkId::new(label, mappings), &request, |bencher, request| {
            bencher.iter(|| match service.call(request.clone()) {
                Ok(Response::Composed(payload)) => payload.cache_hits,
                other => panic!("unexpected reply: {other:?}"),
            });
        });
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(&sidecar);
    }
    group.finish();
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
