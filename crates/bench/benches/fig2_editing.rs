//! Figure 2 micro-benchmark: one schema-editing run per configuration
//! (symbol-elimination workload, paper §4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_bench::{Configuration, Scale};
use mapcomp_evolution::run_editing;

fn bench_editing_configurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_editing_run");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for configuration in Configuration::ALL {
        let scenario = configuration.scenario(Scale::Quick, 77);
        group.bench_with_input(
            BenchmarkId::from_parameter(configuration.label()),
            &scenario,
            |b, scenario| b.iter(|| run_editing(scenario)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_editing_configurations);
criterion_main!(benches);
