//! Figure 5 micro-benchmark: editing runs under increasing proportions of
//! inclusion (Sub/Sup) edits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_compose::ComposeConfig;
use mapcomp_evolution::{run_editing, EventVector, PrimitiveOptions, ScenarioConfig};

fn bench_inclusion_proportions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_inclusion_proportion");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for percent in [0usize, 10, 20] {
        let scenario = ScenarioConfig {
            schema_size: 20,
            edits: 30,
            options: PrimitiveOptions::default(),
            event_vector: EventVector::default_vector()
                .with_inclusion_proportion(percent as f64 / 100.0),
            compose_config: ComposeConfig::default(),
            seed: 31,
        };
        group.bench_with_input(BenchmarkId::from_parameter(percent), &scenario, |b, scenario| {
            b.iter(|| run_editing(scenario));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inclusion_proportions);
criterion_main!(benches);
