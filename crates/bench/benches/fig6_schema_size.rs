//! Figure 6 micro-benchmark: reconciliation cost as the intermediate schema
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapcomp_evolution::{run_reconciliation, ReconcileConfig, ScenarioConfig};

fn bench_schema_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_reconcile_schema_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for size in [10usize, 20, 40] {
        let config = ReconcileConfig {
            schema_size: size,
            edits_per_branch: 15,
            scenario: ScenarioConfig { schema_size: size, edits: 15, ..ScenarioConfig::default() },
            max_branch_retries: 2,
            seed: 61,
        };
        group.bench_with_input(BenchmarkId::from_parameter(size), &config, |b, config| {
            b.iter(|| run_reconciliation(config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schema_sizes);
criterion_main!(benches);
