//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this dependency-free shim
//! provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], group tuning knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`), [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::from_parameter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing methodology is deliberately simple — warm-up, then `sample_size`
//! timed samples of adaptively chosen iteration batches — and reports
//! median/min/max per-iteration times to stdout. It exists so `cargo bench`
//! runs and produces comparable numbers, not to replace criterion's
//! statistics.
//!
//! Like the real crate, passing `--test` (as `cargo test --benches` does)
//! runs every benchmark once without timing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier shown in reports.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Measure `routine`, discarding its output via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Pick a batch size so all samples roughly fit the measurement time.
        let total_iters =
            (self.measurement_time.as_nanos() / per_iter.max(1)).clamp(1, u128::from(u64::MAX));
        let batch = ((total_iters / self.sample_size.max(1) as u128).max(1)) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// A group of related benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Target total measurement duration.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(id.to_string(), |bencher| f(bencher));
        self
    }

    /// Benchmark a routine parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(id.to_string(), |bencher| f(bencher, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher<'_>)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("test {}/{} ... ok", self.name, id);
            return;
        }
        samples.sort();
        let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
        let min = samples.first().copied().unwrap_or_default();
        let max = samples.last().copied().unwrap_or_default();
        println!(
            "{}/{}  time: [{} {} {}]",
            self.name,
            id,
            format_duration(min),
            format_duration(median),
            format_duration(max),
        );
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {
        println!();
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` passes `--test`; run everything once then.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", &mut f);
        self
    }
}

/// Collect benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every [`criterion_group!`], mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion { test_mode: true };
        let mut group = criterion.benchmark_group("shim");
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode runs the routine exactly once");
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut criterion = Criterion { test_mode: false };
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        group.bench_with_input(BenchmarkId::from_parameter("in"), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
