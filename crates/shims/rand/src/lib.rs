//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! external `rand` dependency is replaced by this dependency-free shim that
//! implements exactly the subset of the 0.8 API the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (half-open and inclusive integer
//!   ranges, half-open `f64` ranges) and `gen_bool`;
//! * [`SeedableRng`] with `seed_from_u64` and `from_seed`;
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator.
//!
//! Sequences are deterministic and stable across platforms and releases of
//! this shim — the simulator's reproducibility tests rely on that — but they
//! are **not** the sequences the real `rand` crate would produce, and the
//! generator is not cryptographically secure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from `self`. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, bound)` (Lemire-style
/// widening multiply with rejection to remove modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_u64(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + uniform_u64(rng, span + 1) as $ty
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32);

macro_rules! impl_signed_ranges {
    ($($ty:ty => $wide:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide - self.start as $wide) as u64;
                ((self.start as $wide) + uniform_u64(rng, span) as $wide) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide - start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                ((start as $wide) + uniform_u64(rng, span + 1) as $wide) as $ty
            }
        }
    )*};
}

impl_signed_ranges!(i64 => i128, i32 => i64, isize => i128);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random-sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        SampleRange::<f64>::sample_single(0.0..1.0, self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` convenience seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Same-seed sequences are identical on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..16).map(|_| a.gen_range(0..1000usize)).collect();
        let vb: Vec<usize> = (0..16).map(|_| b.gen_range(0..1000usize)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(2..=5usize);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 produced {hits}/10000 hits");
    }

    #[test]
    fn from_seed_accepts_zero_seed() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        // Must not be stuck at zero.
        let values: Vec<u64> = (0..4).map(|_| rng.gen_range(0..u64::MAX)).collect();
        assert!(values.iter().any(|&v| v != values[0]));
    }
}
