//! Offline stand-in for the [`polling`](https://crates.io/crates/polling)
//! crate: portable readiness events over raw `epoll`/`poll` FFI.
//!
//! The build environment for this workspace has no network access, so the
//! external readiness-polling dependency is replaced by this shim. It
//! implements the small API surface the workspace's event-loop server
//! needs — a [`Poller`] that file descriptors register with, a level-
//! triggered [`Poller::wait`] returning [`Event`]s, and a [`Poller::notify`]
//! wake-up usable from any thread — over hand-written `extern "C"`
//! declarations (the `libc` crate is likewise unavailable; the symbols
//! resolve against the C library `std` already links).
//!
//! Backends:
//!
//! * Linux — `epoll` (`epoll_create1`/`epoll_ctl`/`epoll_wait`) with an
//!   `eventfd` as the notify source, so one poller scales to thousands of
//!   registered sockets.
//! * other unix — `poll(2)` over a registration table, with a non-blocking
//!   self-pipe as the notify source.
//!
//! Semantics are deliberately narrower than the real crate: registrations
//! are level-triggered, keys are plain `usize` values chosen by the caller
//! (the reserved key [`NOTIFY_KEY`] is never surfaced), and the caller is
//! responsible for deregistering a descriptor before closing it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io;
use std::time::Duration;

/// Raw file-descriptor type (mirrors `std::os::fd::RawFd` without requiring
/// the unix-only module in this crate's public signatures).
pub type RawFd = i32;

/// The key reserved for the poller's internal notify descriptor; user
/// registrations must not use it and [`Poller::wait`] never reports it.
pub const NOTIFY_KEY: usize = usize::MAX;

/// One readiness event: which registration fired and in which directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen key the descriptor was registered under.
    pub key: usize,
    /// The descriptor is readable (or has hung up — a closed peer reports
    /// readable so the owner observes EOF on the next read).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    #[must_use]
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Interest in writability only.
    #[must_use]
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both directions.
    #[must_use]
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// Milliseconds for the kernel timeout argument: `None` blocks forever,
/// sub-millisecond waits round up so a short timeout never busy-spins.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(duration) => {
            let ms = duration.as_millis();
            let ms = if ms == 0 && duration.as_nanos() > 0 { 1 } else { ms };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    //! `epoll` backend: the poller is one epoll instance plus an `eventfd`
    //! registered under [`NOTIFY_KEY`](super::NOTIFY_KEY).

    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    use super::{last_os_error, timeout_ms, Event, RawFd, NOTIFY_KEY};

    // Values from the Linux UAPI headers (stable ABI).
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EINTR: i32 = 4;

    /// `struct epoll_event`; packed on x86/x86_64 (the kernel ABI), naturally
    /// aligned elsewhere — mirrors the C definition exactly.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// A readiness poller over one epoll instance. Safe to share across
    /// threads: the kernel serialises `epoll_ctl`/`epoll_wait`, and
    /// [`Poller::notify`] is async-signal-safe (one `write` on an eventfd).
    pub struct Poller {
        epfd: i32,
        event_fd: i32,
        /// Collapses redundant wake-ups between two waits.
        notified: AtomicBool,
    }

    impl Poller {
        /// Create a poller with its notify eventfd already registered.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscalls; failure is reported via -1/errno.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_os_error());
            }
            let event_fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if event_fd < 0 {
                let error = last_os_error();
                unsafe { close(epfd) };
                return Err(error);
            }
            let poller = Poller { epfd, event_fd, notified: AtomicBool::new(false) };
            poller.ctl(EPOLL_CTL_ADD, event_fd, Some(Event::readable(NOTIFY_KEY)))?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
            let mut event = interest.map(|interest| EpollEvent {
                events: {
                    let mut bits = EPOLLRDHUP;
                    if interest.readable {
                        bits |= EPOLLIN;
                    }
                    if interest.writable {
                        bits |= EPOLLOUT;
                    }
                    bits
                },
                data: interest.key as u64,
            });
            let pointer = event.as_mut().map_or(std::ptr::null_mut(), std::ptr::from_mut);
            // SAFETY: `pointer` is null (DEL) or points at a live EpollEvent.
            if unsafe { epoll_ctl(self.epfd, op, fd, pointer) } < 0 {
                return Err(last_os_error());
            }
            Ok(())
        }

        /// Register `fd` under `interest.key`. The caller must keep `fd`
        /// open while registered and [`Poller::delete`] it before closing.
        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            assert_ne!(interest.key, NOTIFY_KEY, "NOTIFY_KEY is reserved for the poller");
            self.ctl(EPOLL_CTL_ADD, fd, Some(interest))
        }

        /// Replace the interest set of an already-registered descriptor.
        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            assert_ne!(interest.key, NOTIFY_KEY, "NOTIFY_KEY is reserved for the poller");
            self.ctl(EPOLL_CTL_MOD, fd, Some(interest))
        }

        /// Deregister a descriptor.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Block until readiness, `timeout`, or a [`Poller::notify`] from
        /// another thread; fired events are appended to `events`. Returns
        /// the number appended (0 = timeout or bare notification).
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let count = loop {
                // SAFETY: `raw` outlives the call and maxevents matches it.
                let rc = unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms(timeout))
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let error = last_os_error();
                if error.raw_os_error() != Some(EINTR) {
                    return Err(error);
                }
            };
            let mut appended = 0;
            for event in &raw[..count] {
                let (bits, data) = (event.events, event.data);
                if data as usize == NOTIFY_KEY {
                    self.drain_notifications();
                    continue;
                }
                events.push(Event {
                    key: data as usize,
                    // Errors and hang-ups surface as readable so the owner
                    // sees EOF/ECONNRESET on its next read.
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
                appended += 1;
            }
            Ok(appended)
        }

        /// Wake a concurrent [`Poller::wait`] from any thread.
        pub fn notify(&self) -> io::Result<()> {
            if self.notified.swap(true, Ordering::AcqRel) {
                return Ok(()); // a wake-up is already pending
            }
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live u64; eventfd ignores EAGAIN
            // (counter saturated = a wake-up is already pending).
            let rc = unsafe { write(self.event_fd, std::ptr::from_ref(&one).cast(), 8) };
            if rc < 0 {
                let error = last_os_error();
                if error.kind() != io::ErrorKind::WouldBlock {
                    return Err(error);
                }
            }
            Ok(())
        }

        fn drain_notifications(&self) {
            self.notified.store(false, Ordering::Release);
            let mut buf = [0u8; 8];
            // SAFETY: reads at most 8 bytes into a live buffer; the eventfd
            // is non-blocking so this never hangs.
            unsafe { read(self.event_fd, buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: both descriptors are owned by this poller.
            unsafe {
                close(self.event_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    //! `poll(2)` backend for non-Linux unix: registrations live in a table
    //! and every wait rebuilds the pollfd array. O(n) per wait, which is
    //! fine at the connection counts the fallback targets.

    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    use super::{last_os_error, timeout_ms, Event, RawFd, NOTIFY_KEY};

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const EINTR: i32 = 4;
    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o4000;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// A readiness poller over `poll(2)` and a registration table.
    pub struct Poller {
        registrations: Mutex<Vec<(RawFd, Event)>>,
        pipe_read: i32,
        pipe_write: i32,
        notified: AtomicBool,
    }

    impl Poller {
        /// Create a poller with its notify pipe already registered.
        pub fn new() -> io::Result<Poller> {
            let mut fds = [0i32; 2];
            // SAFETY: `fds` is a live two-slot array.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(last_os_error());
            }
            for fd in fds {
                // SAFETY: valid descriptor; sets non-blocking mode.
                let flags = unsafe { fcntl(fd, F_GETFL, 0) };
                if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                    let error = last_os_error();
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(error);
                }
            }
            Ok(Poller {
                registrations: Mutex::new(Vec::new()),
                pipe_read: fds[0],
                pipe_write: fds[1],
                notified: AtomicBool::new(false),
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(RawFd, Event)>> {
            self.registrations.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Register `fd` under `interest.key`.
        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            assert_ne!(interest.key, NOTIFY_KEY, "NOTIFY_KEY is reserved for the poller");
            let mut table = self.lock();
            if table.iter().any(|(registered, _)| *registered == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
            }
            table.push((fd, interest));
            Ok(())
        }

        /// Replace the interest set of an already-registered descriptor.
        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            assert_ne!(interest.key, NOTIFY_KEY, "NOTIFY_KEY is reserved for the poller");
            let mut table = self.lock();
            match table.iter_mut().find(|(registered, _)| *registered == fd) {
                Some(slot) => {
                    slot.1 = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Deregister a descriptor.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut table = self.lock();
            let before = table.len();
            table.retain(|(registered, _)| *registered != fd);
            if table.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        /// Block until readiness, `timeout`, or a [`Poller::notify`].
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let (mut fds, keys): (Vec<PollFd>, Vec<usize>) = {
                let table = self.lock();
                let mut fds = Vec::with_capacity(table.len() + 1);
                let mut keys = Vec::with_capacity(table.len() + 1);
                fds.push(PollFd { fd: self.pipe_read, events: POLLIN, revents: 0 });
                keys.push(NOTIFY_KEY);
                for (fd, interest) in table.iter() {
                    let mut bits = 0i16;
                    if interest.readable {
                        bits |= POLLIN;
                    }
                    if interest.writable {
                        bits |= POLLOUT;
                    }
                    fds.push(PollFd { fd: *fd, events: bits, revents: 0 });
                    keys.push(interest.key);
                }
                (fds, keys)
            };
            let count = loop {
                // SAFETY: `fds` is live and nfds matches its length.
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if rc >= 0 {
                    break rc as usize;
                }
                let error = last_os_error();
                if error.raw_os_error() != Some(EINTR) {
                    return Err(error);
                }
            };
            let mut appended = 0;
            if count > 0 {
                for (slot, key) in fds.iter().zip(&keys) {
                    if slot.revents == 0 {
                        continue;
                    }
                    if *key == NOTIFY_KEY {
                        self.drain_notifications();
                        continue;
                    }
                    events.push(Event {
                        key: *key,
                        readable: slot.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                        writable: slot.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                    });
                    appended += 1;
                }
            }
            Ok(appended)
        }

        /// Wake a concurrent [`Poller::wait`] from any thread.
        pub fn notify(&self) -> io::Result<()> {
            if self.notified.swap(true, Ordering::AcqRel) {
                return Ok(());
            }
            let byte = 1u8;
            // SAFETY: writes one byte; EAGAIN means a wake-up is pending.
            let rc = unsafe { write(self.pipe_write, std::ptr::from_ref(&byte), 1) };
            if rc < 0 {
                let error = last_os_error();
                if error.kind() != io::ErrorKind::WouldBlock {
                    return Err(error);
                }
            }
            Ok(())
        }

        fn drain_notifications(&self) {
            self.notified.store(false, Ordering::Release);
            let mut buf = [0u8; 64];
            // SAFETY: non-blocking read into a live buffer.
            while unsafe { read(self.pipe_read, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: the pipe descriptors are owned by this poller.
            unsafe {
                close(self.pipe_read);
                close(self.pipe_write);
            }
        }
    }
}

#[cfg(not(unix))]
mod backend {
    //! Stub for non-unix targets: every operation fails with `Unsupported`.
    //! The workspace only serves on unix; this keeps the crate compiling
    //! everywhere without pretending to a readiness API it cannot provide.

    use std::io;
    use std::time::Duration;

    use super::{Event, RawFd};

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "readiness polling requires a unix target")
    }

    /// Unsupported-platform poller; construction fails.
    pub struct Poller {}

    impl Poller {
        /// Always fails on non-unix targets.
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        /// Unreachable (construction fails).
        pub fn add(&self, _fd: RawFd, _interest: Event) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (construction fails).
        pub fn modify(&self, _fd: RawFd, _interest: Event) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (construction fails).
        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (construction fails).
        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            Err(unsupported())
        }

        /// Unreachable (construction fails).
        pub fn notify(&self) -> io::Result<()> {
            Err(unsupported())
        }
    }
}

pub use backend::Poller;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd as _;
    use std::time::Instant;

    #[test]
    fn readable_events_fire_for_pending_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), Event::readable(7)).unwrap();

        // Nothing pending: a short wait times out with no events.
        let mut events = Vec::new();
        let appended = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(appended, 0, "unexpected events: {events:?}");

        client.write_all(b"ping").unwrap();
        let appended = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(appended, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn interest_modification_controls_writability_reporting() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        // Read-only interest: an idle writable socket reports nothing.
        poller.add(server.as_raw_fd(), Event::readable(3)).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);

        poller.modify(server.as_raw_fd(), Event::all(3)).unwrap();
        assert!(poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap() >= 1);
        assert!(events.iter().any(|event| event.key == 3 && event.writable));
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocking_wait_across_threads() {
        let poller = Poller::new().unwrap();
        std::thread::scope(|scope| {
            let poller = &poller;
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                poller.notify().unwrap();
            });
            let started = Instant::now();
            let mut events = Vec::new();
            // Without the notification this would block five seconds.
            let appended = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(appended, 0, "notify must not surface as a user event");
            assert!(started.elapsed() < Duration::from_secs(4), "wait was not woken");
        });
        // Coalesced notifications do not wedge later waits.
        poller.notify().unwrap();
        poller.notify().unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.is_empty());
    }
}
